"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml (metadata, dependencies,
and the `repro` console script); this file only enables the legacy
(non-PEP-517) editable install path:

    pip install -e . --no-use-pep517
"""

from setuptools import setup

setup()
