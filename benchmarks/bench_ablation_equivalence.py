"""Ablation: equivalence classes vs. naive per-row parameters.

The paper's first speed-up (Sec. II-A): rows with identical constraint
membership share parameters, so the optimisation state is independent of n.
This benchmark measures the state size directly and the OPTIM time across
growing n at a fixed constraint topology — with equivalence classes the
time curve must stay flat.
"""

import numpy as np

from repro.core.builders import cluster_constraint, margin_constraints
from repro.core.equivalence import build_equivalence_classes
from repro.core.solver import SolverOptions, solve_maxent
from repro.datasets.synthetic import random_centroid_clusters


def _workload(n: int, seed: int = 0):
    bundle = random_centroid_clusters(n=n, d=8, k=4, seed=seed)
    constraints = margin_constraints(bundle.data)
    for c in np.unique(bundle.labels):
        constraints.extend(
            cluster_constraint(bundle.data, bundle.rows_with_label(c))
        )
    return bundle.data, constraints


def test_state_size_independent_of_n(report_sink):
    """The parameter store covers classes, not rows."""
    rows = []
    for n in (200, 800, 3200):
        data, constraints = _workload(n)
        classes = build_equivalence_classes(n, constraints)
        rows.append((n, classes.n_classes))
        assert classes.n_classes <= 5  # 4 clusters + (possibly) remainder
    report_sink(
        "ablation/equivalence: classes per n = "
        + ", ".join(f"n={n}: {c}" for n, c in rows)
        + "  (naive storage would be n parameter sets)"
    )


def test_optim_time_flat_in_n(benchmark, report_sink):
    """OPTIM wall-clock stays flat as n grows 16x."""
    times = {}
    for n in (256, 1024, 4096):
        data, constraints = _workload(n)
        _, _, report = solve_maxent(
            data, constraints, options=SolverOptions(time_cutoff=None)
        )
        times[n] = report.optim_seconds

    def run_largest():
        data, constraints = _workload(4096)
        solve_maxent(data, constraints, options=SolverOptions(time_cutoff=None))

    benchmark.pedantic(run_largest, rounds=1, iterations=1)
    ratio = times[4096] / max(times[256], 1e-9)
    report_sink(
        "ablation/equivalence: OPTIM seconds "
        + ", ".join(f"n={n}: {t:.3f}" for n, t in times.items())
        + f"  (16x data -> {ratio:.1f}x time; naive would be ~16x)"
    )
    assert ratio < 4.0
