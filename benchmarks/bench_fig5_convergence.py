"""Fig. 5 benchmark: adversarial convergence of the MaxEnt solver."""

import pytest

from repro.experiments import fig5_convergence


def test_fig5_convergence(benchmark, report_sink):
    """Regenerate the Fig. 5 convergence traces and time them."""
    result = benchmark.pedantic(fig5_convergence.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    assert result.final_a == pytest.approx(0.25, abs=1e-3)
    assert result.decay_exponent_b == pytest.approx(-1.0, abs=0.3)
