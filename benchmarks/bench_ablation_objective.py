"""Ablation: PCA vs. ICA view objective.

Sec. II-C of the paper: PCA on whitened data is uninformative once variance
is fully constrained; ICA still finds non-Gaussian structure.  This
benchmark constructs exactly that situation (a 1-cluster constraint absorbs
all second moments) and compares what each objective can still see.
"""

import numpy as np

from repro.core.background import BackgroundModel
from repro.datasets.synthetic import gaussian_clusters
from repro.projection.view import most_informative_view


def _covariance_constrained_whitened(seed=0):
    centres = np.zeros((2, 6))
    centres[1, 0] = 6.0
    bundle = gaussian_clusters(
        centres, sizes=[500, 500], spreads=0.5, seed=seed
    )
    model = BackgroundModel(bundle.data)
    model.add_one_cluster_constraint()
    model.fit()
    whitened = model.whiten()
    # The discriminating direction in whitened space, for alignment checks.
    labels = bundle.labels
    v = whitened[labels == 1].mean(0) - whitened[labels == 0].mean(0)
    return whitened, v / np.linalg.norm(v)


def test_pca_blind_ica_sees(benchmark, report_sink):
    """After a covariance constraint, PCA scores vanish but ICA's do not."""
    whitened, discriminant = _covariance_constrained_whitened()

    pca_view = most_informative_view(whitened, objective="pca")
    ica_view = benchmark.pedantic(
        most_informative_view,
        args=(whitened,),
        kwargs={"objective": "ica", "rng": np.random.default_rng(0)},
        rounds=1,
        iterations=1,
    )
    pca_top = float(np.max(np.abs(pca_view.scores)))
    ica_top = float(np.max(np.abs(ica_view.scores)))
    alignment = float(np.max(np.abs(ica_view.axes @ discriminant)))
    report_sink(
        "ablation/objective: after 1-cluster constraint, top PCA score "
        f"{pca_top:.4f} (blind) vs top |ICA score| {ica_top:.4f}; "
        f"ICA axis alignment with true cluster direction {alignment:.2f}"
    )
    assert pca_top < 0.01           # PCA has nothing to show
    assert ica_top > 5 * pca_top    # ICA still sees the clusters
    assert alignment > 0.9
