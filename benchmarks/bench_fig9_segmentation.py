"""Fig. 9 benchmark: Image Segmentation use case."""

from repro.experiments import fig9_segmentation


def test_fig9_segmentation(benchmark, report_sink):
    """Regenerate the Fig. 9 panel summary and time the full session."""
    result = benchmark.pedantic(fig9_segmentation.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    assert result.sky_jaccard > 0.9
    assert result.grass_jaccard > 0.9
    assert result.top_extreme_is_outlier
