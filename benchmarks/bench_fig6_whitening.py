"""Fig. 6 benchmark: whitening quality across constraint stages."""

import numpy as np

from repro.experiments import fig6_whitening


def test_fig6_whitening(benchmark, report_sink):
    """Regenerate the Fig. 6 gaussianity table and time the pipeline."""
    result = benchmark.pedantic(fig6_whitening.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    assert result.identity_max_error < 1e-10
    assert bool(np.all(result.explained_after_stage2))
