"""Service throughput: requests/sec and cold-vs-cached view latency.

Two measurements of the `repro.service` stack:

* **solve-cache leverage** — the same belief state (data, constraints,
  solver options) reached by forked/replayed sessions must be served from
  the cache at a fraction of the cold-solve latency (acceptance: >= 5x);
* **HTTP throughput** — end-to-end requests/sec through the threaded
  stdlib server with a warm cache, the number a capacity plan starts from.

Run with::

    pytest benchmarks/bench_service_throughput.py -s
"""

import time

import numpy as np

from repro.datasets import x5
from repro.service import (
    ServiceAPI,
    ServiceClient,
    SessionManager,
    start_background,
)


def _x5_manager():
    bundle = x5(seed=0)
    manager = SessionManager({"x5": bundle.data})
    rows = {
        name: [int(r) for r in np.flatnonzero(bundle.labels == name)]
        for name in ("A", "B", "C", "D")
    }
    return manager, rows


def _session_with_clusters(manager, rows):
    sid = manager.create("x5", standardize=True)
    for name, cluster in rows.items():
        manager.mark_cluster(sid, cluster, label=name)
    return sid


def test_cache_hit_views_at_least_5x_faster(report_sink, bench_counters):
    """Acceptance: cache-hit view requests >= 5x faster than cold solves."""
    manager, rows = _x5_manager()

    sid = _session_with_clusters(manager, rows)
    start = time.perf_counter()
    _, meta = manager.view(sid)
    cold = time.perf_counter() - start
    assert not meta["cache_hit"]

    # Forked sessions replay the same feedback; their solves are cache hits.
    warm_samples = []
    for _ in range(5):
        fork = _session_with_clusters(manager, rows)
        start = time.perf_counter()
        _, meta = manager.view(fork)
        warm_samples.append(time.perf_counter() - start)
        assert meta["cache_hit"]
    warm = min(warm_samples)

    speedup = cold / warm
    bench_counters(
        cold_solve_ms=cold * 1e3,
        cached_view_ms=warm * 1e3,
        cache_speedup=speedup,
    )
    report_sink(
        f"service/cache: cold solve {cold * 1e3:.2f} ms, cached view "
        f"{warm * 1e3:.2f} ms -> {speedup:.1f}x "
        f"(stats: {manager.cache.stats()})"
    )
    assert speedup >= 5.0, (
        f"cache-hit views only {speedup:.1f}x faster than cold solves"
    )


def test_http_requests_per_second(benchmark, report_sink, bench_counters):
    """End-to-end JSON-over-HTTP throughput with a warm cache."""
    manager, rows = _x5_manager()
    server = start_background(ServiceAPI(manager))
    try:
        client = ServiceClient(server.base_url)
        sid = _session_with_clusters(manager, rows)
        client.view(sid)  # warm the solve cache and the connection path

        n_requests = 50

        def burst():
            for _ in range(n_requests):
                client.view(sid)
            return n_requests

        start = time.perf_counter()
        benchmark.pedantic(burst, rounds=1, iterations=1)
        elapsed = time.perf_counter() - start
        rps = n_requests / elapsed
        bench_counters(http_requests_per_second=rps)
        report_sink(
            f"service/http: {n_requests} view requests in {elapsed:.3f} s "
            f"-> {rps:.0f} req/s (single client, warm cache)"
        )
        assert rps > 10, f"service unreasonably slow: {rps:.1f} req/s"
    finally:
        server.stop()


def test_cold_vs_cached_over_http(report_sink):
    """The cache advantage survives the HTTP layer."""
    manager, rows = _x5_manager()
    server = start_background(ServiceAPI(manager))
    try:
        client = ServiceClient(server.base_url)

        sid = _session_with_clusters(manager, rows)
        start = time.perf_counter()
        cold_view = client.view(sid)
        cold = time.perf_counter() - start
        assert cold_view["cache_hit"] is False

        warm_samples = []
        for _ in range(5):
            fork = _session_with_clusters(manager, rows)
            start = time.perf_counter()
            warm_view = client.view(fork)
            warm_samples.append(time.perf_counter() - start)
            assert warm_view["cache_hit"] is True
        warm = min(warm_samples)

        report_sink(
            f"service/http-cache: cold {cold * 1e3:.2f} ms, "
            f"cached {warm * 1e3:.2f} ms over HTTP "
            f"({cold / warm:.1f}x)"
        )
        # HTTP adds a constant overhead to both paths; the cached request
        # must still win clearly.
        assert warm < cold
    finally:
        server.stop()
