"""Ablation: interactive MaxEnt loop vs. static and randomization baselines.

Two claims from the paper's introduction and related work:

* static projection pursuit keeps showing the already-known structure,
  while the interactive loop surfaces *new* structure after feedback;
* the analytic MaxEnt background is much faster to query than the
  permutation-based constrained randomization of the predecessor system.
"""

import time

import numpy as np

from repro.baselines.randomization import ConstrainedRandomization
from repro.baselines.static_projection import static_pca_view
from repro.core.background import BackgroundModel
from repro.core.session import ExplorationSession
from repro.datasets.paper import x5
from repro.feedback import ClusterFeedback


def test_static_baseline_stuck_interactive_moves_on(benchmark, report_sink):
    """Static PCA repeats its view; the session's view shifts to dims 4-5."""
    bundle = x5(seed=0)
    labels = bundle.labels

    def run_session():
        session = ExplorationSession(
            bundle.data, objective="ica", standardize=True, seed=0
        )
        session.current_view()
        for name in ("A", "B", "C", "D"):
            session.apply(ClusterFeedback(rows=np.flatnonzero(labels == name)))
        return session.current_view()

    second_view = benchmark.pedantic(run_session, rounds=1, iterations=1)
    static_view = static_pca_view(bundle.data)
    static_loading45 = float(np.sum(np.abs(static_view.axes[0][3:5])))
    interactive_loading45 = float(np.sum(np.abs(second_view.axes[0][3:5])))
    report_sink(
        "ablation/baseline: after round-1 feedback the interactive view "
        f"loads {interactive_loading45:.2f} on dims 4-5 vs static PCA's "
        f"{static_loading45:.2f} (static cannot move on)"
    )
    assert interactive_loading45 > 0.8


def test_maxent_faster_than_randomization(report_sink):
    """Analytic background means vs. Monte-Carlo permutation means."""
    bundle = x5(n=600, seed=0)
    labels = bundle.labels
    rows = [np.flatnonzero(labels == name) for name in ("A", "B", "C", "D")]

    start = time.perf_counter()
    model = BackgroundModel(bundle.data, standardize=True)
    for r in rows:
        model.add_cluster_constraint(r)
    model.fit()
    model.means()
    maxent_seconds = time.perf_counter() - start

    start = time.perf_counter()
    randomization = ConstrainedRandomization(model.data)
    for r in rows:
        randomization.add_group(r)
    randomization.estimate_row_means(n_samples=25)
    permutation_seconds = time.perf_counter() - start

    report_sink(
        "ablation/baseline: row means via analytic MaxEnt "
        f"{maxent_seconds:.3f}s vs 25-sample permutation estimate "
        f"{permutation_seconds:.3f}s "
        f"({permutation_seconds / max(maxent_seconds, 1e-9):.1f}x slower, "
        "and still only approximate)"
    )
    assert maxent_seconds < permutation_seconds
