"""Table II benchmark: OPTIM / ICA runtime scaling.

Runs the trimmed grid by default; set REPRO_FULL_GRID=1 to run the paper's
full n/d/k grid (minutes, not seconds).
"""

from repro.experiments import table2_runtime


def test_table2_runtime(benchmark, report_sink):
    """Regenerate Table II and record the total sweep time."""
    result = benchmark.pedantic(
        table2_runtime.run, kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    report_sink(result.format_table())
    report_sink(
        "shape checks: OPTIM max/min across n = "
        f"{result.optim_n_dependence():.2f} (paper: ~1); "
        f"OPTIM ~ d^{result.optim_d_exponent():.2f} on this grid "
        "(paper: -> d^3 for d >= 64); "
        f"ICA ~ n^{result.ica_n_exponent():.2f} (paper: ~n^1)"
    )
    assert result.optim_n_dependence() < 3.0
    assert result.optim_d_exponent() > 0.5
