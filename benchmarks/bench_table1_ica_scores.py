"""Table I benchmark: iterative ICA scores on X̂5 (covers Fig. 4)."""

from repro.experiments import table1_ica_scores


def test_table1_ica_scores(benchmark, report_sink):
    """Regenerate Table I and time the three-stage exploration."""
    result = benchmark.pedantic(table1_ica_scores.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    tops = result.top_abs_scores
    assert tops[0] > tops[1] > tops[2]
