"""Ablation: Woodbury rank-1 updates vs. full matrix inversion.

The paper's second speed-up (Sec. II-A): a quadratic constraint step is a
rank-1 update to the inverse covariance, so the dual covariance can be
refreshed in O(d^2) via Sherman–Morrison instead of O(d^3) by inversion.
This benchmark times both implementations of the same update sequence.
"""

import time

import numpy as np

from repro.linalg import woodbury_rank1_inverse


def _update_sequence(rng, d, steps):
    return [
        (rng.standard_normal(d), float(rng.uniform(0.1, 1.0)))
        for _ in range(steps)
    ]


def _run_woodbury(d, updates):
    sigma = np.eye(d)
    for w, lam in updates:
        sigma = woodbury_rank1_inverse(sigma, w, lam)
    return sigma


def _run_naive(d, updates):
    precision = np.eye(d)
    sigma = np.eye(d)
    for w, lam in updates:
        precision = precision + lam * np.outer(w, w)
        sigma = np.linalg.inv(precision)
    return sigma


def test_woodbury_vs_naive_agree(rng_seed=0):
    """Both implementations produce the same covariance."""
    rng = np.random.default_rng(rng_seed)
    updates = _update_sequence(rng, 16, 50)
    np.testing.assert_allclose(
        _run_woodbury(16, updates), _run_naive(16, updates), rtol=1e-7, atol=1e-9
    )


def test_woodbury_speedup(benchmark, report_sink):
    """Woodbury wins increasingly with d (O(d^2) vs O(d^3))."""
    rng = np.random.default_rng(0)
    rows = []
    for d in (32, 128, 384):
        updates = _update_sequence(rng, d, 60)
        start = time.perf_counter()
        _run_woodbury(d, updates)
        wb = time.perf_counter() - start
        start = time.perf_counter()
        _run_naive(d, updates)
        naive = time.perf_counter() - start
        rows.append((d, wb, naive))

    benchmark.pedantic(
        _run_woodbury,
        args=(384, _update_sequence(rng, 384, 60)),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "ablation/woodbury: "
        + "; ".join(
            f"d={d}: woodbury {wb * 1e3:.1f}ms vs inverse {nv * 1e3:.1f}ms "
            f"({nv / max(wb, 1e-9):.1f}x)"
            for d, wb, nv in rows
        )
    )
    # At the largest size the rank-1 path must clearly win.
    d, wb, naive = rows[-1]
    assert naive > wb
