"""Benchmark configuration.

Benchmarks both *time* the pipeline pieces (pytest-benchmark) and *print*
the regenerated tables/series of the paper, so that running

    pytest benchmarks/ --benchmark-only -s

reproduces every table and figure of the evaluation section on this
machine.  The printed output is also what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; make sure running
    # `pytest benchmarks/` without --benchmark-only still works.
    config.addinivalue_line("markers", "paper_figure(name): reproduces a figure")


@pytest.fixture
def report_sink(capsys):
    """Print an experiment report so it lands in the pytest output."""

    def _sink(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _sink
