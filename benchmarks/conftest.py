"""Benchmark configuration.

Benchmarks both *time* the pipeline pieces (pytest-benchmark) and *print*
the regenerated tables/series of the paper, so that running

    pytest benchmarks/ --benchmark-only -s

reproduces every table and figure of the evaluation section on this
machine.  The printed output is also what EXPERIMENTS.md records.

Every benchmark run additionally writes one ``BENCH_<suite>.json``
artifact per benchmark module (suite = module name minus the ``bench_``
prefix): per-test call timings plus any counters the tests record
through the ``bench_counters`` fixture.  These files are the
machine-readable perf trajectory — CI uploads them as artifacts so
regressions are diffable across commits.  Set ``BENCH_OUTPUT_DIR`` to
redirect them (default: the pytest invocation directory).
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from pathlib import Path

import pytest


def _suite_of(nodeid: str) -> str | None:
    """``benchmarks/bench_fig5_convergence.py::test_x`` -> ``fig5_convergence``."""
    module = nodeid.split("::", 1)[0]
    stem = Path(module).stem
    if stem.startswith("bench_"):
        return stem[len("bench_"):]
    return None


class BenchReporter:
    """Collects per-suite timings and counters; writes BENCH_<suite>.json."""

    def __init__(self, out_dir: Path) -> None:
        self.out_dir = out_dir
        self.suites: dict[str, dict] = defaultdict(
            lambda: {"timings": {}, "counters": {}}
        )

    def record_timing(self, suite: str, test: str, seconds: float) -> None:
        self.suites[suite]["timings"][test] = round(float(seconds), 6)

    def record_counter(self, suite: str, name: str, value) -> None:
        self.suites[suite]["counters"][name] = value

    def write(self) -> list[Path]:
        written = []
        for suite, payload in sorted(self.suites.items()):
            if not payload["timings"] and not payload["counters"]:
                continue
            self.out_dir.mkdir(parents=True, exist_ok=True)
            path = self.out_dir / f"BENCH_{suite}.json"
            body = {
                "suite": suite,
                "total_seconds": round(sum(payload["timings"].values()), 6),
                "timings": dict(sorted(payload["timings"].items())),
                "counters": dict(sorted(payload["counters"].items())),
            }
            path.write_text(json.dumps(body, indent=2) + "\n")
            written.append(path)
        return written


#: The session-scoped reporter (one conftest module per pytest session).
_REPORTER: BenchReporter | None = None


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; make sure running
    # `pytest benchmarks/` without --benchmark-only still works.
    config.addinivalue_line("markers", "paper_figure(name): reproduces a figure")
    global _REPORTER
    _REPORTER = BenchReporter(Path(os.environ.get("BENCH_OUTPUT_DIR", ".")))


def pytest_runtest_logreport(report):
    if _REPORTER is None or report.when != "call" or not report.passed:
        return
    suite = _suite_of(report.nodeid)
    if suite is not None:
        test = report.nodeid.split("::", 1)[-1]
        _REPORTER.record_timing(suite, test, report.duration)


def pytest_sessionfinish(session, exitstatus):
    if _REPORTER is None:
        return
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    for path in _REPORTER.write():
        if terminal is not None:
            terminal.write_line(f"bench artifact: {path}")


@pytest.fixture
def bench_counters(request):
    """Record machine-readable counters into this suite's BENCH json.

    Usage::

        def test_throughput(bench_counters):
            ...
            bench_counters(requests_per_second=rps, cache_hit_rate=rate)
    """
    suite = _suite_of(request.node.nodeid) or "misc"

    def _record(**counters) -> None:
        for name, value in counters.items():
            _REPORTER.record_counter(suite, name, value)

    return _record


@pytest.fixture
def report_sink(capsys):
    """Print an experiment report so it lands in the pytest output."""

    def _sink(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _sink
