"""Fig. 3 benchmark: structure of the X̂5 running example."""

from repro.experiments import fig3_x5_structure


def test_fig3_structure(benchmark, report_sink):
    """Regenerate the Fig. 3 pairplot facts and time the generator."""
    result = benchmark.pedantic(fig3_x5_structure.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    assert set(result.overlap_per_panel.values()) == {"B", "C", "D"}
    assert result.separable_45
