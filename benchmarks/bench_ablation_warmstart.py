"""Ablation: warm-start incremental refits vs. cold restarts.

The interactive loop appends constraints each round; SIDER refits from
scratch.  `repro.core.incremental` seeds each refit from the previous
optimum instead.  This benchmark replays a three-round session both ways
and compares total sweeps and wall-clock.
"""

import numpy as np

from repro.core.builders import cluster_constraint
from repro.core.incremental import incremental_solve
from repro.core.solver import SolverOptions, solve_maxent
from repro.datasets import x5


def _rounds(bundle):
    """The constraint lists of a three-round X̂5 session (cumulative)."""
    labels = bundle.labels
    labels45 = bundle.metadata["labels45"]
    data = (bundle.data - bundle.data.mean(0)) / bundle.data.std(0)
    lists = []
    acc = []
    for name in ("A", "B", "C", "D"):
        acc = acc + cluster_constraint(data, np.flatnonzero(labels == name))
    lists.append(list(acc))
    for name in ("E", "F"):
        acc = acc + cluster_constraint(data, np.flatnonzero(labels45 == name))
    lists.append(list(acc))
    acc = acc + cluster_constraint(data, np.flatnonzero(labels45 == "G"))
    lists.append(list(acc))
    return data, lists


def test_warmstart_beats_cold_restart(benchmark, report_sink):
    """Warm starts spend fewer total sweeps than cold restarts."""
    bundle = x5(seed=0)
    data, constraint_lists = _rounds(bundle)
    options = SolverOptions(time_cutoff=None)

    def run_cold():
        sweeps = 0
        for constraints in constraint_lists:
            _, _, report = solve_maxent(data, constraints, options=options)
            sweeps += report.sweeps
        return sweeps

    def run_warm():
        sweeps = 0
        state = None
        for constraints in constraint_lists:
            _, _, report, state = incremental_solve(
                data, constraints, previous=state, options=options
            )
            sweeps += report.sweeps
        return sweeps

    cold_sweeps = run_cold()
    warm_sweeps = benchmark.pedantic(run_warm, rounds=1, iterations=1)
    report_sink(
        f"ablation/warmstart: total sweeps cold={cold_sweeps} "
        f"warm={warm_sweeps} over 3 incremental rounds"
    )
    assert warm_sweeps <= cold_sweeps


def test_warmstart_same_solution(report_sink):
    """Warm and cold starts land on the same optimum (convexity).

    The X̂5 constraints overlap (the A-D and E-G groupings share rows), so
    both runs stop on the slow tail of the coordinate ascent (cf. Fig. 5
    Case B) at slightly different near-optimal points — hence the loose
    tolerance; convexity guarantees a common limit.
    """
    bundle = x5(n=500, seed=1)
    data, constraint_lists = _rounds(bundle)
    options = SolverOptions(time_cutoff=None, lambda_tolerance=1e-4)

    cold_params, cold_classes, _ = solve_maxent(
        data, constraint_lists[-1], options=options
    )
    state = None
    for constraints in constraint_lists:
        warm_params, warm_classes, _, state = incremental_solve(
            data, constraints, previous=state, options=options
        )
    np.testing.assert_array_equal(
        cold_classes.class_of_row, warm_classes.class_of_row
    )
    np.testing.assert_allclose(warm_params.mean, cold_params.mean, atol=0.05)
    diag_warm = np.einsum("cii->ci", warm_params.sigma)
    diag_cold = np.einsum("cii->ci", cold_params.sigma)
    np.testing.assert_allclose(diag_warm, diag_cold, atol=0.05)
    report_sink("ablation/warmstart: warm == cold optimum (within tolerance)")
