"""Fig. 1 benchmark: the interaction loop's monotone trends."""

from repro.experiments import fig1_loop


def test_fig1_loop(benchmark, report_sink):
    """Replay the loop on three datasets; scores fall, knowledge grows."""
    result = benchmark.pedantic(fig1_loop.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    assert result.all_scores_decrease()
    assert result.all_knowledge_increases()
