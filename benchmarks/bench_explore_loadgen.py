"""Autonomous-exploration workload: the service under policy-driven load.

Runs :mod:`repro.explore.loadgen` against a temporary in-process server —
N concurrent sessions, each a full policy loop over the ``/v1`` API — and
records the numbers the capacity plan cares about: total throughput,
per-route p95 view latency, and the solve-cache hit rate concurrent twin
sessions achieve.  This is the heavy-traffic profile the single-client
throughput benchmark cannot show.

Run with::

    pytest benchmarks/bench_explore_loadgen.py -s
"""

from repro.datasets import three_d_clusters, x5
from repro.explore import LoadGenConfig, format_report, run_loadgen
from repro.service import SessionManager, start_background


def test_policy_driven_loadgen(report_sink, bench_counters):
    """8 concurrent policy sessions complete cleanly and measurably."""
    manager = SessionManager(
        {
            "three-d": lambda: three_d_clusters(seed=0),
            "x5": lambda: x5(seed=0),
        }
    )
    server = start_background(manager)
    try:
        config = LoadGenConfig(
            url=server.base_url,
            sessions=8,
            workers=4,
            policies=("objective-sweep", "surprise"),
            rounds=2,
            seed=0,
        )
        report = run_loadgen(config)
    finally:
        server.stop()

    totals = report.totals
    assert totals["sessions_failed"] == 0, report.sessions
    assert totals["requests"] >= 8 * 4  # create + views + feedback + delete
    view_route = report.routes.get("GET /v1/sessions/{id}/view")
    assert view_route is not None and view_route["count"] >= 8

    bench_counters(
        loadgen_throughput_rps=totals["throughput_rps"],
        loadgen_requests=totals["requests"],
        view_p95_ms=view_route["p95_ms"],
        cache_hit_rate=(report.cache or {}).get("hit_rate"),
    )
    report_sink("explore/loadgen:\n" + format_report(report))
