"""Fig. 8 benchmark: BNC iterations two and three."""

from repro.experiments import fig8_bnc_iterations


def test_fig8_bnc_iterations(benchmark, report_sink):
    """Regenerate the Fig. 8 round table and time the full session."""
    result = benchmark.pedantic(fig8_bnc_iterations.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    s0, s1, s2 = result.top_scores
    assert s0 > s1 > s2
    assert result.combined_jaccard > 0.8
