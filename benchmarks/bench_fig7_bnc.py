"""Fig. 7 benchmark: first BNC view and selection."""

from repro.experiments import fig7_bnc_first_view


def test_fig7_bnc_first_view(benchmark, report_sink):
    """Regenerate the Fig. 7 first-round Jaccard table and time it."""
    result, _app = benchmark.pedantic(
        fig7_bnc_first_view.run, rounds=1, iterations=1
    )
    report_sink(result.format_table())
    assert result.best_class == "transcribed conversations"
    assert result.best_jaccard > 0.8
