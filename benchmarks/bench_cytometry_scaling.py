"""Conclusion-claim benchmark: SIDER-scale flow cytometry.

The paper's conclusion: "Initial experiments with samples up to tens of
thousands rows from flow-cytometry data has shown the computations in
SIDER to scale up well".  This benchmark fits cluster constraints for the
dominant populations at n = 5k/20k/40k events and checks that the OPTIM
phase stays flat (equivalence classes) while the end-to-end loop remains
interactive.
"""

import numpy as np

from repro.core.background import BackgroundModel
from repro.core.solver import SolverOptions
from repro.datasets import cytometry_surrogate


def _fit_panel(n_events: int, seed: int = 0):
    bundle = cytometry_surrogate(n_events=n_events, seed=seed)
    model = BackgroundModel(
        bundle.data,
        standardize=True,
        solver_options=SolverOptions(time_cutoff=None),
    )
    for name in ("t-helper", "t-cytotoxic", "b-cells", "nk-cells", "monocytes"):
        model.add_cluster_constraint(bundle.rows_with_label(name), label=name)
    report = model.fit()
    return model, report


def test_cytometry_optim_flat_in_events(benchmark, report_sink):
    """OPTIM seconds stay flat from 5k to 40k events."""
    times = {}
    for n in (5000, 20000, 40000):
        _, report = _fit_panel(n)
        times[n] = report.optim_seconds

    benchmark.pedantic(_fit_panel, args=(40000,), rounds=1, iterations=1)
    ratio = times[40000] / max(times[5000], 1e-9)
    report_sink(
        "cytometry scaling: OPTIM seconds "
        + ", ".join(f"n={n}: {t:.3f}" for n, t in times.items())
        + f" (8x events -> {ratio:.1f}x time)"
    )
    assert ratio < 4.0


def test_cytometry_loop_stays_interactive(report_sink):
    """Whiten + sample at 40k events complete in interactive time."""
    import time

    model, _ = _fit_panel(40000)
    start = time.perf_counter()
    whitened = model.whiten()
    whiten_seconds = time.perf_counter() - start
    start = time.perf_counter()
    model.sample(rng=np.random.default_rng(0))
    sample_seconds = time.perf_counter() - start
    report_sink(
        f"cytometry scaling: whiten {whiten_seconds:.2f}s, "
        f"ghost sample {sample_seconds:.2f}s at 40k events"
    )
    assert whitened.shape == (40000, 8)
    # "Interactive" in SIDER terms: well under the 10 s budget.
    assert whiten_seconds < 10.0
    assert sample_seconds < 10.0
