"""Fig. 2 benchmark: 3-D synthetic walkthrough (and its runtime)."""

from repro.experiments import fig2_synthetic3d


def test_fig2_walkthrough(benchmark, report_sink):
    """Regenerate Fig. 2 and time the full three-panel walkthrough."""
    result = benchmark.pedantic(fig2_synthetic3d.run, rounds=1, iterations=1)
    report_sink(result.format_table())
    assert result.visible_clusters_first == 3
    assert result.x3_weight_next > 0.8
