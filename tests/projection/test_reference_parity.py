"""Property tests: batched projection kernels vs the preserved loops.

Mirrors the solver-core discipline of tests/core/test_vectorized_kernels:
every batched projection kernel is pinned against the serial loop
preserved in :mod:`repro.projection.reference` to 1e-10, and the FastICA
invariants (orthonormal decorrelation, permutation equivariance) hold
under hypothesis-driven shapes — including rank-deficient and
zero-variance-column inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.equivalence import EquivalenceClasses
from repro.core.grouping import apply_by_class, apply_by_class_loop
from repro.projection.fastica import (
    _pca_whiten,
    _symmetric_decorrelation,
    _symmetric_decorrelation_batched,
    _symmetric_fastica_batched,
    fit_fastica,
    logcosh,
    logcosh_contrast,
)
from repro.projection.reference import (
    reference_fit_fastica,
    reference_logcosh_mean,
    reference_multi_restart_symmetric,
    reference_symmetric_decorrelation,
)

_TOL = 1e-10

_FAST = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def ica_input(draw):
    """Random data, optionally rank-deficient / with zero-variance columns."""
    n = draw(st.integers(min_value=30, max_value=300))
    d = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, d))
    if draw(st.booleans()):
        # Non-gaussian cluster structure (the interesting regime).
        data[: n // 2, 0] += 4.0
    if d >= 2 and draw(st.booleans()):
        # Rank deficiency: one column duplicates another.
        data[:, -1] = data[:, 0]
    if draw(st.booleans()):
        # A zero-variance column (dropped by the rank tolerance).
        data[:, draw(st.integers(min_value=0, max_value=d - 1))] = draw(
            st.floats(min_value=-3.0, max_value=3.0)
        )
    if not np.any(np.var(data, axis=0) > 0.0):
        data[:, 0] += rng.standard_normal(n)  # keep the input non-degenerate
    return data, seed


@st.composite
def unmixing_stack(draw):
    """A random (R, k, k) stack of initial unmixing matrices."""
    r = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return np.random.default_rng(seed).standard_normal((r, k, k))


class TestSymmetricDecorrelation:
    @given(unmixing_stack())
    @_FAST
    def test_batched_matches_scalar_loop(self, stack):
        got = _symmetric_decorrelation_batched(stack)
        want = np.stack(
            [reference_symmetric_decorrelation(w) for w in stack]
        )
        np.testing.assert_allclose(got, want, atol=_TOL)

    @given(unmixing_stack())
    @_FAST
    def test_rows_orthonormal_after_decorrelation(self, stack):
        """The FastICA invariant: ||W W^T - I|| < 1e-8 after decorrelation.

        Skips stacks containing (near-)singular matrices — decorrelating
        a rank-deficient W cannot produce a full orthonormal basis (the
        clamped inverse root regularises instead of failing).
        """
        conds = [np.linalg.cond(w @ w.T) for w in stack]
        if max(conds) > 1e6:
            return
        decorrelated = _symmetric_decorrelation_batched(stack)
        k = stack.shape[-1]
        for w in decorrelated:
            gram = w @ w.T
            assert np.linalg.norm(gram - np.eye(k)) < 1e-8

    def test_scalar_helper_matches_reference(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((4, 4))
        np.testing.assert_allclose(
            _symmetric_decorrelation(w),
            reference_symmetric_decorrelation(w),
            atol=0,
        )


class TestLogcoshKernels:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.5, max_value=50.0),
    )
    @_FAST
    def test_stable_logcosh_matches_naive_in_safe_range(self, seed, spread):
        x = np.random.default_rng(seed).uniform(-spread, spread, (40, 3))
        np.testing.assert_allclose(
            logcosh(x), np.log(np.cosh(x)), atol=1e-12, rtol=1e-12
        )

    def test_stable_logcosh_survives_overflow_range(self):
        x = np.array([-800.0, -50.0, 0.0, 50.0, 800.0])
        got = logcosh(x)
        assert np.all(np.isfinite(got))
        # Asymptotically log cosh x -> |x| - log 2.
        np.testing.assert_allclose(got[[0, -1]], 800.0 - np.log(2.0))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @_FAST
    def test_contrast_matches_naive_reference(self, seed):
        from repro.projection.scores import GAUSSIAN_LOGCOSH_MEAN

        wz = np.random.default_rng(seed).standard_normal((60, 4)) * 3.0
        np.testing.assert_allclose(
            logcosh_contrast(wz, axis=0),
            reference_logcosh_mean(wz) - GAUSSIAN_LOGCOSH_MEAN,
            atol=1e-12,
        )


class TestFastICAParity:
    @given(ica_input(), st.sampled_from(["symmetric", "deflation"]))
    @_FAST
    def test_single_run_matches_reference(self, case, algorithm):
        data, seed = case
        got = fit_fastica(
            data,
            rng=np.random.default_rng(seed),
            max_iterations=150,
            algorithm=algorithm,
        )
        want_c, want_it, want_conv = reference_fit_fastica(
            data,
            rng=np.random.default_rng(seed),
            max_iterations=150,
            algorithm=algorithm,
        )
        np.testing.assert_allclose(got.components, want_c, atol=_TOL)
        assert got.n_iterations == want_it
        assert got.converged == want_conv

    @given(ica_input(), st.integers(min_value=2, max_value=5))
    @_FAST
    def test_multi_restart_matches_serial_restarts(self, case, restarts):
        data, seed = case
        z, _, _, k = _pca_whiten(np.asarray(data, dtype=np.float64), None)
        inits = np.random.default_rng(seed).standard_normal((restarts, k, k))
        got_w, got_it, got_conv = _symmetric_fastica_batched(
            z, inits, 150, 1e-6
        )
        want_w, want_it, want_conv, want_contrast = (
            reference_multi_restart_symmetric(z, inits, 150, 1e-6)
        )
        np.testing.assert_allclose(got_w, want_w, atol=_TOL)
        np.testing.assert_array_equal(got_it, want_it)
        np.testing.assert_array_equal(got_conv, want_conv)
        # The production entry point picks a winner the serial selection
        # would accept: its restart's contrast ties the serial maximum.
        # (Index equality is ill-posed — on rank-deficient inputs every
        # restart converges to the same component and the contrasts tie
        # at floating-point noise, so batched and serial argmax may
        # break the tie differently.)
        result = fit_fastica(
            data,
            rng=np.random.default_rng(seed),
            max_iterations=150,
            n_restarts=restarts,
        )
        assert float(want_contrast[result.best_restart]) == pytest.approx(
            float(want_contrast.max()), abs=_TOL
        )
        assert result.contrast == pytest.approx(
            float(want_contrast[result.best_restart]), abs=_TOL
        )

    @given(ica_input())
    @_FAST
    def test_permutation_equivariance(self, case):
        """Row order carries no information: permuting the input rows
        leaves the strongly-determined directions unchanged.

        FastICA only sees the input through row-wise expectations; a
        permutation changes floating-point summation order, so the check
        is angular, not bitwise — and restricted to directions with a
        clearly non-gaussian score.  On a flat contrast (near-gaussian
        residual dimensions) the 1e-16 start perturbation can steer the
        fixed-point iteration to a different, equally valid optimum, so
        weak directions carry no equivariance guarantee.
        """
        from repro.projection.scores import ica_scores

        data, seed = case
        rng = np.random.default_rng(seed)
        perm = rng.permutation(data.shape[0])
        a = fit_fastica(
            data, rng=np.random.default_rng(seed), max_iterations=400
        )
        b = fit_fastica(
            data[perm], rng=np.random.default_rng(seed), max_iterations=400
        )
        if not (a.converged and b.converged):
            return  # unconverged runs may sit far from any fixed point
        assert a.components.shape == b.components.shape
        scores_a = np.atleast_1d(ica_scores(data, a.components))
        ranked = np.sort(np.abs(scores_a))[::-1]
        top = int(np.argmax(np.abs(scores_a)))
        if ranked[0] < 0.02:
            return  # structure too weak to pin a direction
        if len(ranked) > 1 and ranked[0] - ranked[1] < 0.01:
            # Near-tied top scores: the summation-order perturbation can
            # legitimately swap which of the two optima wins, so the
            # "dominant direction" is not well defined for this input.
            return
        # Run B must recover run A's dominant direction (up to sign)
        # — or land on a *different* optimum of equal contrast. Even a
        # clearly dominant top score does not make the optimum unique:
        # hypothesis found a (246, 4) input whose landscape holds two
        # ~40-degrees-apart optima scoring within 0.6% of each other,
        # where the permutation legitimately steers the iteration to
        # the other one. The contrast *value* is permutation-equivariant
        # even where the argmax is not, so that is what a divergent
        # direction must justify itself against.
        cosines = np.abs(b.components @ a.components[top])
        if cosines.max() <= 0.999:
            scores_b = np.atleast_1d(ica_scores(data[perm], b.components))
            assert np.max(np.abs(scores_b)) == pytest.approx(
                ranked[0], rel=0.05, abs=0.005
            )


@st.composite
def partition_case(draw):
    """Random class partition + matrices for the scatter kernels."""
    n = draw(st.integers(min_value=1, max_value=120))
    d = draw(st.integers(min_value=1, max_value=6))
    c_count = draw(st.integers(min_value=1, max_value=min(n, 12)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if draw(st.booleans()):
        # Ragged: one dominant class plus scattered singletons.
        class_of_row = np.zeros(n, dtype=np.intp)
        extras = rng.choice(n, size=min(c_count - 1, n - 1), replace=False)
        class_of_row[extras] = rng.integers(1, c_count, extras.size)
    else:
        class_of_row = rng.integers(0, c_count, n)
    classes = EquivalenceClasses(
        n_rows=n,
        class_of_row=class_of_row,
        class_counts=np.bincount(class_of_row, minlength=c_count),
        members=(),
        representative_rows=np.zeros(c_count, dtype=np.intp),
    )
    values = rng.standard_normal((n, d))
    matrices = rng.standard_normal((c_count, d, d))
    return values, classes, matrices


class TestBlockDiagonalScatter:
    @given(partition_case())
    @_FAST
    def test_gemm_matches_loop(self, case):
        values, classes, matrices = case
        got = apply_by_class(values, classes, matrices)
        want = apply_by_class_loop(values, classes, matrices)
        np.testing.assert_allclose(got, want, atol=_TOL)

    def test_empty_classes_are_skipped(self):
        rng = np.random.default_rng(0)
        class_of_row = np.array([0, 0, 2, 2, 2], dtype=np.intp)  # class 1 empty
        classes = EquivalenceClasses(
            n_rows=5,
            class_of_row=class_of_row,
            class_counts=np.bincount(class_of_row, minlength=3),
            members=(),
            representative_rows=np.zeros(3, dtype=np.intp),
        )
        values = rng.standard_normal((5, 3))
        matrices = rng.standard_normal((3, 3, 3))
        np.testing.assert_allclose(
            apply_by_class(values, classes, matrices),
            apply_by_class_loop(values, classes, matrices),
            atol=_TOL,
        )

    def test_ragged_partition_falls_back_to_loop(self, monkeypatch):
        """One huge class + many singletons must route to the loop."""
        from repro.core import grouping

        calls = []
        original = grouping.apply_by_class_loop

        def counting_loop(values, classes, matrices):
            calls.append(1)
            return original(values, classes, matrices)

        monkeypatch.setattr(grouping, "apply_by_class_loop", counting_loop)
        rng = np.random.default_rng(1)
        n, c_count = 400, 40
        class_of_row = np.zeros(n, dtype=np.intp)
        class_of_row[:c_count - 1] = np.arange(1, c_count)
        classes = EquivalenceClasses(
            n_rows=n,
            class_of_row=class_of_row,
            class_counts=np.bincount(class_of_row, minlength=c_count),
            members=(),
            representative_rows=np.zeros(c_count, dtype=np.intp),
        )
        values = rng.standard_normal((n, 3))
        matrices = rng.standard_normal((c_count, 3, 3))
        got = grouping.apply_by_class(values, classes, matrices)
        assert calls, "ragged partition should dispatch to the loop"
        np.testing.assert_allclose(
            got, original(values, classes, matrices), atol=_TOL
        )
