"""Tests for the pluggable objective registry."""

import numpy as np
import pytest

from repro.projection import registry
from repro.projection.registry import (
    AxisObjective,
    KurtosisObjective,
    UnknownObjectiveError,
)
from repro.projection.view import most_informative_view


class TestRegistryBasics:
    def test_builtins_registered(self):
        assert {"pca", "ica", "kurtosis", "axis"} <= set(registry.names())

    def test_get_unknown_raises_value_error_subclass(self):
        with pytest.raises(UnknownObjectiveError):
            registry.get("umap")
        with pytest.raises(ValueError):
            registry.get("umap")

    def test_get_passes_instances_through(self):
        obj = registry.get("pca")
        assert registry.get(obj) is obj

    def test_get_rejects_non_string_non_objective(self):
        with pytest.raises(ValueError):
            registry.get(42)

    def test_describe_rows_are_json_ready(self):
        rows = registry.describe()
        assert all(set(row) == {"name", "description"} for row in rows)
        assert [row["name"] for row in rows] == registry.names()

    def test_register_requires_protocol(self):
        class Nameless:
            pass

        with pytest.raises(ValueError):
            registry.register(Nameless())

        class NoScore:
            name = "broken"

            def find_directions(self, whitened, rng):
                return np.eye(2)

        with pytest.raises(ValueError):
            registry.register(NoScore())

    def test_duplicate_name_rejected_unless_overwrite(self):
        class Dup:
            name = "pca"
            description = "impostor"

            def find_directions(self, whitened, rng):
                return np.eye(2)

            def score(self, whitened, directions):
                return np.zeros(2)

        with pytest.raises(ValueError):
            registry.register(Dup())
        assert registry.get("pca").description != "impostor"

    def test_register_unregister_roundtrip(self):
        class Custom:
            name = "test-roundtrip"
            description = "just for this test"

            def find_directions(self, whitened, rng):
                return np.eye(np.asarray(whitened).shape[1])

            def score(self, whitened, directions):
                return np.ones(np.atleast_2d(directions).shape[0])

        try:
            registry.register(Custom())
            assert registry.is_registered("test-roundtrip")
            view = most_informative_view(
                np.random.default_rng(0).standard_normal((50, 3)),
                objective="test-roundtrip",
            )
            assert view.objective == "test-roundtrip"
        finally:
            registry.unregister("test-roundtrip")
        assert not registry.is_registered("test-roundtrip")


class TestKurtosisObjective:
    def test_finds_heavy_tailed_direction(self):
        rng = np.random.default_rng(7)
        data = rng.standard_normal((2000, 4))
        data[:, 1] = rng.standard_t(df=3, size=2000)  # heavy tails on X2
        view = most_informative_view(
            data, objective="kurtosis", rng=np.random.default_rng(0)
        )
        assert abs(view.axes[0][1]) > 0.9
        assert view.objective == "kurtosis"

    def test_orthonormal_basis(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((500, 5))
        basis = KurtosisObjective().find_directions(
            data, np.random.default_rng(0)
        )
        np.testing.assert_allclose(basis @ basis.T, np.eye(5), atol=1e-8)

    def test_gaussian_scores_near_zero(self):
        rng = np.random.default_rng(11)
        data = rng.standard_normal((5000, 3))
        scores = KurtosisObjective().score(data, np.eye(3))
        assert np.all(np.abs(scores) < 0.3)

    def test_reproducible_with_seed(self):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((300, 3))
        data[:150, 0] += 4.0
        v1 = most_informative_view(
            data, "kurtosis", rng=np.random.default_rng(9)
        )
        v2 = most_informative_view(
            data, "kurtosis", rng=np.random.default_rng(9)
        )
        np.testing.assert_array_equal(v1.axes, v2.axes)


class TestAxisObjective:
    def test_directions_are_canonical_basis(self):
        data = np.zeros((10, 4))
        basis = AxisObjective().find_directions(data, np.random.default_rng(0))
        np.testing.assert_array_equal(basis, np.eye(4))

    def test_view_picks_most_nongaussian_attribute(self, rng):
        data = rng.standard_normal((1000, 3))
        data[:500, 2] += 6.0  # bimodal along X3
        data[:, 2] -= data[:, 2].mean()
        data[:, 2] /= data[:, 2].std()
        view = most_informative_view(data, objective="axis")
        assert abs(view.axes[0][2]) == 1.0
        assert view.all_scores.size == 3


class TestSessionIntegration:
    def test_session_accepts_any_registered_objective(self, two_cluster_data):
        from repro.core.session import ExplorationSession

        data, _ = two_cluster_data
        for name in ("kurtosis", "axis"):
            session = ExplorationSession(data, objective=name, seed=0)
            view = session.current_view()
            assert view.objective == name
            assert np.all(np.isfinite(view.axes))


class TestTemporaryOverride:
    def test_shadows_and_restores_builtin(self, rng):
        from repro.projection.registry import ICAObjective, get, temporary

        original = get("ica")
        with temporary(ICAObjective(restarts=7)) as override:
            assert get("ica") is override
            assert get("ica").restarts == 7
        assert get("ica") is original

    def test_restores_even_on_error(self):
        from repro.projection.registry import ICAObjective, get, temporary

        original = get("ica")
        with pytest.raises(RuntimeError):
            with temporary(ICAObjective(restarts=2)):
                raise RuntimeError("boom")
        assert get("ica") is original

    def test_unregistered_name_is_removed_on_exit(self):
        from repro.projection import registry

        class Throwaway:
            name = "throwaway-temp"
            description = "test"

            def find_directions(self, whitened, rng):
                return np.eye(np.asarray(whitened).shape[1])

            def score(self, whitened, directions):
                return np.zeros(np.atleast_2d(directions).shape[0])

        with registry.temporary(Throwaway()):
            assert registry.is_registered("throwaway-temp")
        assert not registry.is_registered("throwaway-temp")

    def test_nameless_objective_rejected(self):
        from repro.projection import registry

        with pytest.raises(ValueError):
            with registry.temporary(object()):
                pass


class TestICAObjectiveRestarts:
    def test_invalid_restart_count_rejected(self):
        from repro.projection.registry import ICAObjective

        with pytest.raises(ValueError):
            ICAObjective(restarts=0)

    def test_restart_search_is_deterministic(self, two_cluster_data):
        from repro.projection.registry import ICAObjective

        data, _ = two_cluster_data
        obj = ICAObjective(restarts=4)
        a = obj.find_directions(data, np.random.default_rng(3))
        b = obj.find_directions(data, np.random.default_rng(3))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
