"""Unit tests for the from-scratch PCA."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.projection.pca import fit_pca, unit_deviation_score


class TestFitPca:
    def test_components_orthonormal(self, rng):
        data = rng.standard_normal((200, 5))
        result = fit_pca(data)
        np.testing.assert_allclose(
            result.components @ result.components.T, np.eye(5), atol=1e-10
        )

    def test_variance_ordering(self, rng):
        data = rng.standard_normal((500, 4)) @ np.diag([4.0, 2.0, 1.0, 0.5])
        result = fit_pca(data)
        assert np.all(np.diff(result.variances) <= 1e-12)

    def test_finds_dominant_direction(self, rng):
        direction = np.array([0.6, 0.8, 0.0])
        data = rng.standard_normal((1000, 1)) * 5.0 @ direction[None, :]
        data += 0.1 * rng.standard_normal((1000, 3))
        result = fit_pca(data)
        assert abs(result.components[0] @ direction) > 0.99

    def test_variances_match_projected_data(self, rng):
        data = rng.standard_normal((300, 3)) * np.array([3.0, 1.0, 0.2])
        result = fit_pca(data)
        projected = result.transform(data)
        np.testing.assert_allclose(
            projected.var(axis=0, ddof=1), result.variances, rtol=1e-8
        )

    def test_transform_centres_data(self, rng):
        data = rng.standard_normal((100, 3)) + 10.0
        result = fit_pca(data)
        projected = result.transform(data, n_components=2)
        assert projected.shape == (100, 2)
        np.testing.assert_allclose(projected.mean(axis=0), 0.0, atol=1e-10)

    def test_unit_deviation_ranking(self, rng):
        # Variances 1.0 (boring), 9.0 and 0.01 (both interesting): the
        # unit-deviation ranking must put the non-unit ones first.
        data = rng.standard_normal((2000, 3)) * np.array([1.0, 3.0, 0.1])
        result = fit_pca(data, rank_by_unit_deviation=True)
        top_two = {int(np.argmax(np.abs(result.components[k]))) for k in (0, 1)}
        assert top_two == {1, 2}

    def test_rejects_single_row(self):
        with pytest.raises(DataShapeError):
            fit_pca(np.ones((1, 3)))


class TestUnitDeviationScore:
    def test_zero_at_unit_variance(self):
        assert unit_deviation_score(np.array([1.0]))[0] == pytest.approx(0.0)

    def test_positive_elsewhere(self):
        scores = unit_deviation_score(np.array([0.5, 2.0, 10.0, 0.01]))
        assert np.all(scores > 0.0)

    def test_symmetric_in_log_variance(self):
        # KL(N(0,s)||N(0,1)) at s and 1/s are not equal, but both positive
        # and the score must grow monotonically away from 1 in either
        # direction.
        up = unit_deviation_score(np.array([1.5, 2.0, 3.0]))
        down = unit_deviation_score(np.array([0.7, 0.5, 0.3]))
        assert np.all(np.diff(up) > 0)
        assert np.all(np.diff(down) > 0)

    def test_zero_variance_clamped(self):
        score = unit_deviation_score(np.array([0.0]))
        assert np.isfinite(score[0])
        assert score[0] > 100.0
