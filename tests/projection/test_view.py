"""Tests for Projection2D and most_informative_view."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.projection.view import Projection2D, most_informative_view


class TestProjection2D:
    def _view(self, d=4):
        axes = np.zeros((2, d))
        axes[0, 0] = 1.0
        axes[1, 1] = 1.0
        return Projection2D(
            axes=axes,
            scores=np.array([0.5, 0.25]),
            objective="pca",
            all_scores=np.array([0.5, 0.25, 0.0, 0.0]),
        )

    def test_project_shape(self, rng):
        view = self._view()
        out = view.project(rng.standard_normal((30, 4)))
        assert out.shape == (30, 2)

    def test_project_values(self):
        view = self._view()
        data = np.arange(8.0).reshape(2, 4)
        out = view.project(data)
        np.testing.assert_array_equal(out, data[:, :2])

    def test_project_dimension_mismatch(self, rng):
        view = self._view()
        with pytest.raises(DataShapeError):
            view.project(rng.standard_normal((5, 3)))

    def test_axis_label_format(self):
        view = self._view()
        label = view.axis_label(0)
        assert label.startswith("PCA1[0.5]")
        assert "(X1)" in label

    def test_axis_label_custom_names(self):
        view = self._view()
        label = view.axis_label(1, feature_names=["a", "b", "c", "d"])
        assert "(b)" in label
        assert label.startswith("PCA2")

    def test_axis_label_top_truncates(self):
        view = self._view()
        label = view.axis_label(0, top=1)
        assert label.count("(") == 1

    def test_describe_two_lines(self):
        assert len(self._view().describe().splitlines()) == 2


class TestMostInformativeView:
    def test_pca_finds_variance_outlier(self, rng):
        data = rng.standard_normal((1000, 4))
        data[:, 2] *= 6.0
        view = most_informative_view(data, objective="pca")
        assert abs(view.axes[0][2]) > 0.95
        assert view.scores[0] > 1.0

    def test_ica_finds_cluster_direction(self, rng):
        data = rng.standard_normal((1000, 3))
        data[:500, 0] += 6.0  # bimodal along X1
        data[:, 0] -= data[:, 0].mean()
        data[:, 0] /= data[:, 0].std()
        view = most_informative_view(
            data, objective="ica", rng=np.random.default_rng(0)
        )
        assert abs(view.axes[0][0]) > 0.9

    def test_axes_sorted_by_abs_score(self, rng):
        data = rng.standard_normal((500, 5)) * np.array([1, 1, 3, 0.2, 1])
        view = most_informative_view(data, objective="pca")
        assert abs(view.scores[0]) >= abs(view.scores[1])
        assert np.all(np.diff(np.abs(view.all_scores)) <= 1e-12)

    def test_unknown_objective_rejected(self, rng):
        with pytest.raises(ValueError):
            most_informative_view(rng.standard_normal((50, 3)), objective="tsne")

    def test_all_scores_cover_dimension(self, rng):
        data = rng.standard_normal((300, 4))
        view = most_informative_view(data, objective="pca")
        assert view.all_scores.size == 4

    def test_reproducible_with_seed(self, rng):
        data = rng.standard_normal((400, 3))
        data[:200, 1] += 4.0
        v1 = most_informative_view(data, "ica", rng=np.random.default_rng(5))
        v2 = most_informative_view(data, "ica", rng=np.random.default_rng(5))
        np.testing.assert_array_equal(v1.axes, v2.axes)
