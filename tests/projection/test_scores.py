"""Unit tests for the PCA/ICA view scores."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.projection.scores import (
    GAUSSIAN_LOGCOSH_MEAN,
    ica_scores,
    pca_scores,
    view_score_summary,
)


class TestGaussianReference:
    def test_reference_constant_value(self):
        # E[log cosh nu] for nu ~ N(0,1); cross-checked by Monte Carlo.
        rng = np.random.default_rng(0)
        mc = np.mean(np.log(np.cosh(rng.standard_normal(2_000_000))))
        assert GAUSSIAN_LOGCOSH_MEAN == pytest.approx(mc, abs=2e-3)


class TestPcaScores:
    def test_unit_gaussian_scores_near_zero(self, rng):
        data = rng.standard_normal((5000, 3))
        scores = pca_scores(data, np.eye(3))
        assert np.all(scores < 0.01)

    def test_inflated_direction_scores_high(self, rng):
        data = rng.standard_normal((2000, 2)) * np.array([3.0, 1.0])
        scores = pca_scores(data, np.eye(2))
        assert scores[0] > 1.0
        assert scores[1] < 0.01

    def test_collapsed_direction_scores_high(self, rng):
        data = rng.standard_normal((2000, 2)) * np.array([1.0, 0.05])
        scores = pca_scores(data, np.eye(2))
        assert scores[1] > 1.0

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(DataShapeError):
            pca_scores(rng.standard_normal((10, 3)), np.eye(4))


class TestIcaScores:
    def test_gaussian_scores_near_zero(self, rng):
        data = rng.standard_normal((20000, 2))
        scores = ica_scores(data, np.eye(2))
        assert np.all(np.abs(scores) < 0.01)

    def test_sign_convention(self, rng):
        # Log-cosh convention: Laplace (heavy tails, super-gaussian) ->
        # negative deviation; uniform (flat top, sub-gaussian) -> positive.
        laplace = rng.laplace(0.0, 1.0, (20000, 1))
        uniform = rng.uniform(-1.0, 1.0, (20000, 1))
        assert ica_scores(laplace, np.eye(1))[0] < -0.02
        assert ica_scores(uniform, np.eye(1))[0] > 0.02

    def test_scale_invariant(self, rng):
        data = rng.laplace(0.0, 1.0, (10000, 1))
        s1 = ica_scores(data, np.eye(1))[0]
        s2 = ica_scores(100.0 * data, np.eye(1))[0]
        assert s1 == pytest.approx(s2, rel=1e-9)

    def test_symmetric_bimodal_scores_positive(self, rng):
        # Symmetric two-mode data is sub-gaussian -> positive log-cosh
        # deviation.
        modes = rng.choice([-2.0, 2.0], size=(10000, 1))
        data = modes + 0.3 * rng.standard_normal((10000, 1))
        assert ica_scores(data, np.eye(1))[0] > 0.03


class TestViewScoreSummary:
    def test_sorted_by_absolute_value(self, rng):
        data = rng.standard_normal((3000, 3)) * np.array([1.0, 5.0, 0.1])
        summary = view_score_summary(data, np.eye(3), objective="pca")
        assert np.all(np.diff(np.abs(summary)) <= 1e-15)

    def test_unknown_objective_rejected(self, rng):
        with pytest.raises(ValueError):
            view_score_summary(rng.standard_normal((10, 2)), np.eye(2), "huh")
