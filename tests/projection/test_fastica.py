"""Unit tests for the from-scratch FastICA."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, DataShapeError
from repro.projection.fastica import fit_fastica


def _mixed_sources(rng, n=3000):
    """Two clearly non-Gaussian sources mixed linearly."""
    s1 = rng.uniform(-np.sqrt(3), np.sqrt(3), n)       # sub-gaussian
    s2 = rng.laplace(0.0, 1.0 / np.sqrt(2.0), n)       # super-gaussian
    sources = np.stack([s1, s2], axis=1)
    mixing = np.array([[1.0, 0.4], [0.3, 1.0]])
    return sources @ mixing.T, mixing


class TestFitFastica:
    @pytest.mark.parametrize("algorithm", ["symmetric", "deflation"])
    def test_recovers_mixing_directions(self, rng, algorithm):
        data, mixing = _mixed_sources(rng)
        result = fit_fastica(
            data, rng=np.random.default_rng(0), algorithm=algorithm
        )
        assert result.components.shape == (2, 2)
        # Each unmixing direction must isolate one source: the product of
        # the component matrix and the mixing matrix should be close to a
        # scaled permutation.  Check via absolute cosines against the true
        # unmixing rows.
        unmixing = np.linalg.inv(mixing)
        unmixing /= np.linalg.norm(unmixing, axis=1, keepdims=True)
        cosines = np.abs(result.components @ unmixing.T)
        # Best match per true direction must be near 1.
        assert np.all(cosines.max(axis=0) > 0.95)

    def test_components_unit_norm(self, rng):
        data, _ = _mixed_sources(rng)
        result = fit_fastica(data, rng=np.random.default_rng(1))
        np.testing.assert_allclose(
            np.linalg.norm(result.components, axis=1), 1.0, atol=1e-10
        )

    def test_n_components_limits_output(self, rng):
        data = rng.standard_normal((500, 5))
        result = fit_fastica(data, n_components=2, rng=np.random.default_rng(2))
        assert result.components.shape == (2, 5)

    def test_rank_deficient_input_handled(self, rng):
        # Third column is a copy of the first: rank 2 in 3-D.
        base = rng.standard_normal((400, 2))
        data = np.column_stack([base[:, 0], base[:, 1], base[:, 0]])
        result = fit_fastica(data, rng=np.random.default_rng(3))
        assert result.components.shape[0] <= 2

    def test_deterministic_given_seed(self, rng):
        data, _ = _mixed_sources(rng)
        r1 = fit_fastica(data, rng=np.random.default_rng(9))
        r2 = fit_fastica(data, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(r1.components, r2.components)

    def test_zero_variance_input_raises(self):
        with pytest.raises(ConvergenceError):
            fit_fastica(np.ones((100, 3)))

    def test_single_row_rejected(self):
        with pytest.raises(DataShapeError):
            fit_fastica(np.ones((1, 3)))

    def test_unknown_algorithm_rejected(self, rng):
        data, _ = _mixed_sources(rng)
        with pytest.raises(ValueError):
            fit_fastica(data, algorithm="banana")

    def test_seed_shorthand_matches_explicit_rng(self, rng):
        data, _ = _mixed_sources(rng)
        via_seed = fit_fastica(data, seed=7)
        via_rng = fit_fastica(data, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(via_seed.components, via_rng.components)

    def test_seed_and_rng_together_rejected(self, rng):
        data, _ = _mixed_sources(rng)
        with pytest.raises(ValueError):
            fit_fastica(data, rng=np.random.default_rng(0), seed=1)

    def test_deflation_finds_strong_discriminant(self, rng):
        # A tight 10% cluster far from the bulk: the discriminating
        # direction is strongly non-gaussian and deflation must align a
        # component with it.
        bulk = rng.standard_normal((900, 6))
        offset = np.zeros(6)
        offset[2] = 8.0
        blob = rng.standard_normal((100, 6)) * 0.3 + offset
        data = np.vstack([bulk, blob])
        result = fit_fastica(
            data, rng=np.random.default_rng(4), algorithm="deflation"
        )
        discriminant = data[900:].mean(axis=0) - data[:900].mean(axis=0)
        discriminant /= np.linalg.norm(discriminant)
        assert np.max(np.abs(result.components @ discriminant)) > 0.9


class TestMultiRestart:
    def test_result_reports_restart_metadata(self, rng):
        data, _ = _mixed_sources(rng)
        result = fit_fastica(data, seed=3, n_restarts=4)
        assert result.n_restarts == 4
        assert 0 <= result.best_restart < 4
        assert result.contrast is not None and result.contrast > 0.0
        assert result.components.shape == (2, 2)

    def test_single_restart_metadata_defaults(self, rng):
        data, _ = _mixed_sources(rng)
        result = fit_fastica(data, seed=3)
        assert result.n_restarts == 1
        assert result.best_restart == 0

    def test_deterministic_given_seed(self, rng):
        data, _ = _mixed_sources(rng)
        r1 = fit_fastica(data, seed=11, n_restarts=5)
        r2 = fit_fastica(data, seed=11, n_restarts=5)
        np.testing.assert_array_equal(r1.components, r2.components)
        assert r1.best_restart == r2.best_restart

    def test_winner_beats_or_ties_every_single_restart(self, rng):
        """The selected restart's contrast must dominate: a best-of-R search
        can never return something weaker than what any single run found."""
        data, _ = _mixed_sources(rng)
        multi = fit_fastica(data, seed=5, n_restarts=6)
        assert multi.contrast is not None
        # Reconstruct each restart's contrast via the reference path.
        from repro.projection.fastica import _pca_whiten
        from repro.projection.reference import (
            reference_multi_restart_symmetric,
        )

        z, _, _, k = _pca_whiten(np.asarray(data, dtype=np.float64), None)
        inits = np.random.default_rng(5).standard_normal((6, k, k))
        _, _, _, contrasts = reference_multi_restart_symmetric(
            z, inits, 500, 1e-6
        )
        assert multi.contrast >= float(np.max(contrasts)) - 1e-12

    def test_zero_restarts_rejected(self, rng):
        data, _ = _mixed_sources(rng)
        with pytest.raises(ValueError):
            fit_fastica(data, n_restarts=0)

    def test_deflation_with_restarts_rejected(self, rng):
        data, _ = _mixed_sources(rng)
        with pytest.raises(ValueError):
            fit_fastica(data, algorithm="deflation", n_restarts=2)


class TestConvergenceBoundary:
    """Pin the iteration-cap boundary: meeting tolerance on the final
    permitted iteration is convergence, not a cap-out."""

    def test_symmetric_converging_exactly_at_cap_reports_true(self, rng):
        data, _ = _mixed_sources(rng)
        # A huge tolerance makes the very first update pass the alignment
        # test; with max_iterations=1 that step IS the cap boundary.
        result = fit_fastica(data, seed=0, max_iterations=1, tolerance=2.0)
        assert result.n_iterations == 1
        assert result.converged is True

    def test_symmetric_multi_restart_at_cap_reports_true(self, rng):
        data, _ = _mixed_sources(rng)
        result = fit_fastica(
            data, seed=0, max_iterations=1, tolerance=2.0, n_restarts=3
        )
        assert result.n_iterations == 1
        assert result.converged is True

    def test_deflation_converging_exactly_at_cap_reports_true(self, rng):
        data, _ = _mixed_sources(rng)
        result = fit_fastica(
            data,
            seed=0,
            max_iterations=1,
            tolerance=2.0,
            algorithm="deflation",
        )
        assert result.converged is True

    def test_missing_tolerance_at_cap_reports_false(self, rng):
        data, _ = _mixed_sources(rng)
        # An impossible tolerance can never converge: |<w_new, w>| <= 1
        # while the threshold is 1 - (-1) = ... > 1.  The run must cap out
        # with converged=False after exactly max_iterations.
        result = fit_fastica(data, seed=0, max_iterations=3, tolerance=0.0)
        assert result.n_iterations == 3
        assert result.converged is False
