"""Unit tests for the from-scratch FastICA."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, DataShapeError
from repro.projection.fastica import fit_fastica


def _mixed_sources(rng, n=3000):
    """Two clearly non-Gaussian sources mixed linearly."""
    s1 = rng.uniform(-np.sqrt(3), np.sqrt(3), n)       # sub-gaussian
    s2 = rng.laplace(0.0, 1.0 / np.sqrt(2.0), n)       # super-gaussian
    sources = np.stack([s1, s2], axis=1)
    mixing = np.array([[1.0, 0.4], [0.3, 1.0]])
    return sources @ mixing.T, mixing


class TestFitFastica:
    @pytest.mark.parametrize("algorithm", ["symmetric", "deflation"])
    def test_recovers_mixing_directions(self, rng, algorithm):
        data, mixing = _mixed_sources(rng)
        result = fit_fastica(
            data, rng=np.random.default_rng(0), algorithm=algorithm
        )
        assert result.components.shape == (2, 2)
        # Each unmixing direction must isolate one source: the product of
        # the component matrix and the mixing matrix should be close to a
        # scaled permutation.  Check via absolute cosines against the true
        # unmixing rows.
        unmixing = np.linalg.inv(mixing)
        unmixing /= np.linalg.norm(unmixing, axis=1, keepdims=True)
        cosines = np.abs(result.components @ unmixing.T)
        # Best match per true direction must be near 1.
        assert np.all(cosines.max(axis=0) > 0.95)

    def test_components_unit_norm(self, rng):
        data, _ = _mixed_sources(rng)
        result = fit_fastica(data, rng=np.random.default_rng(1))
        np.testing.assert_allclose(
            np.linalg.norm(result.components, axis=1), 1.0, atol=1e-10
        )

    def test_n_components_limits_output(self, rng):
        data = rng.standard_normal((500, 5))
        result = fit_fastica(data, n_components=2, rng=np.random.default_rng(2))
        assert result.components.shape == (2, 5)

    def test_rank_deficient_input_handled(self, rng):
        # Third column is a copy of the first: rank 2 in 3-D.
        base = rng.standard_normal((400, 2))
        data = np.column_stack([base[:, 0], base[:, 1], base[:, 0]])
        result = fit_fastica(data, rng=np.random.default_rng(3))
        assert result.components.shape[0] <= 2

    def test_deterministic_given_seed(self, rng):
        data, _ = _mixed_sources(rng)
        r1 = fit_fastica(data, rng=np.random.default_rng(9))
        r2 = fit_fastica(data, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(r1.components, r2.components)

    def test_zero_variance_input_raises(self):
        with pytest.raises(ConvergenceError):
            fit_fastica(np.ones((100, 3)))

    def test_single_row_rejected(self):
        with pytest.raises(DataShapeError):
            fit_fastica(np.ones((1, 3)))

    def test_unknown_algorithm_rejected(self, rng):
        data, _ = _mixed_sources(rng)
        with pytest.raises(ValueError):
            fit_fastica(data, algorithm="banana")

    def test_deflation_finds_strong_discriminant(self, rng):
        # A tight 10% cluster far from the bulk: the discriminating
        # direction is strongly non-gaussian and deflation must align a
        # component with it.
        bulk = rng.standard_normal((900, 6))
        offset = np.zeros(6)
        offset[2] = 8.0
        blob = rng.standard_normal((100, 6)) * 0.3 + offset
        data = np.vstack([bulk, blob])
        result = fit_fastica(
            data, rng=np.random.default_rng(4), algorithm="deflation"
        )
        discriminant = data[900:].mean(axis=0) - data[:900].mean(axis=0)
        discriminant /= np.linalg.norm(discriminant)
        assert np.max(np.abs(result.components @ discriminant)) > 0.9
