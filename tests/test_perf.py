"""Tests for the perf instrumentation layer (repro.perf)."""

import json
import threading
import time

import numpy as np
import pytest

from repro import perf
from repro.perf import PerfRegistry


def _raise_mid_sweep(sweep, index, lam, params):
    raise RuntimeError("killed mid-sweep")


class TestRegistry:
    def test_disabled_by_default_and_records_nothing(self):
        reg = PerfRegistry()
        with reg.timer("solve"):
            reg.add("steps", 5)
        snap = reg.snapshot()
        assert snap == {"timings": {}, "counters": {}}

    def test_disabled_timer_is_shared_noop(self):
        reg = PerfRegistry()
        assert reg.timer("a") is reg.timer("b")

    def test_timings_and_counters_recorded_when_enabled(self):
        reg = PerfRegistry(enabled=True)
        with reg.timer("solve"):
            time.sleep(0.001)
            reg.add("steps", 3)
        reg.add("steps", 2)
        snap = reg.snapshot()
        assert snap["counters"] == {"steps": 5}
        assert snap["timings"]["solve"]["calls"] == 1
        assert snap["timings"]["solve"]["seconds"] > 0.0

    def test_nested_timers_record_slash_paths(self):
        reg = PerfRegistry(enabled=True)
        with reg.timer("solve"):
            with reg.timer("init"):
                pass
            with reg.timer("optim"):
                pass
            with reg.timer("optim"):
                pass
        snap = reg.snapshot()
        assert set(snap["timings"]) == {"solve", "solve/init", "solve/optim"}
        assert snap["timings"]["solve/optim"]["calls"] == 2

    def test_reset_clears_everything(self):
        reg = PerfRegistry(enabled=True)
        with reg.timer("x"):
            reg.add("c")
        reg.reset()
        assert reg.snapshot() == {"timings": {}, "counters": {}}

    def test_raising_block_still_pops_the_nesting_stack(self):
        # Regression: a timer exited by an exception must pop its frame,
        # or every later path on the thread is silently prefixed with it.
        reg = PerfRegistry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.timer("solve"):
                raise RuntimeError("solver blew up")
        with reg.timer("after"):
            pass
        snap = reg.snapshot()
        assert "after" in snap["timings"]
        assert "solve/after" not in snap["timings"]
        # the failed block itself is still recorded
        assert snap["timings"]["solve"]["calls"] == 1

    def test_raising_solve_leaves_later_paths_clean(self):
        # End-to-end variant over the real solver instrumentation: a solve
        # that dies mid-sweep must not corrupt subsequent recordings.
        from repro.core.constraint import Constraint, ConstraintKind
        from repro.core.solver import solve_maxent

        rng = np.random.default_rng(3)
        data = rng.standard_normal((40, 3))
        constraints = [
            Constraint(
                ConstraintKind.QUADRATIC,
                np.arange(10),
                np.array([1.0, 0.0, 0.0]),
            )
        ]
        perf.enable()
        perf.reset()
        try:
            with pytest.raises(Exception):
                solve_maxent(
                    data,
                    constraints,
                    on_step=_raise_mid_sweep,
                )
            with perf.timer("clean_block"):
                pass
            snap = perf.snapshot()
        finally:
            perf.disable()
            perf.reset()
        assert "clean_block" in snap["timings"]
        assert not any(
            path.startswith("solver_optim/") and path.endswith("clean_block")
            for path in snap["timings"]
        )

    def test_snapshot_is_json_serialisable(self):
        reg = PerfRegistry(enabled=True)
        with reg.timer("a"):
            reg.add("n", 1.5)
        json.dumps(reg.snapshot())

    def test_thread_safety_and_thread_local_nesting(self):
        reg = PerfRegistry(enabled=True)
        errors = []

        def work(name: str) -> None:
            try:
                for _ in range(200):
                    with reg.timer(name):
                        with reg.timer("inner"):
                            reg.add("total")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        snap = reg.snapshot()
        assert snap["counters"]["total"] == 800
        # Nesting paths never mix thread A's outer frame with thread B's.
        for i in range(4):
            assert snap["timings"][f"t{i}/inner"]["calls"] == 200


class TestModuleLevelRegistry:
    def test_enable_disable_roundtrip(self):
        assert not perf.is_enabled()
        perf.enable()
        try:
            assert perf.is_enabled()
            with perf.timer("block"):
                perf.add("hits")
            snap = perf.snapshot()
            assert snap["counters"]["hits"] == 1
            assert "block" in snap["timings"]
        finally:
            perf.disable()
            perf.reset()

    def test_solver_records_counters_when_enabled(self):
        from repro.core.solver import solve_maxent
        from repro.core.constraint import Constraint, ConstraintKind

        rng = np.random.default_rng(0)
        data = rng.standard_normal((40, 3))
        constraints = [
            Constraint(
                ConstraintKind.QUADRATIC,
                np.arange(10),
                np.array([1.0, 0.0, 0.0]),
            )
        ]
        perf.enable()
        perf.reset()
        try:
            solve_maxent(data, constraints)
            snap = perf.snapshot()
            assert snap["counters"]["solver.solves"] == 1
            assert snap["counters"]["solver.sweeps"] >= 1
            assert "solver_init" in snap["timings"]
            assert "solver_optim" in snap["timings"]
        finally:
            perf.disable()
            perf.reset()

    def test_service_stats_always_embed_snapshot_with_enabled_marker(self):
        from repro.datasets import three_d_clusters
        from repro.service import SessionManager

        manager = SessionManager(
            {"three-d": lambda: three_d_clusters(seed=0)}
        )
        # Disabled: the field is still there (explicit marker, empty data),
        # so /v1/stats consumers never have to sniff for a missing key.
        disabled = manager.stats()["perf"]
        assert disabled["enabled"] is False
        assert disabled["timings"] == {}
        perf.enable()
        perf.reset()
        try:
            sid = manager.create("three-d")
            manager.view(sid)
            stats = manager.stats()
            assert stats["perf"]["enabled"] is True
            assert "service_view" in stats["perf"]["timings"]
        finally:
            perf.disable()
            perf.reset()


class TestProjectionInstrumentation:
    """The projection layer reports under projection/* (PR 5)."""

    def test_view_search_records_projection_paths(self):
        from repro.core.session import ExplorationSession

        rng = np.random.default_rng(0)
        data = np.vstack(
            [rng.standard_normal((60, 3)), rng.standard_normal((40, 3)) + 3.0]
        )
        perf.enable()
        perf.reset()
        try:
            ExplorationSession(data, objective="ica", seed=0).current_view()
            snap = perf.snapshot()
            paths = set(snap["timings"])
            assert any(p.startswith("projection/find/ica") for p in paths)
            # FastICA's internal phases nest under the search timer.
            assert any(p.endswith("fastica/iterate") for p in paths)
            assert any(p.endswith("fastica/pca_whiten") for p in paths)
            counters = snap["counters"]
            assert counters["projection.fastica_runs"] >= 2  # both variants
            assert counters["projection.fastica_iterations"] >= 1
            assert counters["projection.views_built"] == 1
        finally:
            perf.disable()
            perf.reset()

    def test_pca_and_kurtosis_objectives_record_paths(self):
        from repro.projection.view import most_informative_view

        rng = np.random.default_rng(1)
        whitened = rng.standard_normal((80, 4))
        perf.enable()
        perf.reset()
        try:
            most_informative_view(whitened, objective="pca")
            most_informative_view(whitened, objective="kurtosis")
            paths = set(perf.snapshot()["timings"])
            assert any(p.startswith("projection/find/pca") for p in paths)
            assert any(
                p.startswith("projection/find/kurtosis") for p in paths
            )
            assert any(p.endswith("kurtosis_pursuit") for p in paths)
        finally:
            perf.disable()
            perf.reset()

    def test_service_stats_surface_projection_timers(self):
        """GET /v1/stats exposes projection/* when REPRO_PERF is on."""
        from repro.datasets import three_d_clusters
        from repro.service import SessionManager

        manager = SessionManager({"three-d": lambda: three_d_clusters(seed=0)})
        perf.enable()
        perf.reset()
        try:
            sid = manager.create("three-d", objective="ica")
            manager.view(sid)
            stats = manager.stats()
            timings = stats["perf"]["timings"]
            assert any("projection/" in path for path in timings)
            # Round-trip through JSON like the HTTP layer does.
            assert any(
                "projection/" in path
                for path in json.loads(json.dumps(stats))["perf"]["timings"]
            )
        finally:
            perf.disable()
            perf.reset()
