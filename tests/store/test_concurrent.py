"""Concurrent access to one SQLite store: threads, processes, compaction.

Satellite of the durability work: SQLite serialises writers via the
busy-timeout, so concurrent appenders must never lose a record, never
reuse a sequence number, and ``list_ids`` must stay consistent.
"""

import subprocess
import sys
import threading
from pathlib import Path

from repro.store.sqlite import SQLiteStore

_REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

_APPENDER_SCRIPT = """
import sys
from repro.store.sqlite import SQLiteStore

path, worker, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = SQLiteStore(path)
for i in range(count):
    rec = store.append_feedback(
        "shared", [{"worker": worker, "i": i}]
    )
    print(rec.seq, flush=True)
store.close()
"""


class TestThreads:
    def test_two_threads_never_lose_or_duplicate_seqs(self, tmp_path):
        store = SQLiteStore(tmp_path / "c.db", busy_timeout_ms=10_000)
        per_thread = 40
        seqs: list[int] = []
        lock = threading.Lock()

        def appender(worker: str) -> None:
            for i in range(per_thread):
                rec = store.append_feedback(
                    "shared", [{"worker": worker, "i": i}]
                )
                with lock:
                    seqs.append(rec.seq)

        threads = [
            threading.Thread(target=appender, args=(name,))
            for name in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert sorted(seqs) == list(range(1, 2 * per_thread + 1))
        records, damage = store.feedback_tail("shared")
        assert damage is None
        assert [r.seq for r in records] == list(range(1, 2 * per_thread + 1))
        # Per-worker batches arrive in their submission order.
        for worker in ("t1", "t2"):
            ours = [r.items[0]["i"] for r in records
                    if r.items[0]["worker"] == worker]
            assert ours == list(range(per_thread))
        store.close()

    def test_append_while_compacting(self, tmp_path):
        store = SQLiteStore(tmp_path / "c.db", busy_timeout_ms=10_000)
        for i in range(10):
            store.append_feedback("shared", [{"i": i}])
        stop = threading.Event()
        errors: list[Exception] = []

        def folder() -> None:
            try:
                while not stop.is_set():
                    floor = store.last_seq("shared")
                    store.checkpoint_and_prune(
                        "shared", {"wal_seq": floor}, floor
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        thread = threading.Thread(target=folder)
        thread.start()
        try:
            appended = [
                store.append_feedback("shared", [{"i": i}]).seq
                for i in range(10, 60)
            ]
        finally:
            stop.set()
            thread.join()
        assert not errors
        # Folds never handed out a stale floor: seqs stay strictly
        # increasing even while records are being pruned underneath.
        assert appended == sorted(set(appended))
        assert appended[0] > 10
        assert store.last_seq("shared") == appended[-1]
        store.close()


class TestProcesses:
    def test_two_processes_share_one_db(self, tmp_path):
        path = str(tmp_path / "multi.db")
        SQLiteStore(path).close()  # create the schema up front
        per_proc = 25
        procs = [
            subprocess.run(
                [
                    sys.executable,
                    "-c",
                    _APPENDER_SCRIPT,
                    path,
                    name,
                    str(per_proc),
                ],
                capture_output=True,
                text=True,
                timeout=120,
                env={
                    "PYTHONPATH": _REPO_SRC,
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                },
            )
            for name in ("p1", "p2")
        ]
        for proc in procs:
            assert proc.returncode == 0, proc.stderr

        store = SQLiteStore(path)
        records, damage = store.feedback_tail("shared")
        assert damage is None
        assert [r.seq for r in records] == list(range(1, 2 * per_proc + 1))
        assert all(r.verify() for r in records)
        assert store.list_ids() == ["shared"]
        for worker in ("p1", "p2"):
            ours = [r.items[0]["i"] for r in records
                    if r.items[0]["worker"] == worker]
            assert ours == list(range(per_proc))
        store.close()

    def test_compaction_races_a_writer_process(self, tmp_path):
        path = str(tmp_path / "race.db")
        store = SQLiteStore(path, busy_timeout_ms=10_000)
        writer = subprocess.Popen(
            [sys.executable, "-c", _APPENDER_SCRIPT, path, "w", "40"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                "PYTHONPATH": _REPO_SRC,
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )
        try:
            # Fold repeatedly while the other process appends.
            for _ in range(20):
                floor = store.last_seq("shared")
                store.checkpoint_and_prune("shared", {"wal_seq": floor}, floor)
        finally:
            out, err = writer.communicate(timeout=120)
        assert writer.returncode == 0, err
        acked = [int(line) for line in out.split()]
        assert acked == sorted(set(acked)), "writer saw a reused seq"
        assert len(acked) == 40
        # Every acked batch is either folded into the checkpoint (seq <=
        # wal_seq) or still replayable in the tail — never lost.
        ckpt_seq = store.get("shared")["wal_seq"]
        tail, damage = store.feedback_tail("shared", after_seq=ckpt_seq)
        assert damage is None
        covered = set(range(1, ckpt_seq + 1)) | {r.seq for r in tail}
        assert set(acked) <= covered
        store.close()
