"""Tests for the SQLite session store (checkpoints + WAL in one DB)."""

import sqlite3

import pytest

from repro.service.store import SessionNotFoundError, StoreError
from repro.store.sqlite import SCHEMA_VERSION, SQLiteStore


@pytest.fixture
def store(tmp_path):
    s = SQLiteStore(tmp_path / "sessions.db")
    yield s
    s.close()


class TestCheckpoints:
    def test_put_get_roundtrip(self, store):
        store.put("s1", {"dataset": "x", "wal_seq": 3})
        assert store.get("s1") == {"dataset": "x", "wal_seq": 3}

    def test_overwrite(self, store):
        store.put("s", {"v": 1})
        store.put("s", {"v": 2})
        assert store.get("s") == {"v": 2}

    def test_missing_id_raises(self, store):
        with pytest.raises(SessionNotFoundError):
            store.get("nope")

    def test_contains_and_list(self, store):
        store.put("b", {"v": 1})
        store.put("a", {"v": 2})
        assert "a" in store and "zz" not in store
        assert store.list_ids() == ["a", "b"]

    def test_list_ids_includes_wal_only_sessions(self, store):
        store.put("ckpt", {"v": 1})
        store.append_feedback("logonly", [{"kind": "cluster", "rows": [1]}])
        assert store.list_ids() == ["ckpt", "logonly"]

    def test_delete_removes_checkpoint_and_log(self, store):
        store.put("s", {"v": 1})
        store.append_feedback("s", [{"rows": [1]}])
        store.delete("s")
        assert "s" not in store
        assert store.list_ids() == []
        assert store.feedback_tail("s") == ([], None)

    def test_delete_is_idempotent(self, store):
        store.put("s", {"v": 1})
        store.delete("s")
        store.delete("s")

    def test_unsafe_session_id_rejected(self, store):
        with pytest.raises(StoreError):
            store.put("../evil", {"v": 1})

    def test_memory_url_rejected(self):
        with pytest.raises(StoreError):
            SQLiteStore(":memory:")


class TestFeedbackLog:
    def test_append_assigns_contiguous_seqs(self, store):
        assert store.append_feedback("s", [{"i": 0}]).seq == 1
        assert store.append_feedback("s", [{"i": 1}]).seq == 2
        assert store.append_feedback("other", [{"i": 0}]).seq == 1
        assert store.last_seq("s") == 2

    def test_records_verify_after_reopen(self, store, tmp_path):
        store.append_feedback("s", [{"i": 0}], kind="feedback")
        store.append_feedback("s", [], kind="undo")
        fresh = SQLiteStore(store.path)
        records, damage = fresh.feedback_tail("s")
        assert damage is None
        assert [(r.seq, r.kind) for r in records] == [
            (1, "feedback"),
            (2, "undo"),
        ]
        assert all(r.verify() for r in records)
        fresh.close()

    def test_rollback_removes_the_row(self, store):
        store.append_feedback("s", [{"i": 0}])
        rec = store.append_feedback("s", [{"i": 1}])
        store.rollback_feedback("s", rec.seq)
        records, _ = store.feedback_tail("s")
        assert [r.seq for r in records] == [1]
        # The rolled-back seq is reused by the next append.
        assert store.append_feedback("s", [{"i": 2}]).seq == 2

    def test_feedback_tail_after_seq(self, store):
        for i in range(4):
            store.append_feedback("s", [{"i": i}])
        records, _ = store.feedback_tail("s", after_seq=2)
        assert [r.seq for r in records] == [3, 4]

    def test_unreadable_row_reported_as_damage(self, store):
        store.append_feedback("s", [{"i": 0}])
        store.append_feedback("s", [{"i": 1}])
        with sqlite3.connect(store.path) as conn:
            conn.execute(
                "UPDATE wal SET items = 'not json' WHERE seq = 2"
            )
        records, damage = store.feedback_tail("s")
        assert damage is not None
        assert [r.seq for r in records] == [1]

    def test_prune_drops_folded_records(self, store):
        for i in range(5):
            store.append_feedback("s", [{"i": i}])
        assert store.prune_feedback("s", 3) == 3
        records, _ = store.feedback_tail("s")
        assert [r.seq for r in records] == [4, 5]


class TestSeqFloor:
    """Sequence numbers must stay monotonic across compaction folds.

    Regression guard for the silent-data-loss bug where a fold emptied
    the wal table and the next append restarted at seq 1 — at or below
    the checkpoint's ``wal_seq``, so recovery (replaying only
    ``seq > wal_seq``) skipped acknowledged batches.
    """

    def test_seq_continues_after_full_prune(self, store):
        for i in range(3):
            store.append_feedback("s", [{"i": i}])
        store.checkpoint_and_prune("s", {"wal_seq": 3}, 3)
        assert store.last_seq("s") == 3
        assert store.append_feedback("s", [{"i": 3}]).seq == 4

    def test_seq_floor_survives_reopen(self, store):
        for i in range(3):
            store.append_feedback("s", [{"i": i}])
        store.checkpoint_and_prune("s", {"wal_seq": 3}, 3)
        fresh = SQLiteStore(store.path)
        assert fresh.last_seq("s") == 3
        assert fresh.append_feedback("s", [{"i": 3}]).seq == 4
        fresh.close()

    def test_post_fold_appends_visible_to_recovery(self, store):
        for i in range(3):
            store.append_feedback("s", [{"i": i}])
        store.checkpoint_and_prune("s", {"wal_seq": 3}, 3)
        store.append_feedback("s", [{"i": 3}])
        ckpt_seq = store.get("s")["wal_seq"]
        records, _ = store.feedback_tail("s", after_seq=ckpt_seq)
        assert [r.items for r in records] == [[{"i": 3}]]


class TestCheckpointAndPrune:
    def test_transactional_fold(self, store):
        for i in range(4):
            store.append_feedback("s", [{"i": i}])
        pruned = store.checkpoint_and_prune("s", {"v": 9, "wal_seq": 4}, 4)
        assert pruned == 4
        assert store.get("s") == {"v": 9, "wal_seq": 4}
        assert store.feedback_tail("s") == ([], None)

    def test_partial_fold_keeps_newer_records(self, store):
        for i in range(4):
            store.append_feedback("s", [{"i": i}])
        store.checkpoint_and_prune("s", {"wal_seq": 2}, 2)
        records, _ = store.feedback_tail("s", after_seq=2)
        assert [r.seq for r in records] == [3, 4]


class TestSchema:
    def test_fresh_db_has_current_version(self, store):
        assert store.schema_version() == SCHEMA_VERSION

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "future.db"
        SQLiteStore(path).close()
        with sqlite3.connect(path) as conn:
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        with pytest.raises(StoreError, match="newer"):
            SQLiteStore(path)

    def test_describe_reports_counts(self, store):
        store.put("a", {"v": 1})
        store.append_feedback("a", [{"i": 0}])
        info = store.describe()
        assert info["schema_version"] == SCHEMA_VERSION
        assert info["sessions"]["a"]["checkpointed"]
        assert info["sessions"]["a"]["tail_records"] == 1

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not a sqlite database at all")
        with pytest.raises(StoreError):
            SQLiteStore(path)


class TestForkSafety:
    """A connection inherited across fork() must be dropped, never reused.

    Simulated by monkeypatching the PID the store sees: touching (or
    closing) the parent's handle from a "child" would release the
    parent's locks mid-transaction, so on a PID change the store must
    open a fresh connection and leave the inherited one strictly alone.
    """

    def test_pid_change_reopens_the_connection(self, store, monkeypatch):
        import repro.store.sqlite as sqlite_module

        store.put("a", {"v": 1})
        parent_conn = store._conn()
        assert store._conn() is parent_conn  # cached within one process

        monkeypatch.setattr(sqlite_module.os, "getpid", lambda: -1)
        child_conn = store._conn()
        assert child_conn is not parent_conn
        # The store still works through the fresh handle.
        assert store.get("a") == {"v": 1}
        store.put("b", {"v": 2})
        # The inherited handle was dropped without close(): it is still
        # usable, exactly as the parent process would need it to be.
        assert parent_conn.execute("SELECT 1").fetchone() == (1,)
        child_conn.close()

    def test_close_in_child_leaves_parent_handle_open(
        self, store, monkeypatch
    ):
        import repro.store.sqlite as sqlite_module

        store.put("a", {"v": 1})
        parent_conn = store._conn()

        monkeypatch.setattr(sqlite_module.os, "getpid", lambda: -1)
        store.close()  # "child" closing the store it inherited
        assert parent_conn.execute("SELECT 1").fetchone() == (1,)

        monkeypatch.undo()
        # Back in the "parent": the store reopens lazily and still works.
        assert store.get("a") == {"v": 1}
