"""Tests for the JSONL write-ahead log (records, repair, pruning)."""

import json
import os

import pytest

from repro.service.store import StoreError
from repro.store.wal import (
    JsonlWal,
    WalRecord,
    record_checksum,
    resolve_aborts,
    validate_fsync_policy,
)


class TestWalRecord:
    def test_make_computes_checksum_and_verifies(self):
        rec = WalRecord.make("s1", 3, items=[{"kind": "cluster", "rows": [1]}])
        assert rec.checksum == record_checksum(
            "s1", 3, "feedback", rec.items, None
        )
        assert rec.verify()

    def test_tampered_record_fails_verify(self):
        rec = WalRecord.make("s1", 1, items=[{"rows": [1, 2]}])
        forged = WalRecord(
            session_id=rec.session_id,
            seq=rec.seq,
            kind=rec.kind,
            items=[{"rows": [1, 2, 3]}],
            checksum=rec.checksum,
        )
        assert not forged.verify()

    def test_json_line_roundtrip(self):
        rec = WalRecord.make("s", 7, kind="undo", ref=None)
        back = WalRecord.from_json_line(rec.to_json_line())
        assert back == rec
        assert back.verify()

    @pytest.mark.parametrize(
        "line", ["", "not json", "[1,2]", '{"seq": 1}', '{"sid": "a"}']
    )
    def test_malformed_lines_raise_store_error(self, line):
        with pytest.raises(StoreError):
            WalRecord.from_json_line(line)

    def test_checksum_depends_on_every_field(self):
        base = record_checksum("s", 1, "feedback", [], None)
        assert record_checksum("t", 1, "feedback", [], None) != base
        assert record_checksum("s", 2, "feedback", [], None) != base
        assert record_checksum("s", 1, "undo", [], None) != base
        assert record_checksum("s", 1, "feedback", [{"a": 1}], None) != base
        assert record_checksum("s", 1, "feedback", [], 1) != base


class TestResolveAborts:
    def test_abort_removes_target_and_marker(self):
        records = [
            WalRecord.make("s", 1, items=[{"a": 1}]),
            WalRecord.make("s", 2, items=[{"a": 2}]),
            WalRecord.make("s", 3, kind="abort", ref=2),
            WalRecord.make("s", 4, items=[{"a": 3}]),
        ]
        live = resolve_aborts(records)
        assert [r.seq for r in live] == [1, 4]

    def test_prune_markers_never_reach_replay(self):
        records = [
            WalRecord.make("s", 5, kind="prune"),
            WalRecord.make("s", 6, items=[{"a": 1}]),
        ]
        assert [r.seq for r in resolve_aborts(records)] == [6]


class TestFsyncPolicy:
    def test_valid_policies(self):
        for policy in ("always", "batch", "off"):
            assert validate_fsync_policy(policy) == policy

    def test_invalid_policy_rejected(self):
        with pytest.raises(StoreError):
            validate_fsync_policy("sometimes")


class TestJsonlWal:
    def test_append_assigns_contiguous_seqs_per_session(self, tmp_path):
        wal = JsonlWal(tmp_path / "log.jsonl")
        assert wal.append("a", [{"x": 1}]).seq == 1
        assert wal.append("b", [{"x": 1}]).seq == 1
        assert wal.append("a", [{"x": 2}]).seq == 2
        assert wal.last_seq("a") == 2
        assert wal.last_seq("b") == 1
        assert wal.last_seq("missing") == 0

    def test_fresh_instance_sees_durable_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        JsonlWal(path, fsync="always").append("s", [{"x": 1}])
        wal = JsonlWal(path)
        records, damage = wal.records("s")
        assert damage is None
        assert [r.seq for r in records] == [1]
        assert wal.append("s", [{"x": 2}]).seq == 2

    def test_torn_final_line_repaired_on_open(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = JsonlWal(path, fsync="always")
        wal.append("s", [{"x": 1}])
        wal.append("s", [{"x": 2}])
        blob = path.read_bytes()
        path.write_bytes(blob[:-9])  # tear the last record mid-JSON
        reopened = JsonlWal(path)
        records, damage = reopened.records("s")
        assert damage is None  # the torn tail was truncated away
        assert [r.seq for r in records] == [1]
        # The repaired file must be appendable again, reusing the seq.
        assert reopened.append("s", [{"x": 2}]).seq == 2

    def test_mid_file_corruption_reported_not_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = JsonlWal(path, fsync="always")
        wal.append("s", [{"x": 1}])
        good_tail = WalRecord.make("s", 2).to_json_line()
        with open(path, "a") as fh:
            fh.write("garbage line\n")
            fh.write(good_tail + "\n")
        before = path.read_bytes()
        reopened = JsonlWal(path)
        # Complete records past the rot must never be auto-truncated.
        assert path.read_bytes() == before
        records, damage = reopened.records("s")
        assert damage is not None and "unparseable" in damage
        assert [r.seq for r in records] == [1]
        # Writes are refused until an operator repairs the file.
        with pytest.raises(StoreError, match="refusing to write"):
            reopened.append("s", [{"x": 2}])
        with pytest.raises(StoreError, match="refusing to write"):
            reopened.prune("s", 1)

    def test_rollback_appends_abort_marker(self, tmp_path):
        wal = JsonlWal(tmp_path / "log.jsonl")
        rec = wal.append("s", [{"x": 1}])
        wal.rollback("s", rec.seq)
        records, _ = wal.records("s")
        assert [r.kind for r in records] == ["feedback", "abort"]
        assert resolve_aborts(records) == []
        # Sequence numbering keeps counting past the abort marker.
        assert wal.append("s", [{"x": 2}]).seq == 3

    def test_prune_drops_folded_records(self, tmp_path):
        wal = JsonlWal(tmp_path / "log.jsonl")
        for i in range(4):
            wal.append("s", [{"i": i}])
        assert wal.prune("s", up_to_seq=3) == 3
        records, _ = wal.records("s")
        assert [r.seq for r in records if r.kind == "feedback"] == [4]

    def test_prune_leaves_marker_preserving_seq_floor(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = JsonlWal(path, fsync="always")
        for i in range(3):
            wal.append("s", [{"i": i}])
        wal.prune("s", up_to_seq=3)
        # A fresh instance (new process) must not restart numbering: the
        # durable prune marker carries the floor.
        assert JsonlWal(path).append("s", [{"i": 3}]).seq == 4

    def test_repeated_prune_is_idempotent(self, tmp_path):
        wal = JsonlWal(tmp_path / "log.jsonl")
        for i in range(3):
            wal.append("s", [{"i": i}])
        assert wal.prune("s", 3) == 3
        assert wal.prune("s", 3) == 0
        assert wal.last_seq("s") == 3

    def test_prune_without_marker_clears_session(self, tmp_path):
        wal = JsonlWal(tmp_path / "log.jsonl")
        wal.append("a", [{"x": 1}])
        wal.append("b", [{"x": 1}])
        wal.prune("a", wal.last_seq("a"), marker=False)
        assert wal.session_ids() == ["b"]

    def test_other_sessions_survive_prune(self, tmp_path):
        wal = JsonlWal(tmp_path / "log.jsonl")
        wal.append("a", [{"x": 1}])
        wal.append("b", [{"x": 1}])
        wal.prune("a", 1)
        records, _ = wal.records("b")
        assert [r.seq for r in records] == [1]

    def test_always_policy_fsyncs_every_append(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))[1]
        )
        wal = JsonlWal(tmp_path / "log.jsonl", fsync="always")
        baseline = len(calls)
        wal.append("s", [{"x": 1}])
        wal.append("s", [{"x": 2}])
        assert len(calls) >= baseline + 2

    def test_batch_policy_fsyncs_on_interval(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))[1]
        )
        wal = JsonlWal(tmp_path / "log.jsonl", fsync="batch", batch_every=3)
        baseline = len(calls)
        wal.append("s", [{"x": 1}])
        wal.append("s", [{"x": 2}])
        assert len(calls) == baseline
        wal.append("s", [{"x": 3}])
        assert len(calls) == baseline + 1

    def test_file_is_plain_jsonl(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = JsonlWal(path, fsync="always")
        wal.append("s", [{"x": 1}])
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        raw = json.loads(lines[0])
        assert raw["sid"] == "s" and raw["seq"] == 1
