"""Shared fixtures for the durable-store test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store.sqlite import SQLiteStore
from repro.store.wal import WalDirectoryStore


@pytest.fixture(params=["sqlite", "waldir"])
def durable_store(request, tmp_path):
    """Each test runs against both durable backends."""
    if request.param == "sqlite":
        store = SQLiteStore(tmp_path / "sessions.db")
        yield store
        store.close()
    else:
        yield WalDirectoryStore(tmp_path / "waldir")


@pytest.fixture
def reopen():
    """Build a *fresh* store instance over the same on-disk state.

    Simulates a new process attaching after a crash: nothing survives
    from the old instance's memory, only what was durably written.
    """

    def _reopen(store):
        if isinstance(store, SQLiteStore):
            return SQLiteStore(store.path)
        return WalDirectoryStore(store.root)

    return _reopen


@pytest.fixture
def small_data(rng) -> np.ndarray:
    """A tiny dataset that keeps replay-heavy tests fast."""
    a = rng.normal([0.0, 0.0, 0.0], 0.3, (30, 3))
    b = rng.normal([3.0, 3.0, 0.0], 0.3, (20, 3))
    return np.vstack([a, b])
