"""Tests for ``store_from_url`` and the ``repro store`` subcommands."""

import json

import numpy as np
import pytest

from repro.cli import DATASETS, build_parser, cmd_store, main
from repro.core.session import ExplorationSession
from repro.io import session_to_payload
from repro.service.store import (
    DirectoryStore,
    MemoryStore,
    StoreError,
)
from repro.store import store_from_url
from repro.store.sqlite import SQLiteStore
from repro.store.wal import WalDirectoryStore


class TestStoreFromUrl:
    def test_memory(self):
        assert isinstance(store_from_url("memory:"), MemoryStore)
        assert isinstance(store_from_url("memory"), MemoryStore)

    def test_dir(self, tmp_path):
        store = store_from_url(f"dir:{tmp_path / 'ck'}")
        assert isinstance(store, DirectoryStore)
        assert not isinstance(store, WalDirectoryStore)

    def test_wal(self, tmp_path):
        assert isinstance(
            store_from_url(f"wal:{tmp_path / 'ck'}"), WalDirectoryStore
        )

    def test_sqlite(self, tmp_path):
        store = store_from_url(f"sqlite:{tmp_path / 's.db'}", fsync="always")
        assert isinstance(store, SQLiteStore)
        assert store.fsync == "always"
        store.close()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StoreError, match="sqlite:"):
            store_from_url("redis://nope")


class TestParser:
    def test_serve_store_flags(self):
        args = build_parser().parse_args(
            ["serve", "--store", "sqlite:/tmp/s.db", "--fsync", "always"]
        )
        assert args.store == "sqlite:/tmp/s.db"
        assert args.fsync == "always"

    def test_store_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["store", "verify", "sqlite:x.db"])
        assert args.store_command == "verify" and args.policy == "fail"
        args = parser.parse_args(
            ["store", "compact", "wal:dir", "--session", "s1"]
        )
        assert args.session == "s1"
        args = parser.parse_args(["store", "inspect", "dir:ck", "--json"])
        assert args.json


def _seed_served_session(url, dataset="three-d", batches=3, sid="cli-s"):
    """Create a session + feedback the way a durable server would."""
    from repro.feedback import ClusterFeedback
    from repro.service.manager import SessionManager
    from repro.store.compaction import CompactionPolicy

    store = store_from_url(url)
    manager = SessionManager(
        {dataset: DATASETS[dataset]().data},
        store=store,
        compaction=CompactionPolicy(0),
    )
    manager.create(dataset, session_id=sid, seed=0)
    for i in range(batches):
        manager.apply_feedback(
            sid, [ClusterFeedback(rows=(i, i + 1, i + 2), label=f"b{i}")]
        )
    if isinstance(store, SQLiteStore):
        store.close()


class TestCmdStore:
    def test_inspect_reports_tail(self, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 's.db'}"
        _seed_served_session(url)
        assert cmd_store("inspect", url, as_json=True) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["durable"] is True
        assert report["sessions"]["cli-s"]["tail_records"] == 3

    def test_verify_ok_and_exit_codes(self, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 's.db'}"
        _seed_served_session(url)
        assert cmd_store("verify", url) == 0
        out = capsys.readouterr().out
        assert "store OK" in out

    def test_verify_fails_on_damage(self, tmp_path, capsys):
        import sqlite3

        db = tmp_path / "s.db"
        _seed_served_session(f"sqlite:{db}")
        with sqlite3.connect(db) as conn:
            conn.execute("DELETE FROM wal WHERE seq = 2")
        assert cmd_store("verify", f"sqlite:{db}") == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_compact_folds_the_log(self, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 's.db'}"
        _seed_served_session(url)
        assert cmd_store("compact", url) == 0
        out = capsys.readouterr().out
        assert "replayed 3" in out
        assert cmd_store("inspect", url, as_json=True) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sessions"]["cli-s"]["tail_records"] == 0
        assert report["sessions"]["cli-s"]["checkpoint_wal_seq"] == 3

    def test_compact_rejects_checkpoint_only_store(self, tmp_path, capsys):
        url = f"dir:{tmp_path / 'ck'}"
        assert cmd_store("compact", url) == 2
        assert "no feedback log" in capsys.readouterr().err

    def test_main_dispatches_store(self, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 's.db'}"
        _seed_served_session(url)
        assert main(["store", "verify", url]) == 0

    def test_compact_unknown_dataset_fails(self, tmp_path, capsys):
        db = tmp_path / "odd.db"
        store = SQLiteStore(db)
        session = ExplorationSession(np.eye(4), seed=0)
        store.put(
            "odd",
            {
                "dataset": "not-a-registered-dataset",
                "wal_seq": 0,
                "session": session_to_payload(session),
            },
        )
        store.close()
        assert cmd_store("compact", f"sqlite:{db}") == 1
        assert "FAILED" in capsys.readouterr().out
