"""The headline durability proof: kill -9 mid-workload, recover everything.

A worker process serves feedback batches into a SQLite-backed manager
with ``fsync=always`` and records an acknowledgement (fsynced to a side
file) after each accepted batch.  The parent SIGKILLs it mid-workload —
no atexit, no finally blocks, no flushes — then recovers from the
database alone and checks that every acknowledged batch survived and
that the recovered view is bit-for-bit identical to an uninterrupted
oracle session fed the same batches.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.session import ExplorationSession
from repro.feedback import ClusterFeedback
from repro.service.manager import SessionManager
from repro.store.recovery import recover_session, verify_store
from repro.store.sqlite import SQLiteStore

_REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

SEED = 123
DATA_SEED = 42


def workload_data() -> np.ndarray:
    rng = np.random.default_rng(DATA_SEED)
    a = rng.normal([0.0, 0.0, 0.0], 0.3, (40, 3))
    b = rng.normal([3.0, 3.0, 0.0], 0.3, (30, 3))
    return np.vstack([a, b])


def make_item(i: int) -> ClusterFeedback:
    rows = tuple(range(i % 9, i % 9 + 6))
    return ClusterFeedback(rows=rows, label=f"batch-{i}")


_WORKER_SCRIPT = """
import os
import sys

import numpy as np

from repro.feedback import ClusterFeedback
from repro.service.manager import SessionManager
from repro.store.compaction import CompactionPolicy
from repro.store.sqlite import SQLiteStore

db_path, ack_path = sys.argv[1], sys.argv[2]

rng = np.random.default_rng(42)
a = rng.normal([0.0, 0.0, 0.0], 0.3, (40, 3))
b = rng.normal([3.0, 3.0, 0.0], 0.3, (30, 3))
data = np.vstack([a, b])

store = SQLiteStore(db_path, fsync="always")
manager = SessionManager(
    {"wl": data},
    store=store,
    compaction=CompactionPolicy(4),  # fold repeatedly during the run
)
sid = manager.create("wl", session_id="crash", seed=123)

ack = open(ack_path, "a")
for i in range(10_000):
    rows = tuple(range(i % 9, i % 9 + 6))
    manager.apply_feedback(
        sid, [ClusterFeedback(rows=rows, label=f"batch-{i}")]
    )
    # The acknowledgement is itself made durable before the next batch,
    # so after SIGKILL the ack file is a lower bound on what the server
    # accepted — exactly the set the database must still contain.
    ack.write(f"{i}\\n")
    ack.flush()
    os.fsync(ack.fileno())
"""


def _count_acks(ack_path: Path) -> int:
    try:
        return len(ack_path.read_text().splitlines())
    except FileNotFoundError:
        return 0


def test_kill9_recovers_every_acked_batch_bit_for_bit(tmp_path):
    db_path = tmp_path / "crash.db"
    ack_path = tmp_path / "acks.log"
    worker = subprocess.Popen(
        [sys.executable, "-c", _WORKER_SCRIPT, str(db_path), str(ack_path)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env={
            "PYTHONPATH": _REPO_SRC,
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )
    try:
        # Let it work through at least two compaction folds, then murder
        # it mid-stride — no shutdown path of any kind runs.
        deadline = time.monotonic() + 120
        while _count_acks(ack_path) < 10:
            if worker.poll() is not None:
                pytest.fail(f"worker died early: {worker.stderr.read()}")
            if time.monotonic() > deadline:
                pytest.fail("worker never reached 10 acked batches")
            time.sleep(0.02)
        os.kill(worker.pid, signal.SIGKILL)
        worker.wait(timeout=30)
    finally:
        if worker.poll() is None:  # pragma: no cover - cleanup on failure
            worker.kill()
        worker.stderr.close()

    acked = _count_acks(ack_path)
    assert acked >= 10

    # The store must verify clean under the strict policy: fsync=always
    # admits no torn tail at all.
    store = SQLiteStore(db_path)
    report = verify_store(store, policy="fail")
    assert report["ok"], report

    # Every acknowledged batch is covered: folded into the checkpoint or
    # still replayable in the tail.  (One unacked batch may also have
    # committed if the kill landed between append and ack — fine: it was
    # durable, recovery replays it too.)
    recovered, state = recover_session(
        store, "crash", workload_data(), standardize=False, seed=SEED
    )
    total = state.wal_seq
    assert total >= acked
    assert total <= acked + 1
    labels = [f.label for f in recovered.feedback_log]
    assert labels == [f"batch-{i}" for i in range(total)]

    # Bit-for-bit view parity against an oracle that never crashed.
    oracle = ExplorationSession(workload_data(), seed=SEED)
    for i in range(total):
        oracle.apply_many([make_item(i)])
    np.testing.assert_array_equal(
        recovered.current_view().axes, oracle.current_view().axes
    )
    np.testing.assert_array_equal(
        recovered.current_view().scores, oracle.current_view().scores
    )

    # And the service layer resumes it the same way a restarted server
    # would, serving views again.
    manager = SessionManager({"wl": workload_data()}, store=store)
    view, _ = manager.view("crash")
    np.testing.assert_array_equal(view.axes, oracle.current_view().axes)
    assert manager.stats()["durable"] is True
    store.close()
