"""Tests for checkpoint+tail recovery and the corrupt-tail policies."""

import numpy as np
import pytest

from repro.core.session import ExplorationSession
from repro.feedback import feedback_from_dict
from repro.io import session_to_payload
from repro.service.store import MemoryStore, StoreError
from repro.store.recovery import (
    load_session_state,
    recover_session,
    replay_records,
    validate_recovery_policy,
    verify_store,
)
from repro.store.sqlite import SQLiteStore


def make_batch(i: int) -> list[dict]:
    """Deterministic feedback batch #i in wire (``to_dict``) form."""
    rows = [int(r) for r in range(i % 7, i % 7 + 5)]
    return [{"kind": "cluster", "rows": rows, "label": f"batch-{i}"}]


def seed_session(store, small_data, batches=4, seed=7):
    """Checkpoint a fresh session, then log ``batches`` feedback batches."""
    session = ExplorationSession(small_data, seed=seed)
    payload = {
        "dataset": "small",
        "standardize": False,
        "seed": seed,
        "wal_seq": 0,
        "session": session_to_payload(session),
    }
    store.put("s", payload)
    for i in range(batches):
        store.append_feedback("s", make_batch(i))
    return session


class TestPolicyValidation:
    def test_known_policies(self):
        for policy in ("truncate", "fail"):
            assert validate_recovery_policy(policy) == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(StoreError):
            validate_recovery_policy("hope")


class TestLoadSessionState:
    def test_plain_store_recovers_checkpoint_only(self):
        store = MemoryStore()
        store.put("s", {"wal_seq": 0, "session": {}})
        state = load_session_state(store, "s")
        assert state.records == []
        assert state.replayed_batches == 0

    def test_tail_loaded_past_checkpoint(self, durable_store, small_data):
        seed_session(durable_store, small_data, batches=3)
        state = load_session_state(durable_store, "s")
        assert state.replayed_batches == 3
        assert state.wal_seq == 3
        assert state.warnings == []

    def test_rolled_back_batches_never_replay(self, durable_store, small_data):
        seed_session(durable_store, small_data, batches=4)
        durable_store.rollback_feedback("s", 4)
        state = load_session_state(durable_store, "s", policy="truncate")
        assert 4 not in [r.seq for r in state.records]

    def test_gap_with_fail_policy_raises(self, tmp_path, small_data):
        store = SQLiteStore(tmp_path / "s.db")
        seed_session(store, small_data, batches=4)
        # Rip out a middle row directly: a real gap, not a rollback.
        store._execute("DELETE FROM wal WHERE seq = 2")
        with pytest.raises(StoreError):
            load_session_state(store, "s", policy="fail")
        state = load_session_state(store, "s", policy="truncate")
        assert [r.seq for r in state.records] == [1]
        assert state.wal_seq == 1
        assert state.warnings
        store.close()

    def test_checksum_mismatch_detected(self, tmp_path, small_data):
        store = SQLiteStore(tmp_path / "s.db")
        seed_session(store, small_data, batches=3)
        store._execute(
            "UPDATE wal SET items = '[{\"kind\": \"cluster\", \"rows\": [9]}]' "
            "WHERE seq = 3"
        )
        with pytest.raises(StoreError):
            load_session_state(store, "s", policy="fail")
        state = load_session_state(store, "s", policy="truncate")
        assert [r.seq for r in state.records] == [1, 2]
        store.close()


class TestReplayParity:
    def test_recovered_session_matches_oracle(self, durable_store, small_data):
        seed_session(durable_store, small_data, batches=5, seed=11)
        session, state = recover_session(
            durable_store, "s", small_data, standardize=False, seed=11
        )
        oracle = ExplorationSession(small_data, seed=11)
        for i in range(5):
            oracle.apply_many(
                [feedback_from_dict(item) for item in make_batch(i)]
            )
        assert state.replayed_batches == 5
        assert [f.label for f in session.feedback_log] == [
            f.label for f in oracle.feedback_log
        ]
        np.testing.assert_array_equal(
            session.current_view().axes, oracle.current_view().axes
        )
        # knowledge_nats needs a fit; current_view just performed one.
        assert session.model.knowledge_nats() == pytest.approx(
            oracle.model.knowledge_nats(), abs=0.0
        )

    def test_undo_records_replay_through_undo(self, durable_store, small_data):
        oracle = seed_session(durable_store, small_data, batches=2, seed=3)
        for i in range(2):
            oracle.apply_many(
                [feedback_from_dict(item) for item in make_batch(i)]
            )
        durable_store.append_feedback("s", [], kind="undo")
        oracle.undo_last_feedback()
        session, state = recover_session(
            durable_store, "s", small_data, standardize=False, seed=3
        )
        assert state.replayed_batches == 3
        assert [f.label for f in session.feedback_log] == [
            f.label for f in oracle.feedback_log
        ]

    def test_replay_rejects_unknown_kind(self, small_data):
        from repro.store.wal import WalRecord

        session = ExplorationSession(small_data, seed=0)
        with pytest.raises(StoreError):
            replay_records(session, [WalRecord.make("s", 1, kind="mystery")])


class TestVerifyStore:
    def test_clean_store_is_ok(self, durable_store, small_data):
        seed_session(durable_store, small_data, batches=2)
        report = verify_store(durable_store)
        assert report["ok"]
        assert report["sessions"]["s"]["tail_records"] == 2
        assert report["errors"] == {}

    def test_damage_flips_ok_under_fail_policy(self, tmp_path, small_data):
        store = SQLiteStore(tmp_path / "s.db")
        seed_session(store, small_data, batches=3)
        store._execute("DELETE FROM wal WHERE seq = 2")
        report = verify_store(store, policy="fail")
        assert not report["ok"]
        assert "s" in report["errors"]
        store.close()

    def test_truncate_policy_reports_warnings(self, tmp_path, small_data):
        store = SQLiteStore(tmp_path / "s.db")
        seed_session(store, small_data, batches=3)
        store._execute("DELETE FROM wal WHERE seq = 2")
        report = verify_store(store, policy="truncate")
        assert not report["ok"]
        assert report["sessions"]["s"]["warnings"]
        store.close()


class TestApiErrorKind:
    """A damaged store surfaces as ``corrupt_store``, not ``server_error``."""

    def test_corrupt_checkpoint_maps_to_corrupt_store(self, small_data):
        from repro.service.api import ServiceAPI
        from repro.service.manager import SessionManager

        class RottenStore(MemoryStore):
            def get(self, session_id):
                raise StoreError("checkpoint bytes are rotten")

            def __contains__(self, session_id):
                return True

        api = ServiceAPI(
            SessionManager({"small": small_data}, store=RottenStore())
        )
        status, payload, kind = api._dispatch(
            "GET", "/v1/sessions/ghost/view", {}, {}
        )
        assert status == 500
        assert kind == "corrupt_store"
        assert "rotten" in payload["error"]

    def test_bad_session_id_is_still_a_400(self, small_data):
        from repro.service.api import ServiceAPI
        from repro.service.manager import SessionManager

        api = ServiceAPI(SessionManager({"small": small_data}))
        status, payload, kind = api._dispatch(
            "POST", "/v1/sessions", {"dataset": "small", "session_id": "../evil"}, {}
        )
        assert status == 400
        assert kind == "bad_request"
