"""Tests for log compaction: policy, offline folds, manager integration."""

import numpy as np

from repro.core.session import ExplorationSession
from repro.feedback import ClusterFeedback
from repro.io import session_to_payload
from repro.store.compaction import (
    CompactionPolicy,
    compact_offline,
    should_compact,
)
from repro.store.recovery import recover_session


def make_item(i: int) -> ClusterFeedback:
    rows = tuple(range(i % 7, i % 7 + 5))
    return ClusterFeedback(rows=rows, label=f"batch-{i}")


def seed_store(store, data, batches, seed=7):
    session = ExplorationSession(data, seed=seed)
    store.put(
        "s",
        {
            "dataset": "small",
            "standardize": False,
            "seed": seed,
            "wal_seq": 0,
            "session": session_to_payload(session),
        },
    )
    for i in range(batches):
        store.append_feedback("s", [make_item(i).to_dict()])


class TestPolicy:
    def test_defaults_enabled(self):
        policy = CompactionPolicy()
        assert policy.enabled
        assert policy.max_tail_records == 64

    def test_zero_or_negative_disables(self):
        assert not CompactionPolicy(0).enabled
        assert not CompactionPolicy(-5).enabled

    def test_should_compact_at_threshold(self):
        policy = CompactionPolicy(4)
        assert not should_compact(policy, 3)
        assert should_compact(policy, 4)
        assert should_compact(policy, 9)
        assert not should_compact(CompactionPolicy(0), 1000)


class TestCompactOffline:
    def test_fold_replays_and_prunes(self, durable_store, small_data):
        seed_store(durable_store, small_data, batches=6)
        result = compact_offline(
            durable_store, "s", small_data, standardize=False, seed=7
        )
        assert result["replayed"] == 6
        assert result["pruned"] == 6
        assert result["wal_seq"] == 6
        records, damage = durable_store.feedback_tail(
            "s", after_seq=durable_store.get("s")["wal_seq"]
        )
        assert records == [] and damage is None

    def test_fold_is_idempotent(self, durable_store, small_data):
        seed_store(durable_store, small_data, batches=3)
        compact_offline(
            durable_store, "s", small_data, standardize=False, seed=7
        )
        again = compact_offline(
            durable_store, "s", small_data, standardize=False, seed=7
        )
        assert again["replayed"] == 0
        assert again["pruned"] == 0
        assert again["wal_seq"] == 3

    def test_recovery_after_fold_matches_oracle(
        self, durable_store, small_data
    ):
        seed_store(durable_store, small_data, batches=4, seed=13)
        compact_offline(
            durable_store, "s", small_data, standardize=False, seed=13
        )
        # Post-fold appends land above the fold's sequence floor.
        rec = durable_store.append_feedback("s", [make_item(4).to_dict()])
        assert rec.seq == 5
        session, state = recover_session(
            durable_store, "s", small_data, standardize=False, seed=13
        )
        oracle = ExplorationSession(small_data, seed=13)
        for i in range(5):
            oracle.apply_many([make_item(i)])
        assert state.replayed_batches == 1  # only the post-fold tail
        assert [f.label for f in session.feedback_log] == [
            f.label for f in oracle.feedback_log
        ]
        np.testing.assert_array_equal(
            session.current_view().axes, oracle.current_view().axes
        )


class TestManagerAutoCompaction:
    def test_fold_triggers_at_threshold(self, durable_store, small_data):
        from repro.service.manager import SessionManager

        manager = SessionManager(
            {"small": small_data},
            store=durable_store,
            compaction=CompactionPolicy(3),
        )
        sid = manager.create("small", session_id="auto", seed=5)
        for i in range(7):
            manager.apply_feedback(sid, [make_item(i)])
        stats = manager.stats()
        assert stats["compactions"] >= 2
        # The log tail is short again and the checkpoint covers the folds.
        ckpt_seq = durable_store.get(sid)["wal_seq"]
        records, _ = durable_store.feedback_tail(sid, after_seq=ckpt_seq)
        assert len(records) < 3
        assert durable_store.last_seq(sid) == 7

    def test_disabled_policy_never_folds(self, durable_store, small_data):
        from repro.service.manager import SessionManager

        manager = SessionManager(
            {"small": small_data},
            store=durable_store,
            compaction=CompactionPolicy(0),
        )
        sid = manager.create("small", session_id="nofold", seed=5)
        for i in range(6):
            manager.apply_feedback(sid, [make_item(i)])
        assert manager.stats()["compactions"] == 0
        records, _ = durable_store.feedback_tail(sid)
        assert len(records) == 6

    def test_folded_session_recovers_in_fresh_manager(
        self, durable_store, small_data, reopen
    ):
        from repro.service.manager import SessionManager

        manager = SessionManager(
            {"small": small_data},
            store=durable_store,
            compaction=CompactionPolicy(2),
        )
        sid = manager.create("small", session_id="refold", seed=9)
        for i in range(5):
            manager.apply_feedback(sid, [make_item(i)])
        view_before, _ = manager.view(sid)
        fresh_manager = SessionManager(
            {"small": small_data}, store=reopen(durable_store)
        )
        view_after, _ = fresh_manager.view(sid)
        np.testing.assert_array_equal(view_before.axes, view_after.axes)
