"""Durable-store integration at the SessionManager layer.

The contract under test: a batch is acknowledged only after its WAL
append is durable, a failed apply rolls the append back, and a fresh
manager over the same store resumes every acknowledged batch.
"""

import numpy as np
import pytest

from repro import obs
from repro.errors import ConstraintError
from repro.feedback import ClusterFeedback
from repro.service.manager import SessionManager
from repro.service.store import MemoryStore
from repro.store.compaction import CompactionPolicy


def make_item(i: int) -> ClusterFeedback:
    rows = tuple(range(i % 7, i % 7 + 5))
    return ClusterFeedback(rows=rows, label=f"batch-{i}")


@pytest.fixture
def manager(durable_store, small_data):
    return SessionManager(
        {"small": small_data},
        store=durable_store,
        compaction=CompactionPolicy(0),
    )


class TestWalBeforeApply:
    def test_ack_implies_durable(self, manager, durable_store):
        sid = manager.create("small", session_id="d1", seed=1)
        manager.apply_feedback(sid, [make_item(0)])
        records, damage = durable_store.feedback_tail(sid)
        assert damage is None
        assert [r.seq for r in records] == [1]
        assert records[0].items == [make_item(0).to_dict()]

    def test_create_writes_genesis_checkpoint(self, manager, durable_store):
        sid = manager.create("small", session_id="genesis", seed=1)
        payload = durable_store.get(sid)
        assert payload["dataset"] == "small"
        assert payload["wal_seq"] == 0

    def test_failed_apply_rolls_back_the_append(self, manager, durable_store):
        sid = manager.create("small", session_id="rb", seed=1)
        manager.apply_feedback(sid, [make_item(0)])
        with pytest.raises(ConstraintError):
            # Row index far out of range: the WAL append succeeds, the
            # in-memory apply raises, the record must be annulled.
            manager.apply_feedback(
                sid, [ClusterFeedback(rows=(10_000,), label="bad")]
            )
        from repro.store.wal import resolve_aborts

        records, _ = durable_store.feedback_tail(sid)
        live = resolve_aborts(records)
        assert [r.items[0]["label"] for r in live] == ["batch-0"]
        assert manager.stats()["wal_rollbacks"] == 1

    def test_undo_is_logged(self, manager, durable_store):
        sid = manager.create("small", session_id="u1", seed=1)
        manager.apply_feedback(sid, [make_item(0)])
        assert manager.undo(sid) is not None
        records, _ = durable_store.feedback_tail(sid)
        from repro.store.wal import resolve_aborts

        kinds = [r.kind for r in resolve_aborts(records)]
        assert kinds == ["feedback", "undo"]

    def test_benign_undo_rolls_back_its_record(self, manager, durable_store):
        sid = manager.create("small", session_id="u0", seed=1)
        assert manager.undo(sid) is None  # nothing to undo
        from repro.store.wal import resolve_aborts

        records, _ = durable_store.feedback_tail(sid)
        assert resolve_aborts(records) == []

    def test_stats_expose_durability_counters(self, manager):
        sid = manager.create("small", session_id="st", seed=1)
        manager.apply_feedback(sid, [make_item(0)])
        stats = manager.stats()
        assert stats["durable"] is True
        assert stats["wal_appends"] == 1
        assert stats["replayed_batches"] == 0

    def test_plain_store_is_not_durable(self, small_data):
        manager = SessionManager({"small": small_data}, store=MemoryStore())
        assert manager.stats()["durable"] is False


class TestResume:
    def test_fresh_manager_replays_acked_batches(
        self, manager, durable_store, small_data, reopen
    ):
        sid = manager.create("small", session_id="crash", seed=21)
        for i in range(4):
            manager.apply_feedback(sid, [make_item(i)])
        view_before, _ = manager.view(sid)

        fresh = SessionManager({"small": small_data}, store=reopen(durable_store))
        view_after, _ = fresh.view(sid)
        np.testing.assert_array_equal(view_before.axes, view_after.axes)
        assert fresh.stats()["replayed_batches"] == 4

    def test_resume_then_continue_appending(
        self, manager, durable_store, small_data, reopen
    ):
        sid = manager.create("small", session_id="cont", seed=2)
        manager.apply_feedback(sid, [make_item(0)])

        store2 = reopen(durable_store)
        fresh = SessionManager({"small": small_data}, store=store2)
        fresh.apply_feedback(sid, [make_item(1)])
        records, _ = store2.feedback_tail(sid)
        assert [r.seq for r in records] == [1, 2]


class TestObsMetrics:
    @pytest.fixture(autouse=True)
    def _obs(self):
        obs.configure()
        yield
        obs.disable()

    def _value(self, family_name):
        family = obs.active().metrics.get(family_name)
        assert family is not None, f"family {family_name} not registered"
        total = 0.0
        for _values, child in family.children():
            if family.kind == "histogram":
                total += child.snapshot()["count"]
            else:
                total += child.value
        return total

    def test_wal_append_histogram_observes(self, manager):
        sid = manager.create("small", session_id="m1", seed=1)
        manager.apply_feedback(sid, [make_item(0)])
        assert self._value("repro_wal_append_seconds") > 0

    def test_compaction_counters(self, durable_store, small_data):
        manager = SessionManager(
            {"small": small_data},
            store=durable_store,
            compaction=CompactionPolicy(2),
        )
        sid = manager.create("small", session_id="m2", seed=1)
        for i in range(4):
            manager.apply_feedback(sid, [make_item(i)])
        assert self._value("repro_store_compactions_total") >= 1
        assert self._value("repro_store_compacted_records_total") >= 2

    def test_recovery_counters(self, manager, durable_store, small_data, reopen):
        sid = manager.create("small", session_id="m3", seed=1)
        manager.apply_feedback(sid, [make_item(0)])
        fresh = SessionManager({"small": small_data}, store=reopen(durable_store))
        fresh.view(sid)
        assert self._value("repro_store_recoveries_total") == 1
        assert self._value("repro_store_recovered_batches_total") == 1
