"""Concurrency stress: one session hammered from many threads over /v1.

The loadgen benchmark exercises the per-session locking statistically
(each worker owns its session); this suite aims all threads at a *single*
session with mixed feedback + view traffic and asserts the properties the
locking must guarantee:

* no lost updates — every posted feedback item lands in the session's
  feedback log exactly once;
* no deadlock — the hammering completes within a hard timeout even
  though feedback batches and view fits interleave;
* a consistent log — the labels in the final log are exactly the posted
  ones, and the constraint count matches what the feedback implies.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.feedback import ClusterFeedback
from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient
from repro.service.manager import SessionManager
from repro.service.server import start_background

_THREADS = 8
_ROUNDS = 4  # feedback posts per thread
_TIMEOUT_S = 120.0


@pytest.fixture
def stress_data():
    rng = np.random.default_rng(0)
    a = rng.normal(0.0, 0.2, (70, 3))
    b = rng.normal([3.0, 3.0, 0.0], 0.2, (50, 3))
    return np.vstack([a, b])


@pytest.fixture
def live_server(stress_data):
    manager = SessionManager({"stress": stress_data})
    server = start_background(ServiceAPI(manager))
    try:
        yield server, manager
    finally:
        server.stop()


def _hammer(client: ServiceClient, session_id: str, worker: int) -> list[str]:
    """Alternate feedback posts and view requests; returns posted labels."""
    rng = np.random.default_rng(worker)
    labels = []
    for round_ in range(_ROUNDS):
        label = f"w{worker}-r{round_}"
        rows = np.sort(rng.choice(120, size=6, replace=False))
        client.apply_feedback(
            session_id, [ClusterFeedback(rows=rows, label=label)]
        )
        labels.append(label)
        # Interleave reads: view requests trigger fits and share the same
        # per-session lock the writes contend on.
        view = client.view(session_id)
        assert view, "view payload must be non-empty"
    return labels


class TestSingleSessionStress:
    def test_no_lost_updates_no_deadlock(self, live_server):
        server, manager = live_server
        url = f"http://127.0.0.1:{server.server_address[1]}"
        setup = ServiceClient(url)
        session_id = setup.create_session("stress", objective="pca")

        results: list[list[str]] = []
        errors: list[BaseException] = []

        def worker(idx: int) -> None:
            try:
                client = ServiceClient(url)
                results.append(_hammer(client, session_id, idx))
            except BaseException as exc:  # surfaced below, not swallowed
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"stress-{i}")
            for i in range(_THREADS)
        ]
        for t in threads:
            t.start()
        deadline_hit = False
        for t in threads:
            t.join(timeout=_TIMEOUT_S)
            deadline_hit = deadline_hit or t.is_alive()
        assert not deadline_hit, "stress threads did not finish: deadlock?"
        assert not errors, f"worker errors: {errors!r}"

        posted = sorted(label for labels in results for label in labels)
        assert len(posted) == _THREADS * _ROUNDS

        stats = setup.session(session_id)
        logged = sorted(
            item["label"] for item in stats["feedback_log"]
        )
        # Every posted item is in the log exactly once, nothing else is.
        assert logged == posted
        # Each cluster feedback contributes its constraint group; the
        # count must reflect every accepted post (no partial applies).
        assert stats["n_constraints"] > 0
        assert len(stats["feedback"]) == _THREADS * _ROUNDS

    def test_observability_under_contention(self, live_server, tmp_path):
        """With obs on, the same hammering must produce consistent
        telemetry: histogram totals equal the number of requests served,
        and every logged event carries a unique, well-formed trace id."""
        import re

        from repro import obs
        from repro.obs import parse_prometheus
        from repro.obs.events import read_events

        server, manager = live_server
        url = f"http://127.0.0.1:{server.server_address[1]}"
        log_path = tmp_path / "stress-events.jsonl"
        obs.configure(event_log=log_path)
        try:
            setup = ServiceClient(url)
            session_id = setup.create_session("stress", objective="pca")

            errors: list[BaseException] = []

            def worker(idx: int) -> None:
                try:
                    _hammer(ServiceClient(url), session_id, idx)
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=_TIMEOUT_S)
            assert not errors, f"worker errors: {errors!r}"

            # Scrape before tearing obs down; the scrape itself is then the
            # only request not yet counted in what we parsed.
            families = parse_prometheus(setup.metrics_text())
            state = obs.active()
            assert state is not None
            state.events.close()
        finally:
            obs.disable()

        events = [
            e for e in read_events(log_path)
            if e.get("event") in ("request", "error")
        ]
        # create + 8 threads x rounds x (feedback + view) requests; the
        # final metrics scrape happened after the parse, so it may or may
        # not be in the log but was not in the scraped counters.
        expected_min = 1 + _THREADS * _ROUNDS * 2
        assert len(events) >= expected_min

        counted = sum(
            s["value"]
            for s in families["repro_requests_total"]["samples"]
            if "/metrics" not in s["labels"]["route"]
        )
        histogram_total = sum(
            s["value"]
            for s in families["repro_request_duration_seconds"]["samples"]
            if s["name"].endswith("_count")
            and "/metrics" not in s["labels"]["route"]
        )
        non_scrape_events = [
            e for e in events if "/metrics" not in e.get("path", "")
        ]
        assert counted == len(non_scrape_events)
        assert histogram_total == counted

        trace_ids = [e.get("trace_id") for e in events]
        pattern = re.compile(r"^[0-9a-f]{8,64}$")
        assert all(
            isinstance(t, str) and pattern.match(t) for t in trace_ids
        ), "every event must carry a well-formed trace id"
        assert len(set(trace_ids)) == len(trace_ids), (
            "trace ids must be unique per request"
        )

    def test_mixed_feedback_and_stats_reads_direct_manager(self, stress_data):
        """Same contention pattern through the manager API (no HTTP), with
        undo mixed in — exercises the checkout pin/lock path directly."""
        manager = SessionManager({"stress": stress_data})
        sid = manager.create("stress", objective="pca")
        barrier = threading.Barrier(_THREADS)
        applied = []
        lock = threading.Lock()

        def worker(idx: int) -> None:
            barrier.wait(timeout=30)
            rng = np.random.default_rng(100 + idx)
            for round_ in range(_ROUNDS):
                label = f"d{idx}-r{round_}"
                rows = np.sort(rng.choice(120, size=5, replace=False))
                manager.apply_feedback(
                    sid, [ClusterFeedback(rows=rows, label=label)]
                )
                with lock:
                    applied.append(label)
                manager.session_stats(sid)

        with ThreadPoolExecutor(max_workers=_THREADS) as pool:
            futures = [pool.submit(worker, i) for i in range(_THREADS)]
            for future in futures:
                future.result(timeout=_TIMEOUT_S)

        stats = manager.session_stats(sid)
        assert sorted(
            item["label"] for item in stats["feedback_log"]
        ) == sorted(applied)
