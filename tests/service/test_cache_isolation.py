"""Regression tests for the cache isolation contract and the L2 tier.

The bug being pinned down: fetched solves used to hand every session the
*same* ``EquivalenceClasses`` object, so one session's in-place edit (or
even just its ``scatter_plan`` memo) leaked into every other session that
hit the same cache entry.  The fix freezes the partition on store
(read-only array copies) and gives every fetch a fresh instance over
those arrays; these tests fail loudly if either half regresses.
"""

import sqlite3

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.service.cache import (
    L2SolveCache,
    SolveCache,
    classes_view,
    freeze_classes,
)


def _constrained_model(data, labels, which=0):
    model = BackgroundModel(data)
    model.add_cluster_constraint(np.flatnonzero(labels == which))
    return model


@pytest.fixture
def stored(two_cluster_data):
    """A cache holding one solve, plus the key and a model factory."""
    data, labels = two_cluster_data
    cache = SolveCache()
    model = _constrained_model(data, labels)
    key = cache.key_for(model)
    model.fit()
    cache.store(model, key)
    return cache, key, lambda: _constrained_model(data, labels)


class TestFrozenClasses:
    def test_fetched_partition_arrays_are_read_only(self, stored):
        cache, key, make_model = stored
        fetched = make_model()
        assert cache.fetch(fetched, key)
        classes = fetched._classes
        with pytest.raises(ValueError, match="read-only"):
            classes.class_of_row[0] = 99
        with pytest.raises(ValueError, match="read-only"):
            classes.class_counts[0] = 99
        with pytest.raises(ValueError, match="read-only"):
            classes.members[0][0] = 99
        with pytest.raises(ValueError, match="read-only"):
            classes.representative_rows[0] = 99

    def test_each_fetch_gets_its_own_instance(self, stored):
        cache, key, make_model = stored
        first, second = make_model(), make_model()
        assert cache.fetch(first, key)
        assert cache.fetch(second, key)
        assert first._classes is not second._classes
        # The underlying read-only arrays ARE shared — that is the point
        # of freezing them.
        assert first._classes.class_of_row is second._classes.class_of_row

    def test_scatter_plan_memo_is_not_shared_between_fetches(self, stored):
        cache, key, make_model = stored
        first, second = make_model(), make_model()
        assert cache.fetch(first, key)
        assert cache.fetch(second, key)
        plan = first._classes.scatter_plan  # materialise the memo
        assert plan is first._classes.scatter_plan  # memoised per instance
        assert "scatter_plan" not in vars(second._classes)
        assert second._classes.scatter_plan is not plan

    def test_fetched_solve_is_numerically_identical(self, stored):
        cache, key, make_model = stored
        data_model = make_model()
        data_model.fit()
        fetched = make_model()
        assert cache.fetch(fetched, key)
        orig, hit = data_model._params, fetched._params
        np.testing.assert_array_equal(orig.theta1, hit.theta1)
        np.testing.assert_array_equal(orig.sigma, hit.sigma)
        np.testing.assert_array_equal(orig.mean, hit.mean)

    def test_freeze_then_view_round_trip(self, two_cluster_data):
        data, labels = two_cluster_data
        model = _constrained_model(data, labels)
        model.fit()
        classes = model._classes
        frozen = freeze_classes(classes)
        assert not frozen.class_of_row.flags.writeable
        # Freezing copies: the live partition stays writable.
        assert classes.class_of_row.flags.writeable
        view = classes_view(frozen)
        assert view is not frozen
        assert view.class_of_row is frozen.class_of_row
        np.testing.assert_array_equal(
            view.class_of_row, classes.class_of_row
        )


class TestL2Tier:
    def test_cross_cache_round_trip_is_bit_exact(
        self, two_cluster_data, tmp_path
    ):
        data, labels = two_cluster_data
        l2_path = tmp_path / "solve-cache.db"
        writer = SolveCache(l2=L2SolveCache(l2_path))
        model = _constrained_model(data, labels)
        key = writer.key_for(model)
        report = model.fit()
        writer.store(model, key)

        # A different process would open its own handles on the same
        # file; a second SolveCache with an empty L1 models that.
        reader = SolveCache(l2=L2SolveCache(l2_path))
        twin = _constrained_model(data, labels)
        assert reader.fetch(twin, key)
        np.testing.assert_array_equal(
            model._params.theta1, twin._params.theta1
        )
        np.testing.assert_array_equal(
            model._params.sigma, twin._params.sigma
        )
        np.testing.assert_array_equal(model._params.mean, twin._params.mean)
        np.testing.assert_array_equal(
            model._classes.class_of_row, twin._classes.class_of_row
        )
        assert twin.last_report.converged == report.converged
        assert twin.last_report.sweeps == report.sweeps
        assert twin.last_report.elapsed == report.elapsed
        stats = reader.stats()
        assert stats["l2"]["hits"] == 1
        assert stats["hits"] == 1

    def test_l2_hit_is_promoted_into_l1(self, two_cluster_data, tmp_path):
        data, labels = two_cluster_data
        l2 = L2SolveCache(tmp_path / "solve-cache.db")
        writer = SolveCache(l2=l2)
        model = _constrained_model(data, labels)
        key = writer.key_for(model)
        model.fit()
        writer.store(model, key)

        reader = SolveCache(l2=L2SolveCache(tmp_path / "solve-cache.db"))
        assert len(reader) == 0
        assert reader.fetch(_constrained_model(data, labels), key)
        assert len(reader) == 1  # promoted
        # Second fetch is an L1 hit: the L2 counters do not move.
        assert reader.fetch(_constrained_model(data, labels), key)
        assert reader.stats()["l2"]["hits"] == 1

    def test_fetched_l2_partition_is_read_only(
        self, two_cluster_data, tmp_path
    ):
        data, labels = two_cluster_data
        l2_path = tmp_path / "solve-cache.db"
        writer = SolveCache(l2=L2SolveCache(l2_path))
        model = _constrained_model(data, labels)
        key = writer.key_for(model)
        model.fit()
        writer.store(model, key)

        reader = SolveCache(l2=L2SolveCache(l2_path))
        twin = _constrained_model(data, labels)
        assert reader.fetch(twin, key)
        with pytest.raises(ValueError, match="read-only"):
            twin._classes.class_of_row[0] = 99

    def test_corrupt_row_degrades_to_miss_and_heals(
        self, two_cluster_data, tmp_path
    ):
        data, labels = two_cluster_data
        l2 = L2SolveCache(tmp_path / "solve-cache.db")
        cache = SolveCache(l2=l2)
        model = _constrained_model(data, labels)
        key = cache.key_for(model)
        model.fit()
        cache.store(model, key)
        assert key in l2

        conn = sqlite3.connect(tmp_path / "solve-cache.db")
        conn.execute(
            "UPDATE solves SET arrays = ? WHERE key = ?",
            (b"not an npz archive", key),
        )
        conn.commit()
        conn.close()

        assert l2.get(key) is None  # corrupt row is a miss, not an error
        assert key not in l2  # and it was dropped so a store can heal it
        fresh = SolveCache(l2=L2SolveCache(tmp_path / "solve-cache.db"))
        assert not fresh.fetch(_constrained_model(data, labels), key)

    def test_eviction_keeps_the_newest_entries(
        self, two_cluster_data, tmp_path
    ):
        data, labels = two_cluster_data
        l2 = L2SolveCache(tmp_path / "solve-cache.db", max_entries=3)
        cache = SolveCache(l2=l2)
        model = _constrained_model(data, labels)
        model.fit()
        keys = [f"synthetic-key-{i}" for i in range(5)]
        for key in keys:
            cache.store(model, key)
        assert len(l2) == 3
        assert keys[-1] in l2
        assert keys[0] not in l2

    def test_l2_errors_never_break_the_fit_path(
        self, two_cluster_data, tmp_path, monkeypatch
    ):
        data, labels = two_cluster_data
        l2 = L2SolveCache(tmp_path / "solve-cache.db")
        cache = SolveCache(l2=l2)

        def broken_conn():
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(l2, "_conn", broken_conn)
        model = _constrained_model(data, labels)
        report, hit = cache.fit(model)
        assert not hit
        assert model.is_fitted
        # The solve was still cached in L1 despite the dead L2.
        twin = _constrained_model(data, labels)
        _report, hit = cache.fit(twin)
        assert hit
