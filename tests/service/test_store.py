"""Tests for the session checkpoint stores (memory and on-disk)."""

import numpy as np
import pytest

from repro.core.session import ExplorationSession
from repro.io import session_from_payload, session_to_payload
from repro.service.store import (
    DirectoryStore,
    MemoryStore,
    SessionNotFoundError,
    StoreError,
    validate_session_id,
)


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    """Each test runs against both backends."""
    if request.param == "memory":
        return MemoryStore()
    return DirectoryStore(tmp_path / "checkpoints")


class TestSessionIds:
    def test_safe_ids_accepted(self):
        for sid in ("abc", "A-1", "a.b_c-d", "0" * 128):
            assert validate_session_id(sid) == sid

    @pytest.mark.parametrize(
        "bad", ["", "a/b", "../x", ".hidden", "-lead", "a" * 129, "sp ace", None]
    )
    def test_unsafe_ids_rejected(self, bad):
        with pytest.raises(StoreError):
            validate_session_id(bad)


class TestStoreBasics:
    def test_put_get_roundtrip(self, store):
        store.put("s1", {"dataset": "x", "n": 3})
        assert store.get("s1") == {"dataset": "x", "n": 3}

    def test_missing_id_raises(self, store):
        with pytest.raises(SessionNotFoundError):
            store.get("nope")

    def test_contains_and_list(self, store):
        store.put("b", {"v": 1})
        store.put("a", {"v": 2})
        assert "a" in store and "zz" not in store
        assert store.list_ids() == ["a", "b"]

    def test_overwrite(self, store):
        store.put("s", {"v": 1})
        store.put("s", {"v": 2})
        assert store.get("s") == {"v": 2}

    def test_delete_is_idempotent(self, store):
        store.put("s", {"v": 1})
        store.delete("s")
        store.delete("s")
        assert "s" not in store

    def test_payload_isolated_from_caller(self, store):
        payload = {"nested": {"rows": [1, 2]}}
        store.put("s", payload)
        payload["nested"]["rows"].append(99)
        assert store.get("s") == {"nested": {"rows": [1, 2]}}

    def test_non_json_payload_rejected(self, store):
        with pytest.raises(StoreError):
            store.put("s", {"bad": np.float64})


class TestDirectoryStore:
    def test_corrupt_file_raises_store_error(self, tmp_path):
        store = DirectoryStore(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(StoreError):
            store.get("bad")

    def test_survives_reopen(self, tmp_path):
        DirectoryStore(tmp_path).put("s", {"v": 7})
        assert DirectoryStore(tmp_path).get("s") == {"v": 7}


class TestSessionRoundtripThroughStore:
    """Save -> store -> resume keeps the full knowledge state (satellite)."""

    def _explored_session(self, data, labels):
        session = ExplorationSession(data, objective="pca", seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="left")
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 1), label="right")
        return session

    def test_constraints_and_undo_history_survive(
        self, store, two_cluster_data
    ):
        data, labels = two_cluster_data
        session = self._explored_session(data, labels)
        store.put("sess", session_to_payload(session))

        restored = session_from_payload(data, store.get("sess"), seed=0)
        assert restored.model.n_constraints == session.model.n_constraints
        assert restored.feedback_groups == session.feedback_groups
        # The undo stack is live: retracting pops the same action.
        assert restored.undo_last_feedback() == "right"
        assert session.undo_last_feedback() == "right"
        assert restored.model.n_constraints == session.model.n_constraints

    def test_next_view_identical_after_resume(self, store, two_cluster_data):
        data, labels = two_cluster_data
        session = self._explored_session(data, labels)
        expected = session.current_view()
        store.put("sess", session_to_payload(session))

        restored = session_from_payload(data, store.get("sess"), seed=0)
        resumed_view = restored.current_view()
        np.testing.assert_allclose(
            np.abs(resumed_view.scores), np.abs(expected.scores), atol=1e-8
        )
        np.testing.assert_allclose(
            np.abs(resumed_view.axes), np.abs(expected.axes), atol=1e-6
        )


class TestDirectoryStoreDurability:
    """Checkpoint writes are crash-safe: fsync file, replace, fsync dir."""

    def test_put_fsyncs_tmp_file_before_replace(self, tmp_path, monkeypatch):
        import os as _os

        events = []
        real_fsync = _os.fsync
        real_replace = _os.replace
        monkeypatch.setattr(
            _os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            _os, "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        DirectoryStore(tmp_path / "ckpt").put("s", {"v": 1})
        # File contents are durable before the rename publishes them, and
        # the directory entry is durable after.
        assert "replace" in events
        replace_at = events.index("replace")
        assert "fsync" in events[:replace_at]
        assert "fsync" in events[replace_at + 1:]

    def test_no_tmp_file_left_behind(self, tmp_path):
        root = tmp_path / "ckpt"
        store = DirectoryStore(root)
        store.put("s", {"v": 1})
        leftovers = [p.name for p in root.iterdir() if ".tmp" in p.name]
        assert leftovers == []
