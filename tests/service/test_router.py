"""Tests for the sharded front-end router.

Covers the consistent-hash ring (determinism, balance, minimal movement
on removal), sticky session routing with id minting, the router's local
routes (health, stats, workers, metrics, session listing), front-door
admission shedding and drain, and migration + ownership release when a
worker dies — all over :class:`InProcessWorker` fleets, which exercise
the full socket/frame/ops path at thread speed.
"""

import os
import time

import pytest

from repro.resilience.admission import AdmissionController
from repro.service.api import ServiceAPI
from repro.service.manager import SessionManager
from repro.service.router import (
    HashRing,
    InProcessWorker,
    Router,
    WorkerPool,
)
from repro.store import store_from_url


class TestHashRing:
    def test_lookup_is_deterministic_across_instances(self):
        a = HashRing(worker_ids=range(4))
        b = HashRing(worker_ids=range(4))
        keys = [f"session-{i}" for i in range(100)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_every_worker_owns_some_keys(self):
        ring = HashRing(worker_ids=range(3))
        owners = {ring.lookup(f"sid-{i}") for i in range(300)}
        assert owners == {0, 1, 2}

    def test_removal_only_moves_the_dead_workers_keys(self):
        ring = HashRing(worker_ids=range(3))
        keys = [f"sid-{i}" for i in range(300)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(1)
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] != 1:
                assert after[k] == before[k]
            else:
                assert after[k] in {0, 2}

    def test_re_adding_restores_the_original_assignment(self):
        ring = HashRing(worker_ids=range(3))
        keys = [f"sid-{i}" for i in range(100)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        ring.add(2)
        assert {k: ring.lookup(k) for k in keys} == before

    def test_empty_ring_raises_lookup_error(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.lookup("anything")

    def test_duplicate_add_is_idempotent(self):
        ring = HashRing(worker_ids=[0, 1])
        points_before = len(ring._points)
        ring.add(1)
        assert len(ring._points) == points_before
        assert ring.workers() == {0, 1}


@pytest.fixture
def fleet(two_cluster_data, tmp_path):
    """Router over three InProcessWorkers sharing one SQLite store."""
    data, _ = two_cluster_data
    store_url = f"sqlite:{tmp_path / 'store.db'}"
    socket_dir = str(tmp_path / "socks")
    os.makedirs(socket_dir, exist_ok=True)
    managers: dict[int, SessionManager] = {}

    def factory(worker_id):
        manager = SessionManager(
            {"demo": data}, store=store_from_url(store_url)
        )
        api = ServiceAPI(manager)
        managers[worker_id] = manager
        return InProcessWorker(api, manager, worker_id, socket_dir)

    pool = WorkerPool(3, factory)
    router = Router(pool, shared_store=True, dataset_names=["demo"])
    try:
        yield router, pool, managers
    finally:
        router.close()


def _create(router, **body):
    status, payload = router.dispatch(
        "POST", "/v1/sessions", body={"dataset": "demo", **body}
    )
    assert status == 201, payload
    return payload["session_id"]


class TestRouting:
    def test_create_mints_a_session_id(self, fleet):
        router, _pool, _managers = fleet
        sid = _create(router)
        assert isinstance(sid, str) and sid
        # The minted id is sticky: the owner is recorded.
        assert router._owners[sid] == router._ring.lookup(sid)

    def test_client_supplied_session_id_is_respected(self, fleet):
        router, _pool, _managers = fleet
        sid = _create(router, session_id="my-session")
        assert sid == "my-session"

    def test_requests_stick_to_the_ring_owner(self, fleet):
        router, pool, managers = fleet
        sid = _create(router)
        owner = router._ring.lookup(sid)
        for _ in range(3):
            status, _payload = router.dispatch("GET", f"/v1/sessions/{sid}")
            assert status == 200
        # The session lives in exactly the owner's manager.
        holders = [
            wid
            for wid, manager in managers.items()
            if manager.live_session_count() > 0
        ]
        assert holders == [owner]

    def test_full_session_lifecycle_through_the_router(self, fleet):
        router, _pool, _managers = fleet
        sid = _create(router)
        status, _ = router.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={
                "feedback": [
                    {"kind": "cluster", "rows": [0, 1, 2, 3], "label": "a"}
                ]
            },
        )
        assert status == 200
        status, view = router.dispatch("GET", f"/v1/sessions/{sid}/view")
        assert status == 200
        assert view["session_id"] == sid
        status, deleted = router.dispatch("DELETE", f"/v1/sessions/{sid}")
        assert status == 200 and deleted["deleted"] is True

    def test_unknown_route_passes_through_to_worker(self, fleet):
        router, _pool, _managers = fleet
        assert router.dispatch("GET", "/v1/nope")[0] == 404
        assert router.dispatch("PUT", "/sessions")[0] == 404

    def test_worker_error_is_surfaced_as_404_not_500(self, fleet):
        router, _pool, _managers = fleet
        status, payload = router.dispatch("GET", "/v1/sessions/ghost")
        assert status == 404
        assert "ghost" in payload["error"]


class TestLocalRoutes:
    def test_health_reports_fleet_liveness(self, fleet):
        router, _pool, _managers = fleet
        status, payload = router.dispatch("GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers"] == {"alive": 3, "total": 3}

    def test_stats_sums_worker_counters(self, fleet):
        router, _pool, _managers = fleet
        for _ in range(2):
            _create(router)
        status, payload = router.dispatch("GET", "/v1/stats")
        assert status == 200
        assert payload["sharded"] is True
        assert payload["created"] == 2
        assert payload["sessions_in_memory"] == 2
        assert payload["router"]["workers"] == 3
        assert payload["router"]["workers_alive"] == 3
        assert payload["router"]["shared_store"] is True
        # Loadgen and the CLI read the merged cache block at top level.
        assert payload["cache"] is not None
        assert {"hits", "misses", "hit_rate"} <= payload["cache"].keys()
        assert payload["datasets"] == ["demo"]

    def test_workers_route_lists_every_worker(self, fleet):
        router, _pool, _managers = fleet
        sid = _create(router)
        status, payload = router.dispatch("GET", "/v1/workers")
        assert status == 200
        entries = payload["workers"]
        assert [e["worker_id"] for e in entries] == [0, 1, 2]
        assert all(e["alive"] for e in entries)
        owner = router._ring.lookup(sid)
        by_id = {e["worker_id"]: e for e in entries}
        assert by_id[owner]["sessions"] == 1

    def test_metrics_disabled_renders_placeholder(self, fleet):
        router, _pool, _managers = fleet
        status, text = router.dispatch("GET", "/metrics")
        assert status == 200
        assert "observability disabled" in text
        status, payload = router.dispatch(
            "GET", "/v1/metrics", query={"format": "json"}
        )
        assert status == 200
        assert payload == {"enabled": False, "families": {}}

    def test_session_listing_merges_across_workers(self, fleet):
        router, _pool, _managers = fleet
        sids = {_create(router) for _ in range(4)}
        status, payload = router.dispatch("GET", "/v1/sessions")
        assert status == 200
        assert {s["session_id"] for s in payload["sessions"]} == sids


class TestAdmissionAndDrain:
    def test_overload_sheds_non_exempt_requests(
        self, two_cluster_data, tmp_path
    ):
        data, _ = two_cluster_data
        socket_dir = str(tmp_path / "socks")
        os.makedirs(socket_dir, exist_ok=True)

        def factory(worker_id):
            manager = SessionManager({"demo": data})
            return InProcessWorker(
                ServiceAPI(manager), manager, worker_id, socket_dir
            )

        pool = WorkerPool(1, factory)
        router = Router(
            pool, admission=AdmissionController(max_inflight=1)
        )
        try:
            with router.admission.admit():  # occupy the only slot
                status, payload = router.dispatch(
                    "POST", "/v1/sessions", body={"dataset": "demo"}
                )
                assert status == 503
                assert payload["kind"] == "overloaded"
                assert payload["retry_after"] > 0
                # Local routes stay reachable while shedding.
                assert router.dispatch("GET", "/health")[0] == 200
            assert router.dispatch(
                "POST", "/v1/sessions", body={"dataset": "demo"}
            )[0] == 201
        finally:
            router.close()

    def test_drain_checkpoints_and_sheds(self, fleet):
        router, _pool, managers = fleet
        for _ in range(3):
            _create(router)
        report = router.drain(budget_seconds=5.0)
        assert report["drained_in_budget"] is True
        assert report["checkpointed"] == 3
        assert report["abandoned_inflight"] == 0
        assert router.last_drain is report
        status, payload = router.dispatch(
            "POST", "/v1/sessions", body={"dataset": "demo"}
        )
        assert status == 503
        assert payload["kind"] == "draining"

    def test_admin_drain_endpoint_accepts(self, fleet):
        router, _pool, _managers = fleet
        status, payload = router.dispatch("POST", "/admin/drain", body={})
        assert status == 202
        assert payload["draining"] is True


class TestMigrationAndRelease:
    def test_dead_worker_session_migrates_to_a_survivor(self, fleet):
        router, pool, _managers = fleet
        sid = _create(router)
        status, _ = router.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={
                "feedback": [
                    {"kind": "cluster", "rows": [0, 1, 2], "label": "a"}
                ]
            },
        )
        assert status == 200
        owner = router._ring.lookup(sid)
        pool.worker(owner).kill()
        status, view = router.dispatch("GET", f"/v1/sessions/{sid}/view")
        assert status == 200
        assert view["session_id"] == sid
        assert router.reroutes >= 1
        new_owner = router._owners[sid]
        assert new_owner != owner
        # The feedback survived the migration via the shared store.
        status, stats = router.dispatch("GET", f"/v1/sessions/{sid}")
        assert status == 200
        assert len(stats["feedback_log"]) >= 1
        # The slot respawns in the background and rejoins the ring.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if owner in router._ring.workers():
                break
            time.sleep(0.05)
        assert owner in router._ring.workers()
        assert pool.respawns == 1

    def test_ownership_move_releases_the_previous_owner(self, fleet):
        router, pool, managers = fleet
        sid = _create(router)
        owner = router._ring.lookup(sid)
        other = next(
            wid for wid in pool.live_ids() if wid != owner
        )
        # Simulate an interim owner: make `other` resume the session
        # directly (as it would during the ring-owner's outage) …
        reply = pool.worker(other).call(
            {
                "op": "request",
                "method": "GET",
                "path": f"/v1/sessions/{sid}",
                "body": {},
                "query": {},
            }
        )
        assert reply["ok"] and reply["status"] == 200
        assert managers[other].live_session_count() == 1
        with router._owners_lock:
            router._owners[sid] = other
        # … then route through the front door: ownership snaps back to
        # the ring owner, and the interim copy is released first.
        status, _ = router.dispatch("GET", f"/v1/sessions/{sid}")
        assert status == 200
        assert router.reroutes == 1
        assert router.releases == 1
        assert router._owners[sid] == owner
        assert managers[other].live_session_count() == 0
