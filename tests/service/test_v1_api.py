"""Tests for the versioned /v1 service API.

Covers: objective-registry discovery and custom objectives end-to-end
over HTTP, the batch feedback endpoint (mixed kinds, one fit), 405
semantics on /v1 routes, feature-name propagation into view payloads,
and checkpoint/resume of the typed feedback log — all while the legacy
unversioned routes stay available as aliases.
"""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.feedback import (
    ClusterFeedback,
    MarginFeedback,
    ViewSelectionFeedback,
)
from repro.projection import registry
from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import SessionManager
from repro.service.server import start_background
from repro.service.store import MemoryStore


@pytest.fixture
def api(two_cluster_data):
    data, _ = two_cluster_data
    return ServiceAPI(SessionManager({"two": data}, store=MemoryStore()))


@pytest.fixture
def fit_counter(monkeypatch):
    calls = []
    original = BackgroundModel.fit

    def counting_fit(self, *args, **kwargs):
        calls.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(BackgroundModel, "fit", counting_fit)
    return calls


class _NamedBundle:
    """Minimal dataset-bundle shape: .data plus .feature_names."""

    def __init__(self, data, feature_names):
        self.data = data
        self.feature_names = tuple(feature_names)


class _TopVariance:
    """Custom test objective: raw-variance ranking of the whitened axes."""

    name = "top-variance"
    description = "axis-aligned directions ranked by raw variance"

    def find_directions(self, whitened, rng):
        return np.eye(np.asarray(whitened).shape[1])

    def score(self, whitened, directions):
        arr = np.asarray(whitened, dtype=np.float64)
        return (arr @ np.atleast_2d(directions).T).var(axis=0, ddof=1)


@pytest.fixture
def custom_objective():
    obj = registry.register(_TopVariance())
    try:
        yield obj
    finally:
        registry.unregister(obj.name)


class TestVersionedRoutes:
    def test_v1_aliases_match_unversioned(self, api):
        assert api.dispatch("GET", "/v1/health") == api.dispatch("GET", "/health")
        assert (
            api.dispatch("GET", "/v1/datasets") == api.dispatch("GET", "/datasets")
        )

    def test_full_loop_under_v1(self, api, two_cluster_data):
        _, labels = two_cluster_data
        status, created = api.dispatch(
            "POST", "/v1/sessions", body={"dataset": "two"}
        )
        assert status == 201
        sid = created["session_id"]
        status, view = api.dispatch("GET", f"/v1/sessions/{sid}/view")
        assert status == 200
        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        status, stats = api.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={"feedback": [{"kind": "cluster", "rows": rows, "label": "L"}]},
        )
        assert (status, stats["applied"]) == (200, ["L"])
        status, undone = api.dispatch("POST", f"/v1/sessions/{sid}/undo")
        assert (status, undone["undone"]) == (200, "L")
        assert api.dispatch("DELETE", f"/v1/sessions/{sid}")[0] == 200

    def test_objectives_discovery(self, api):
        status, payload = api.dispatch("GET", "/v1/objectives")
        assert status == 200
        names = [row["name"] for row in payload["objectives"]]
        assert {"pca", "ica", "kurtosis", "axis"} <= set(names)
        assert all(row["description"] for row in payload["objectives"])

    def test_legacy_routes_still_work(self, api, two_cluster_data):
        _, labels = two_cluster_data
        sid = api.dispatch("POST", "/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        status, stats = api.dispatch(
            "POST",
            f"/sessions/{sid}/constraints",
            body={"kind": "cluster", "rows": rows, "label": "left"},
        )
        assert status == 200
        assert stats["feedback"] == ["left"]


class TestMethodNotAllowed:
    def test_405_on_v1_with_allow_list(self, api):
        status, payload = api.dispatch("PUT", "/v1/sessions")
        assert status == 405
        assert payload["allow"] == ["GET", "POST"]

        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        status, payload = api.dispatch("GET", f"/v1/sessions/{sid}/feedback")
        assert status == 405
        assert payload["allow"] == ["POST"]

        status, payload = api.dispatch("POST", "/v1/health")
        assert status == 405
        assert payload["allow"] == ["GET"]

    def test_legacy_paths_keep_blanket_404(self, api):
        # Pre-/v1 behaviour, asserted by the original test suite.
        assert api.dispatch("PUT", "/sessions")[0] == 404

    def test_unknown_v1_path_still_404(self, api):
        assert api.dispatch("GET", "/v1/bogus")[0] == 404
        assert api.dispatch("GET", "/v1/sessions/a/b/c")[0] == 404


class TestBatchFeedback:
    def test_mixed_batch_single_fit(self, api, two_cluster_data, fit_counter):
        _, labels = two_cluster_data
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        status, stats = api.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={
                "feedback": [
                    {"kind": "cluster", "rows": rows, "label": "left"},
                    {"kind": "view", "rows": rows, "label": "left-2d"},
                    {"kind": "margins"},
                ]
            },
        )
        assert status == 200
        assert stats["applied"] == ["left", "left-2d", "margins"]
        assert stats["feedback"] == ["left", "left-2d", "margins"]
        # One fit resolved the view axes; nothing else hit the solver.
        assert len(fit_counter) == 1

    def test_all_four_kinds_in_one_batch(self, api, two_cluster_data):
        _, labels = two_cluster_data
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        status, stats = api.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={
                "feedback": [
                    {"kind": "cluster", "rows": rows},
                    {"kind": "view", "rows": rows},
                    {"kind": "margins"},
                    {"kind": "covariance"},
                ]
            },
        )
        assert status == 200
        assert len(stats["applied"]) == 4
        assert len(stats["feedback_log"]) == 4

    def test_malformed_batch_applies_nothing(self, api, two_cluster_data):
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        status, _ = api.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={
                "feedback": [
                    {"kind": "cluster", "rows": [0, 1]},
                    {"kind": "telepathy"},
                ]
            },
        )
        assert status == 400
        assert api.dispatch("GET", f"/v1/sessions/{sid}")[1]["feedback"] == []

    def test_out_of_range_batch_rolls_back(self, api, two_cluster_data):
        data, _ = two_cluster_data
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        status, _ = api.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={
                "feedback": [
                    {"kind": "cluster", "rows": [0, 1]},
                    {"kind": "cluster", "rows": [data.shape[0] + 7]},
                ]
            },
        )
        assert status == 400
        assert api.dispatch("GET", f"/v1/sessions/{sid}")[1]["n_constraints"] == 0

    def test_empty_batch_rejected(self, api, two_cluster_data):
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        assert (
            api.dispatch(
                "POST", f"/v1/sessions/{sid}/feedback", body={"feedback": []}
            )[0]
            == 400
        )
        assert (
            api.dispatch("POST", f"/v1/sessions/{sid}/feedback", body={})[0]
            == 400
        )


class TestCustomObjective:
    def test_unknown_objective_still_400(self, api):
        assert (
            api.dispatch(
                "POST", "/sessions", body={"dataset": "two", "objective": "x"}
            )[0]
            == 400
        )
        assert (
            api.dispatch(
                "POST", "/v1/sessions", body={"dataset": "two", "objective": "x"}
            )[0]
            == 400
        )

    def test_registered_objective_usable_end_to_end(
        self, two_cluster_data, custom_objective
    ):
        """Acceptance walk: register in user code, use through ServiceClient."""
        data, _ = two_cluster_data
        server = start_background(SessionManager({"two": data}))
        try:
            client = ServiceClient(server.base_url)
            listed = client.objectives()
            assert custom_objective.name in [row["name"] for row in listed]

            sid = client.create_session("two", objective=custom_objective.name)
            view = client.view(sid)
            assert view["objective"] == custom_objective.name
            # The custom objective is axis-aligned, so axes are unit vectors.
            assert np.allclose(np.abs(np.asarray(view["axes"])).sum(axis=1), 1.0)

            # Per-request override through the query parameter too.
            again = client.view(sid, objective=custom_objective.name)
            assert again["objective"] == custom_objective.name
        finally:
            server.stop()

    def test_unregistered_objective_rejected_over_http(self, two_cluster_data):
        data, _ = two_cluster_data
        server = start_background(SessionManager({"two": data}))
        try:
            client = ServiceClient(server.base_url)
            with pytest.raises(ServiceClientError) as err:
                client.create_session("two", objective="not-a-thing")
            assert err.value.status == 400
        finally:
            server.stop()


class TestFeatureNames:
    def test_axis_labels_use_real_attribute_names(self, two_cluster_data):
        data, _ = two_cluster_data
        bundle = _NamedBundle(data, ["height", "weight", "age"])
        api = ServiceAPI(SessionManager({"named": bundle}))
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "named"})[1][
            "session_id"
        ]
        status, view = api.dispatch("GET", f"/v1/sessions/{sid}/view")
        assert status == 200
        assert view["feature_names"] == ["height", "weight", "age"]
        assert any(
            name in view["axis_labels"][0]
            for name in ("height", "weight", "age")
        )
        assert "X1" not in view["axis_labels"][0]

    def test_plain_arrays_keep_placeholder_labels(self, api, two_cluster_data):
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        _, view = api.dispatch("GET", f"/v1/sessions/{sid}/view")
        assert "feature_names" not in view
        assert "X" in view["axis_labels"][0]


class TestClientBatch:
    def test_client_posts_typed_and_dict_feedback(self, two_cluster_data):
        data, labels = two_cluster_data
        server = start_background(SessionManager({"two": data}))
        rows = tuple(int(r) for r in np.flatnonzero(labels == 0))
        try:
            client = ServiceClient(server.base_url)
            sid = client.create_session("two")
            stats = client.apply_feedback(
                sid,
                [
                    ClusterFeedback(rows=rows, label="left"),
                    ViewSelectionFeedback(rows=rows, label="left-2d"),
                    MarginFeedback(),
                    {"kind": "covariance"},
                ],
            )
            assert stats["applied"][:2] == ["left", "left-2d"]
            assert stats["n_constraints"] > 0
            assert client.undo(sid) == "1-cluster"
        finally:
            server.stop()


class TestLegacyClientMode:
    def test_api_version_none_uses_constraints_route(self, two_cluster_data):
        """A legacy-mode client must only touch pre-/v1 routes."""
        data, labels = two_cluster_data
        server = start_background(SessionManager({"two": data}))
        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        try:
            client = ServiceClient(server.base_url, api_version=None)
            assert client.prefix == ""
            sid = client.create_session("two")
            stats = client.mark_cluster(sid, rows, label="left")
            assert stats["feedback"] == ["left"]
            stats = client.mark_view_selection(sid, rows, label="left-2d")
            assert stats["feedback"] == ["left", "left-2d"]
            assert client.view(sid)["top_score"] >= 0.0
            assert client.undo(sid) == "left-2d"
        finally:
            server.stop()


class TestFeedbackKindRegistry:
    def test_duplicate_kind_rejected(self):
        from repro.feedback import ClusterFeedback as Builtin
        from repro.feedback import Feedback, register_feedback

        class Impostor(Feedback):
            kind = "cluster"

        with pytest.raises(ValueError):
            register_feedback(Impostor)
        # Re-registering the same class is a harmless no-op.
        assert register_feedback(Builtin) is Builtin


class TestCheckpointResume:
    def test_feedback_log_survives_manager_resume(self, two_cluster_data):
        data, labels = two_cluster_data
        store = MemoryStore()
        manager = SessionManager({"two": data}, store=store)
        api = ServiceAPI(manager)
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        api.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={
                "feedback": [
                    {"kind": "cluster", "rows": rows, "label": "left"},
                    {"kind": "margins"},
                ]
            },
        )
        assert api.dispatch("POST", f"/v1/sessions/{sid}/checkpoint")[0] == 200

        fresh = ServiceAPI(SessionManager({"two": data}, store=store))
        status, stats = fresh.dispatch("GET", f"/v1/sessions/{sid}")
        assert status == 200
        assert [item["kind"] for item in stats["feedback_log"]] == [
            "cluster",
            "margins",
        ]
        assert stats["feedback"] == ["left", "margins"]
        status, undone = fresh.dispatch("POST", f"/v1/sessions/{sid}/undo")
        assert (status, undone["undone"]) == (200, "margins")


class TestDetailView:
    """The ?detail=1 observation payload exploration policies run on."""

    def test_plain_view_has_knowledge_but_no_arrays(self, api):
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        status, view = api.dispatch("GET", f"/v1/sessions/{sid}/view")
        assert status == 200
        assert view["knowledge_nats"] == pytest.approx(0.0)
        assert "row_surprise" not in view
        assert "projected" not in view

    def test_detail_view_carries_the_observation(self, api, two_cluster_data):
        data, labels = two_cluster_data
        sid = api.dispatch("POST", "/v1/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        status, view = api.dispatch(
            "GET", f"/v1/sessions/{sid}/view", query={"detail": "1"}
        )
        assert status == 200
        assert len(view["row_surprise"]) == data.shape[0]
        assert len(view["projected"]) == data.shape[0]
        assert len(view["projected"][0]) == 2
        assert view["knowledge_nats"] == pytest.approx(0.0)

        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        api.dispatch(
            "POST",
            f"/v1/sessions/{sid}/feedback",
            body={"feedback": [{"kind": "cluster", "rows": rows}]},
        )
        status, after = api.dispatch(
            "GET", f"/v1/sessions/{sid}/view", query={"detail": "true"}
        )
        assert status == 200
        assert after["knowledge_nats"] > 0.0

    def test_detail_over_http_client(self, two_cluster_data):
        data, _ = two_cluster_data
        server = start_background(SessionManager({"two": data}))
        try:
            client = ServiceClient(server.base_url)
            sid = client.create_session("two")
            payload = client.view(sid, detail=True)
            assert len(payload["row_surprise"]) == data.shape[0]
            assert payload["knowledge_nats"] == pytest.approx(0.0)
            plain = client.view(sid)
            assert "row_surprise" not in plain
        finally:
            server.stop()
