"""End-to-end tests of the HTTP service (API layer and live server)."""

import numpy as np
import pytest

from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import SessionManager
from repro.service.server import start_background
from repro.service.store import DirectoryStore, MemoryStore


@pytest.fixture
def api(two_cluster_data):
    data, _ = two_cluster_data
    return ServiceAPI(SessionManager({"two": data}, store=MemoryStore()))


class TestDispatch:
    """Route-level behaviour, no sockets involved."""

    def test_health_and_datasets(self, api):
        assert api.dispatch("GET", "/health") == (200, {"status": "ok"})
        assert api.dispatch("GET", "/datasets")[1] == {"datasets": ["two"]}

    def test_create_view_constrain_cycle(self, api, two_cluster_data):
        _, labels = two_cluster_data
        status, created = api.dispatch(
            "POST", "/sessions", body={"dataset": "two"}
        )
        assert status == 201
        sid = created["session_id"]

        status, view = api.dispatch("GET", f"/sessions/{sid}/view")
        assert status == 200
        assert len(view["axes"]) == 2
        assert view["iteration"] == 0

        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        status, stats = api.dispatch(
            "POST",
            f"/sessions/{sid}/constraints",
            body={"kind": "cluster", "rows": rows, "label": "left"},
        )
        assert status == 200
        assert stats["feedback"] == ["left"]

        status, view2 = api.dispatch("GET", f"/sessions/{sid}/view")
        assert view2["top_score"] != view["top_score"]

        status, undone = api.dispatch("POST", f"/sessions/{sid}/undo")
        assert (status, undone["undone"]) == (200, "left")

    def test_unknown_session_404(self, api):
        assert api.dispatch("GET", "/sessions/missing/view")[0] == 404
        assert api.dispatch("DELETE", "/sessions/missing")[0] == 404

    def test_unknown_dataset_404(self, api):
        status, payload = api.dispatch(
            "POST", "/sessions", body={"dataset": "nope"}
        )
        assert status == 404
        assert "unknown dataset" in payload["error"]

    def test_bad_requests_400(self, api):
        sid = api.dispatch("POST", "/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        assert api.dispatch("POST", "/sessions", body={})[0] == 400
        assert (
            api.dispatch(
                "POST", "/sessions", body={"dataset": "two", "objective": "x"}
            )[0]
            == 400
        )
        assert (
            api.dispatch(
                "POST", f"/sessions/{sid}/constraints", body={"rows": []}
            )[0]
            == 400
        )
        assert (
            api.dispatch(
                "POST",
                f"/sessions/{sid}/constraints",
                body={"kind": "bogus", "rows": [1]},
            )[0]
            == 400
        )
        assert (
            api.dispatch(
                "GET", f"/sessions/{sid}/view", query={"objective": "bad"}
            )[0]
            == 400
        )

    def test_non_integer_rows_400_not_dropped_connection(self, api):
        # JSON parses 1e999 as float('inf'); int() then raises
        # OverflowError, which must surface as a 400 JSON error rather
        # than escaping the dispatcher.
        sid = api.dispatch("POST", "/sessions", body={"dataset": "two"})[1][
            "session_id"
        ]
        status, payload = api.dispatch(
            "POST",
            f"/sessions/{sid}/constraints",
            body={"kind": "cluster", "rows": [float("inf")]},
        )
        assert status == 400
        assert "error" in payload

    def test_duplicate_session_409(self, api):
        body = {"dataset": "two", "session_id": "dup"}
        assert api.dispatch("POST", "/sessions", body=body)[0] == 201
        assert api.dispatch("POST", "/sessions", body=body)[0] == 409

    def test_unknown_route_404(self, api):
        assert api.dispatch("GET", "/bogus")[0] == 404
        assert api.dispatch("PUT", "/sessions")[0] == 404
        assert api.dispatch("GET", "/sessions/a/b/c")[0] == 404


class TestLiveServer:
    """The acceptance-criteria walk: full loop over real HTTP, then a
    restart-and-resume against a fresh manager."""

    def test_full_interactive_loop_with_restart(
        self, two_cluster_data, tmp_path
    ):
        data, labels = two_cluster_data
        store_dir = tmp_path / "checkpoints"
        rows = [int(r) for r in np.flatnonzero(labels == 0)]

        manager = SessionManager(
            {"two": data}, store=DirectoryStore(store_dir)
        )
        server = start_background(ServiceAPI(manager))
        try:
            client = ServiceClient(server.base_url)
            assert client.health() == {"status": "ok"}

            sid = client.create_session("two")
            first = client.view(sid)
            assert len(first["axes"]) == 2

            client.mark_cluster(sid, rows, label="left")
            updated = client.view(sid)
            assert updated["top_score"] != first["top_score"]
            assert updated["iteration"] == 1

            client.checkpoint(sid)
            expected_scores = np.abs(np.asarray(updated["scores"]))
        finally:
            server.stop()

        # "Server restart": a brand-new manager over the same store dir.
        fresh = SessionManager({"two": data}, store=DirectoryStore(store_dir))
        server2 = start_background(ServiceAPI(fresh))
        try:
            client2 = ServiceClient(server2.base_url)
            listed = client2.list_sessions()
            assert [s["session_id"] for s in listed] == [sid]
            assert listed[0]["in_memory"] is False

            resumed = client2.view(sid)
            np.testing.assert_allclose(
                np.abs(np.asarray(resumed["scores"])),
                expected_scores,
                atol=1e-8,
            )
            # Knowledge state survived: the feedback is still undoable.
            assert client2.session(sid)["feedback"] == ["left"]
            assert client2.undo(sid) == "left"

            client2.delete_session(sid)
            with pytest.raises(ServiceClientError) as err:
                client2.session(sid)
            assert err.value.status == 404
        finally:
            server2.stop()

    def test_concurrent_clients(self, two_cluster_data):
        import threading

        data, labels = two_cluster_data
        manager = SessionManager({"two": data})
        server = start_background(ServiceAPI(manager))
        rows = [int(r) for r in np.flatnonzero(labels == 0)]
        errors = []

        def drive():
            try:
                client = ServiceClient(server.base_url)
                sid = client.create_session("two")
                client.view(sid)
                client.mark_cluster(sid, rows)
                client.view(sid)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            threads = [threading.Thread(target=drive) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert manager.stats()["created"] == 4
            # A follow-up client replaying the same feedback must reuse the
            # solves the concurrent clients populated the cache with.
            client = ServiceClient(server.base_url)
            sid = client.create_session("two")
            client.mark_cluster(sid, rows)
            assert client.view(sid)["cache_hit"] is True
        finally:
            server.stop()

    def test_malformed_body_rejected(self, two_cluster_data):
        import json
        import urllib.error
        import urllib.request

        data, _ = two_cluster_data
        server = start_background(SessionManager({"two": data}))
        try:
            request = urllib.request.Request(
                server.base_url + "/sessions",
                data=b"{not json",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400
            payload = json.loads(err.value.read())
            assert "not JSON" in payload["error"]
        finally:
            server.stop()
