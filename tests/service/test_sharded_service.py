"""End-to-end tests of the sharded service over real worker processes.

These spawn genuine ``ProcessWorker`` children (fresh interpreters via
``spawn``) over one shared SQLite session store and one shared L2 solve
cache, and prove the two cross-process guarantees the sharded service
makes:

* **cache-tier parity** — a solve stored by worker A is fetched
  bit-identically by worker B, and again by a freshly restarted fleet;
* **crash migration** — after ``SIGKILL`` of a session's owner, the
  front-end reroutes the session to a survivor whose recovered view
  matches a never-crashed single-process oracle exactly.

Process spawning is slow, so the fleets here are small and shared
within each test; everything else about the wire path is covered at
thread speed in ``test_router.py``.
"""

import json
import os
import time

from repro.cli import DATASETS
from repro.service.api import ServiceAPI
from repro.service.manager import SessionManager
from repro.service.router import (
    HashRing,
    ProcessWorker,
    Router,
    WorkerPool,
)
from repro.service.worker import WorkerConfig
from repro.store import store_from_url

DATASET = "three-d"

#: Identical feedback applied wherever parity is asserted.
FEEDBACK = [
    {"kind": "cluster", "rows": [0, 1, 2, 3, 4, 5], "label": "a"},
    {"kind": "cluster", "rows": [30, 31, 32, 33], "label": "b"},
]


def _sid_for(worker_id: int, n_workers: int, prefix: str) -> str:
    """A session id that the ring assigns to ``worker_id``."""
    ring = HashRing(worker_ids=range(n_workers))
    for i in range(10_000):
        sid = f"{prefix}-{i}"
        if ring.lookup(sid) == worker_id:
            return sid
    raise AssertionError("no sid found — the ring must be broken")


def _spawn_fleet(base_dir, size=2, respawn=True):
    """Router over ``size`` ProcessWorkers sharing a store and an L2."""
    socket_dir = os.path.join(str(base_dir), "socks")
    os.makedirs(socket_dir, exist_ok=True)
    store_url = f"sqlite:{os.path.join(str(base_dir), 'store.db')}"
    l2_path = os.path.join(str(base_dir), "solve-cache.db")

    def factory(worker_id):
        return ProcessWorker(
            WorkerConfig(
                worker_id=worker_id,
                socket_path=os.path.join(
                    socket_dir, f"worker-{worker_id}.sock"
                ),
                store_url=store_url,
                l2_cache_path=l2_path,
            )
        )

    pool = WorkerPool(size, factory, respawn=respawn)
    return Router(pool, shared_store=True)


def _drive(router, sid, feedback=FEEDBACK):
    """Create ``sid``, apply the canonical feedback, return its view."""
    status, payload = router.dispatch(
        "POST", "/v1/sessions", body={"dataset": DATASET, "session_id": sid}
    )
    assert status == 201, payload
    status, payload = router.dispatch(
        "POST", f"/v1/sessions/{sid}/feedback", body={"feedback": feedback}
    )
    assert status == 200, payload
    status, view = router.dispatch("GET", f"/v1/sessions/{sid}/view")
    assert status == 200, view
    return view


def _worker_cache_stats(router):
    """Per-worker cache stats keyed by worker id, via ``/v1/stats``."""
    status, payload = router.dispatch("GET", "/v1/stats")
    assert status == 200
    return {
        w["worker_id"]: w.get("cache")
        for w in payload["workers"]
        if w.get("alive")
    }


class TestCrossProcessCacheParity:
    def test_solve_by_worker_a_is_hit_on_worker_b_and_after_restart(
        self, tmp_path
    ):
        sid_a = _sid_for(0, 2, "parity-a")
        sid_b = _sid_for(1, 2, "parity-b")
        router = _spawn_fleet(tmp_path / "fleet1")
        try:
            view_a = _drive(router, sid_a)
            view_b = _drive(router, sid_b)
            # Same dataset, seed, and feedback on two different worker
            # processes: worker B must answer from the shared L2 tier,
            # bit-identically to worker A's solve.
            assert view_a["axes"] == view_b["axes"]
            caches = _worker_cache_stats(router)
            assert caches[0]["l2"]["stores"] >= 1
            assert caches[1]["l2"]["hits"] >= 1
        finally:
            router.close()

        # A brand-new fleet on the same L2 file (service restart): the
        # solve survives and is fetched bit-identically again.
        router = _spawn_fleet(tmp_path / "fleet1")
        try:
            sid_c = _sid_for(0, 2, "parity-c")
            view_c = _drive(router, sid_c)
            assert view_c["axes"] == view_a["axes"]
            caches = _worker_cache_stats(router)
            assert caches[0]["l2"]["hits"] >= 1
            assert caches[0]["l2"]["stores"] == 0  # nothing re-solved
        finally:
            router.close()


class TestCrashMigration:
    def test_kill9_owner_migrates_session_and_matches_oracle(self, tmp_path):
        sid = _sid_for(0, 2, "migrate")
        router = _spawn_fleet(tmp_path / "fleet")
        try:
            pre_crash_view = _drive(router, sid)
            owner = router._ring.lookup(sid)
            assert owner == 0

            victim = router.pool.worker(owner)
            victim.kill()  # SIGKILL: no checkpoint, no goodbye
            assert not victim.alive()

            status, view = router.dispatch("GET", f"/v1/sessions/{sid}/view")
            assert status == 200, view
            assert router.reroutes >= 1
            assert router._owners[sid] != owner

            # The recovered view is exactly the pre-crash view …
            assert view["axes"] == pre_crash_view["axes"]

            # … and exactly what a process that never crashed computes.
            bundle = DATASETS[DATASET]()
            oracle_api = ServiceAPI(
                SessionManager(
                    {DATASET: bundle},
                    store=store_from_url(
                        f"sqlite:{tmp_path / 'oracle.db'}"
                    ),
                )
            )
            status, _ = oracle_api.dispatch(
                "POST",
                "/v1/sessions",
                body={"dataset": DATASET, "session_id": sid},
            )
            assert status == 201
            status, _ = oracle_api.dispatch(
                "POST",
                f"/v1/sessions/{sid}/feedback",
                body={"feedback": FEEDBACK},
            )
            assert status == 200
            status, oracle_view = oracle_api.dispatch(
                "GET", f"/v1/sessions/{sid}/view"
            )
            assert status == 200
            # The sharded view crossed a JSON RPC hop; normalise the
            # oracle the same way (exact for finite floats).
            oracle_view = json.loads(json.dumps(oracle_view))
            assert view["axes"] == oracle_view["axes"]
            assert view["scores"] == oracle_view["scores"]
            assert view["all_scores"] == oracle_view["all_scores"]

            # The feedback log migrated intact.
            status, stats = router.dispatch("GET", f"/v1/sessions/{sid}")
            assert status == 200
            assert len(stats["feedback_log"]) == len(FEEDBACK)
        finally:
            router.close()

    def test_killed_worker_slot_respawns(self, tmp_path):
        sid = _sid_for(0, 2, "respawn")
        router = _spawn_fleet(tmp_path / "fleet")
        try:
            _drive(router, sid, feedback=FEEDBACK[:1])
            router.pool.worker(0).kill()
            status, _ = router.dispatch("GET", f"/v1/sessions/{sid}")
            assert status == 200
            # The replacement joins the pool (on a background thread)
            # and answers health checks.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if router.pool.respawns >= 1 and router.pool.worker(0).alive():
                    break
                time.sleep(0.1)
            assert router.pool.respawns == 1
            assert router.pool.worker(0).wait_ready(timeout=30.0)
            status, payload = router.dispatch("GET", "/health")
            assert status == 200
            assert payload["workers"]["alive"] == 2
        finally:
            router.close()
