"""Client resilience: non-JSON bodies, dying servers, connection retries."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service.client import ServiceClient, ServiceClientError


class _MisbehavingHandler(BaseHTTPRequestHandler):
    """Answers per-path with the failure modes a dying server produces."""

    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 — http.server naming
        if self.path.endswith("/html-error"):
            body = b"<html>504 Gateway Timeout</html>"
            self.send_response(504)
            self.send_header("Content-Type", "text/html")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.endswith("/garbage"):
            body = b"this is not json"
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.endswith("/truncated"):
            # Promise more bytes than are sent, then drop the connection.
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", "1000")
            self.end_headers()
            self.wfile.write(b'{"partial":')
            self.wfile.flush()
            self.connection.close()
        else:
            body = json.dumps({"status": "ok"}).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002
        pass


@pytest.fixture
def misbehaving_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _MisbehavingHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


class TestNonJsonBodies:
    def test_html_error_body_becomes_client_error(self, misbehaving_server):
        client = ServiceClient(misbehaving_server)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/html-error")
        assert excinfo.value.status == 504

    def test_non_json_success_body_becomes_client_error(
        self, misbehaving_server
    ):
        client = ServiceClient(misbehaving_server)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/garbage")
        assert excinfo.value.status == 200
        assert "invalid JSON" in str(excinfo.value)

    def test_truncated_body_becomes_client_error(self, misbehaving_server):
        client = ServiceClient(misbehaving_server)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/truncated")
        # Either surfaced as a mid-request connection failure (status 0)
        # or as invalid JSON, never as a raw json/http exception.
        assert excinfo.value.status in (0, 200)

    def test_ok_path_still_works(self, misbehaving_server):
        client = ServiceClient(misbehaving_server)
        assert client._request("GET", "/ok") == {"status": "ok"}


class TestConnectionRetry:
    def test_refused_connection_is_retried(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=3, retry_delay=0.0
        )
        calls = []

        def flaky(method, path, body=None, *, decode_json=True):
            calls.append(1)
            if len(calls) < 3:
                raise ServiceClientError(
                    0, {"error": "refused"}, connection_refused=True
                )
            return {"status": "ok"}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client._request("GET", "/health") == {"status": "ok"}
        assert len(calls) == 3

    def test_retries_are_bounded(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=2, retry_delay=0.0
        )
        calls = []

        def always_refused(method, path, body=None, *, decode_json=True):
            calls.append(1)
            raise ServiceClientError(
                0, {"error": "refused"}, connection_refused=True
            )

        monkeypatch.setattr(client, "_request_once", always_refused)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/health")
        assert len(calls) == 3  # initial + 2 retries

    def test_answered_errors_are_never_retried(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=5, retry_delay=0.0
        )
        calls = []

        def not_found(method, path, body=None, *, decode_json=True):
            calls.append(1)
            raise ServiceClientError(404, {"error": "no route"})

        monkeypatch.setattr(client, "_request_once", not_found)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/missing")
        assert len(calls) == 1

    def test_real_refused_connection_sets_flag(self):
        # Port 1 is never listening; no retries so the test is instant.
        client = ServiceClient("http://127.0.0.1:1", connect_retries=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert excinfo.value.connection_refused

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient("http://x", connect_retries=-1)
