"""Client resilience: non-JSON bodies, dying servers, connection retries."""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.resilience import BreakerOpen, CircuitBreaker
from repro.service.client import ServiceClient, ServiceClientError


class _MisbehavingHandler(BaseHTTPRequestHandler):
    """Answers per-path with the failure modes a dying server produces."""

    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 — http.server naming
        if self.path.endswith("/stall-mid-body"):
            # Headers and half the body arrive, then the socket goes
            # quiet for longer than any sane client timeout.
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", "100")
            self.end_headers()
            self.wfile.write(b'{"partial": ')
            self.wfile.flush()
            time.sleep(5.0)
        elif self.path.endswith("/reset-after-headers"):
            # Headers only, then an abrupt close: the client has a 200
            # status line but no body will ever come.
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", "50")
            self.end_headers()
            self.wfile.flush()
            self.connection.close()
        elif self.path.endswith("/truncated-chunked"):
            # Chunked transfer that dies mid-chunk: the promised chunk
            # size never materialises and no terminating 0-chunk is sent.
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            self.wfile.write(b"40\r\n")  # promises 64 bytes
            self.wfile.write(b'{"partial": true')
            self.wfile.flush()
            self.connection.close()
        elif self.path.endswith("/html-error"):
            body = b"<html>504 Gateway Timeout</html>"
            self.send_response(504)
            self.send_header("Content-Type", "text/html")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.endswith("/garbage"):
            body = b"this is not json"
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.endswith("/truncated"):
            # Promise more bytes than are sent, then drop the connection.
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", "1000")
            self.end_headers()
            self.wfile.write(b'{"partial":')
            self.wfile.flush()
            self.connection.close()
        else:
            body = json.dumps({"status": "ok"}).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    # POSTs hit the same failure modes (for retry-safety tests).
    do_POST = do_GET  # noqa: N815 — http.server naming

    def log_message(self, format, *args):  # noqa: A002
        pass


@pytest.fixture
def misbehaving_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _MisbehavingHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


class TestNonJsonBodies:
    def test_html_error_body_becomes_client_error(self, misbehaving_server):
        client = ServiceClient(misbehaving_server)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/html-error")
        assert excinfo.value.status == 504

    def test_non_json_success_body_becomes_client_error(
        self, misbehaving_server
    ):
        client = ServiceClient(misbehaving_server)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/garbage")
        assert excinfo.value.status == 200
        assert "invalid JSON" in str(excinfo.value)

    def test_truncated_body_becomes_client_error(self, misbehaving_server):
        client = ServiceClient(misbehaving_server)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/truncated")
        # Either surfaced as a mid-request connection failure (status 0)
        # or as invalid JSON, never as a raw json/http exception.
        assert excinfo.value.status in (0, 200)

    def test_ok_path_still_works(self, misbehaving_server):
        client = ServiceClient(misbehaving_server)
        assert client._request("GET", "/ok") == {"status": "ok"}


class TestTransportEdgeCases:
    """The three ways a socket dies mid-response, all surfaced uniformly."""

    def _client(self, base_url, **kwargs):
        kwargs.setdefault("timeout", 0.5)
        kwargs.setdefault("retry_delay", 0.0)
        kwargs.setdefault("breaker", False)
        return ServiceClient(base_url, **kwargs)

    def test_socket_timeout_mid_body(self, misbehaving_server):
        client = self._client(misbehaving_server, max_retries=0)
        start = time.monotonic()
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/stall-mid-body")
        # Bounded by the client timeout, not the server's 5 s stall.
        assert time.monotonic() - start < 4.0
        assert excinfo.value.status == 0
        assert not excinfo.value.connection_refused

    def test_connection_reset_after_headers(self, misbehaving_server):
        client = self._client(misbehaving_server, max_retries=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/reset-after-headers")
        assert excinfo.value.status in (0, 200)

    def test_truncated_chunked_response(self, misbehaving_server):
        client = self._client(misbehaving_server, max_retries=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/truncated-chunked")
        assert excinfo.value.status in (0, 200)

    def test_mid_body_failures_are_retried_for_idempotent_reads(
        self, misbehaving_server
    ):
        # GET is safe to resend: the ambiguous mid-response failure is
        # retried up to max_retries before surfacing.
        client = self._client(misbehaving_server, max_retries=2)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/reset-after-headers")
        assert client.last_attempts == 3
        assert client.counters["retries"] == 2

    def test_mid_body_failures_are_not_retried_for_bare_posts(
        self, misbehaving_server
    ):
        # A POST without an idempotency key might have been applied:
        # resending could double-apply, so the client must not.
        client = self._client(misbehaving_server, max_retries=2)
        with pytest.raises(ServiceClientError):
            client._request("POST", "/reset-after-headers", {})
        assert client.last_attempts == 1
        assert client.counters["retries"] == 0


class TestConnectionRetry:
    def test_refused_connection_is_retried(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=3, retry_delay=0.0
        )
        calls = []

        def flaky(method, path, body=None, *, decode_json=True):
            calls.append(1)
            if len(calls) < 3:
                raise ServiceClientError(
                    0, {"error": "refused"}, connection_refused=True
                )
            return {"status": "ok"}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client._request("GET", "/health") == {"status": "ok"}
        assert len(calls) == 3

    def test_retries_are_bounded(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=2, retry_delay=0.0
        )
        calls = []

        def always_refused(method, path, body=None, *, decode_json=True):
            calls.append(1)
            raise ServiceClientError(
                0, {"error": "refused"}, connection_refused=True
            )

        monkeypatch.setattr(client, "_request_once", always_refused)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/health")
        assert len(calls) == 3  # initial + 2 retries

    def test_answered_errors_are_never_retried(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=5, retry_delay=0.0
        )
        calls = []

        def not_found(method, path, body=None, *, decode_json=True):
            calls.append(1)
            raise ServiceClientError(404, {"error": "no route"})

        monkeypatch.setattr(client, "_request_once", not_found)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/missing")
        assert len(calls) == 1

    def test_real_refused_connection_sets_flag(self):
        # Port 1 is never listening; no retries so the test is instant.
        client = ServiceClient("http://127.0.0.1:1", connect_retries=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert excinfo.value.connection_refused

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient("http://x", connect_retries=-1)

    def test_503_with_retry_after_is_retried(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", max_retries=2, retry_delay=0.0,
            breaker=False,
        )
        calls = []

        def overloaded_then_ok(method, path, body=None, *, decode_json=True):
            calls.append(1)
            if len(calls) < 3:
                raise ServiceClientError(
                    503,
                    {"error": "shed", "kind": "overloaded",
                     "retry_after": 0.0},
                )
            return {"status": "ok"}

        monkeypatch.setattr(client, "_request_once", overloaded_then_ok)
        assert client._request("POST", "/sessions", {}) == {"status": "ok"}
        assert len(calls) == 3
        assert client.counters["shed"] == 2
        assert client.counters["retries"] == 2
        assert client.last_attempts == 3

    def test_last_attempts_is_one_on_clean_success(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:1", breaker=False)
        monkeypatch.setattr(
            client,
            "_request_once",
            lambda method, path, body=None, *, decode_json=True: {"ok": 1},
        )
        client._request("GET", "/health")
        assert client.last_attempts == 1
        assert client.counters["retries"] == 0


class TestClientCircuitBreaker:
    def _failing_client(self, breaker, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=0, max_retries=0,
            retry_delay=0.0, breaker=breaker,
        )

        def server_error(method, path, body=None, *, decode_json=True):
            raise ServiceClientError(500, {"error": "boom"})

        monkeypatch.setattr(client, "_request_once", server_error)
        return client

    def test_breaker_opens_after_consecutive_failures(self, monkeypatch):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            "http://127.0.0.1:1", failure_threshold=3, cooldown=10.0,
            clock=lambda: clock["now"],
        )
        client = self._failing_client(breaker, monkeypatch)
        for _ in range(3):
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("GET", "/health")
            assert not excinfo.value.breaker_open
        # The breaker is now open: requests fail fast without touching
        # the network, with a retry_after pointing at the cooldown.
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/health")
        assert excinfo.value.breaker_open
        assert excinfo.value.retry_after is not None
        assert client.counters["breaker_open"] == 1
        assert breaker.state == "open"

    def test_half_open_probe_closes_breaker_on_recovery(self, monkeypatch):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            "http://127.0.0.1:1", failure_threshold=1, cooldown=10.0,
            clock=lambda: clock["now"],
        )
        client = self._failing_client(breaker, monkeypatch)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/health")
        assert breaker.state == "open"

        # Cooldown elapses; the server is healthy again.
        clock["now"] += 10.0
        monkeypatch.setattr(
            client,
            "_request_once",
            lambda method, path, body=None, *, decode_json=True: {"ok": 1},
        )
        assert client._request("GET", "/health") == {"ok": 1}
        assert breaker.state == "closed"

    def test_answered_4xx_does_not_trip_the_breaker(self, monkeypatch):
        breaker = CircuitBreaker("http://127.0.0.1:1", failure_threshold=2)
        client = ServiceClient(
            "http://127.0.0.1:1", max_retries=0, breaker=breaker
        )

        def not_found(method, path, body=None, *, decode_json=True):
            raise ServiceClientError(404, {"error": "no route"})

        monkeypatch.setattr(client, "_request_once", not_found)
        for _ in range(5):
            with pytest.raises(ServiceClientError):
                client._request("GET", "/missing")
        # The server answered every time: that is health, not failure.
        assert breaker.state == "closed"

    def test_breaker_disabled_with_false(self, monkeypatch):
        client = self._failing_client(False, monkeypatch)
        assert client.breaker is None
        for _ in range(10):
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("GET", "/health")
            assert not excinfo.value.breaker_open


class TestServerStopHang:
    def test_stop_raises_when_serve_thread_refuses_to_die(self):
        import numpy as np

        from repro.service.manager import SessionManager
        from repro.service.server import start_background

        server = start_background(
            SessionManager({"wl": np.zeros((10, 3))})
        )
        release = threading.Event()
        stuck = threading.Thread(
            target=release.wait, name="stuck-handler", daemon=True
        )
        stuck.start()
        # Simulate a hung serve thread: stop() must say so loudly
        # instead of silently pretending the server went away.
        real_thread, server._thread = server._thread, stuck
        try:
            with pytest.raises(RuntimeError, match="still alive"):
                server.stop(join_timeout=0.1)
            assert server._thread is stuck  # kept so stop() can retry
        finally:
            release.set()
        # Once the thread settles, a retried stop() succeeds.
        server.stop(join_timeout=5.0)
        assert server._thread is None
        real_thread.join(timeout=5.0)
