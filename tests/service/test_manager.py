"""Tests for the multi-tenant session manager."""

import threading

import numpy as np
import pytest

from repro.service.cache import SolveCache
from repro.service.manager import (
    SessionExistsError,
    SessionManager,
    UnknownDatasetError,
)
from repro.service.store import MemoryStore, SessionNotFoundError, StoreError


class FakeClock:
    """Deterministic, manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def manager(two_cluster_data):
    data, _ = two_cluster_data
    return SessionManager({"two": data}, store=MemoryStore())


class TestLifecycle:
    def test_create_and_view(self, manager):
        sid = manager.create("two")
        view, meta = manager.view(sid)
        assert view.axes.shape == (2, 3)
        assert meta["iteration"] == 0
        assert not meta["cache_hit"]

    def test_unknown_dataset(self, manager):
        with pytest.raises(UnknownDatasetError):
            manager.create("nope")

    def test_custom_and_duplicate_ids(self, manager):
        assert manager.create("two", session_id="mine") == "mine"
        with pytest.raises(SessionExistsError):
            manager.create("two", session_id="mine")

    def test_delete(self, manager):
        sid = manager.create("two")
        assert manager.delete(sid)
        assert not manager.has(sid)
        assert not manager.delete(sid)
        with pytest.raises(SessionNotFoundError):
            manager.view(sid)

    def test_dataset_forms(self, two_cluster_data):
        data, _ = two_cluster_data

        class Bundle:
            pass

        bundle = Bundle()
        bundle.data = data
        manager = SessionManager(
            {
                "array": data,
                "bundle": bundle,
                "callable": lambda: data,
            }
        )
        for name in ("array", "bundle", "callable"):
            view, _ = manager.view(manager.create(name))
            assert view.axes.shape == (2, 3)

    def test_feedback_and_undo(self, manager, two_cluster_data):
        _, labels = two_cluster_data
        sid = manager.create("two")
        manager.view(sid)
        stats = manager.mark_cluster(
            sid, np.flatnonzero(labels == 0), label="left"
        )
        assert stats["feedback"] == ["left"]
        assert stats["n_constraints"] > 0
        assert manager.undo(sid) == "left"
        assert manager.session_stats(sid)["n_constraints"] == 0
        assert manager.undo(sid) is None

    def test_view_selection_feedback(self, manager):
        sid = manager.create("two")
        stats = manager.mark_view_selection(sid, range(10), label="sel")
        assert stats["feedback"] == ["sel"]


class TestCacheIntegration:
    def test_forked_session_hits_cache(self, manager, two_cluster_data):
        _, labels = two_cluster_data
        rows = np.flatnonzero(labels == 0)
        a = manager.create("two")
        manager.mark_cluster(a, rows, label="left")
        _, meta_a = manager.view(a)
        assert not meta_a["cache_hit"]

        b = manager.create("two")
        manager.mark_cluster(b, rows, label="left")
        view_b, meta_b = manager.view(b)
        assert meta_b["cache_hit"]
        view_a, _ = manager.view(a)
        np.testing.assert_allclose(view_b.scores, view_a.scores, atol=1e-12)

    def test_cache_disabled(self, two_cluster_data):
        data, _ = two_cluster_data
        manager = SessionManager({"two": data}, cache=None)
        assert manager.cache is None
        sid = manager.create("two")
        _, meta = manager.view(sid)
        assert not meta["cache_hit"]

    def test_shared_cache_across_managers(self, two_cluster_data):
        data, labels = two_cluster_data
        shared = SolveCache()
        rows = np.flatnonzero(labels == 0)
        m1 = SessionManager({"two": data}, cache=shared)
        a = m1.create("two")
        m1.mark_cluster(a, rows)
        m1.view(a)

        m2 = SessionManager({"two": data}, cache=shared)
        b = m2.create("two")
        m2.mark_cluster(b, rows)
        _, meta = m2.view(b)
        assert meta["cache_hit"]


class TestEvictionAndExpiry:
    def test_lru_eviction_checkpoints_and_resumes(self, two_cluster_data):
        data, labels = two_cluster_data
        store = MemoryStore()
        manager = SessionManager({"two": data}, store=store, max_sessions=1)
        first = manager.create("two")
        manager.mark_cluster(first, np.flatnonzero(labels == 0), label="left")
        expected, _ = manager.view(first)

        second = manager.create("two")  # evicts `first` to the store
        assert first in store
        assert manager.stats()["evicted"] == 1

        # Accessing the evicted session resumes it transparently.
        resumed, _ = manager.view(first)
        np.testing.assert_allclose(
            np.abs(resumed.scores), np.abs(expected.scores), atol=1e-8
        )
        assert manager.session_stats(first)["feedback"] == ["left"]
        assert manager.stats()["resumed"] == 1
        assert manager.has(second)

    def test_eviction_without_store_discards(self, two_cluster_data):
        data, _ = two_cluster_data
        manager = SessionManager({"two": data}, max_sessions=1)
        first = manager.create("two")
        manager.create("two")
        with pytest.raises(SessionNotFoundError):
            manager.view(first)

    def test_ttl_expiry(self, two_cluster_data):
        data, _ = two_cluster_data
        clock = FakeClock()
        store = MemoryStore()
        manager = SessionManager(
            {"two": data}, store=store, ttl_seconds=60.0, clock=clock
        )
        sid = manager.create("two")
        manager.view(sid)
        clock.advance(61.0)
        assert manager.list_sessions()[0]["in_memory"] is False
        assert manager.stats()["expired"] == 1
        # ... but it resumes on demand.
        assert manager.session_stats(sid)["session_id"] == sid

    def test_recent_sessions_not_expired(self, two_cluster_data):
        data, _ = two_cluster_data
        clock = FakeClock()
        manager = SessionManager({"two": data}, ttl_seconds=60.0, clock=clock)
        sid = manager.create("two")
        clock.advance(59.0)
        assert manager.list_sessions()[0]["in_memory"] is True
        assert manager.has(sid)


class FailingStore(MemoryStore):
    """A store whose writes always fail (full/unwritable disk)."""

    def put(self, session_id, payload):
        raise StoreError("disk full")


class TestFailingStore:
    def test_ttl_expiry_with_broken_store_keeps_sessions_alive(
        self, two_cluster_data
    ):
        data, _ = two_cluster_data
        clock = FakeClock()
        manager = SessionManager(
            {"two": data},
            store=FailingStore(),
            ttl_seconds=60.0,
            clock=clock,
        )
        sid = manager.create("two")
        clock.advance(61.0)
        # The failed checkpoint must not 500 unrelated requests, and the
        # un-persistable session must stay live rather than being lost.
        other = manager.create("two")
        view, _ = manager.view(other)
        assert view.axes.shape == (2, 3)
        assert manager.session_stats(sid)["session_id"] == sid
        assert manager.stats()["expired"] == 0

    def test_eviction_with_broken_store_does_not_discard(
        self, two_cluster_data
    ):
        data, _ = two_cluster_data
        manager = SessionManager(
            {"two": data}, store=FailingStore(), max_sessions=1
        )
        first = manager.create("two")
        second = manager.create("two")  # over the limit; checkpoint fails
        # Both stay reachable: losing state is worse than exceeding the cap.
        assert manager.session_stats(first)["session_id"] == first
        assert manager.session_stats(second)["session_id"] == second
        assert manager.stats()["evicted"] == 0


class TestCheckpointing:
    def test_checkpoint_and_resume_in_fresh_manager(self, two_cluster_data):
        data, labels = two_cluster_data
        store = MemoryStore()
        m1 = SessionManager({"two": data}, store=store)
        sid = m1.create("two")
        m1.view(sid)
        m1.mark_cluster(sid, np.flatnonzero(labels == 0), label="left")
        expected, _ = m1.view(sid)
        m1.checkpoint(sid)

        m2 = SessionManager({"two": data}, store=store)
        resumed, _ = m2.view(sid)
        np.testing.assert_allclose(
            np.abs(resumed.scores), np.abs(expected.scores), atol=1e-8
        )
        # Undo still works after cross-manager resume.
        assert m2.undo(sid) == "left"

    def test_checkpoint_all(self, two_cluster_data):
        data, _ = two_cluster_data
        store = MemoryStore()
        manager = SessionManager({"two": data}, store=store)
        ids = {manager.create("two") for _ in range(3)}
        assert manager.checkpoint_all() == 3
        assert set(store.list_ids()) == ids

    def test_checkpoint_without_store_rejected(self, two_cluster_data):
        data, _ = two_cluster_data
        manager = SessionManager({"two": data})
        sid = manager.create("two")
        with pytest.raises(StoreError):
            manager.checkpoint(sid)


class TestConcurrency:
    def test_parallel_requests_stay_consistent(self, two_cluster_data):
        data, labels = two_cluster_data
        manager = SessionManager({"two": data}, store=MemoryStore())
        ids = [manager.create("two") for _ in range(4)]
        rows = np.flatnonzero(labels == 0)
        errors = []

        def hammer(sid):
            try:
                for _ in range(5):
                    manager.view(sid)
                    manager.mark_cluster(sid, rows)
                    manager.view(sid)
                    manager.undo(sid)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(sid,)) for sid in ids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for sid in ids:
            assert manager.session_stats(sid)["n_constraints"] == 0
