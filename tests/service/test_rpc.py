"""Tests for the length-prefixed socket RPC linking router and workers."""

import socket
import struct
import threading

import pytest

from repro.service.rpc import (
    MAX_FRAME_BYTES,
    RpcClient,
    RpcConnectionClosed,
    RpcError,
    RpcServer,
    recv_frame,
    send_frame,
)


@pytest.fixture
def socket_path(tmp_path):
    return str(tmp_path / "rpc.sock")


def _echo_server(socket_path):
    return RpcServer(socket_path, lambda req: {"echo": req}).serve_background()


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        payload = {"op": "x", "nested": {"rows": [1, 2, 3]}, "f": 1.5}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close()
        b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket.socketpair()
        for i in range(5):
            send_frame(a, {"i": i})
        for i in range(5):
            assert recv_frame(b) == {"i": i}
        a.close()
        b.close()

    def test_eof_raises_connection_closed(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(RpcConnectionClosed):
            recv_frame(b)
        b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack("!I", 100) + b'{"partial"')
        a.close()
        with pytest.raises(RpcConnectionClosed):
            recv_frame(b)
        b.close()

    def test_oversized_length_prefix_rejected_before_allocation(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(RpcError, match="over the"):
            recv_frame(b)
        a.close()
        b.close()

    def test_non_json_body_rejected(self):
        a, b = socket.socketpair()
        body = b"not json at all"
        a.sendall(struct.pack("!I", len(body)) + body)
        with pytest.raises(RpcError, match="not JSON"):
            recv_frame(b)
        a.close()
        b.close()


class TestClientServer:
    def test_call_round_trip(self, socket_path):
        server = _echo_server(socket_path)
        try:
            client = RpcClient(socket_path)
            assert client.call({"op": "ping"}) == {"echo": {"op": "ping"}}
            client.close()
        finally:
            server.close()

    def test_handler_exception_becomes_error_reply(self, socket_path):
        def explode(request):
            raise ValueError("boom")

        server = RpcServer(socket_path, explode).serve_background()
        try:
            client = RpcClient(socket_path)
            reply = client.call({"op": "x"})
            assert reply["ok"] is False
            assert "ValueError" in reply["error"]
            # The connection survives a handler error.
            assert client.call({"op": "y"})["ok"] is False
            client.close()
        finally:
            server.close()

    def test_connect_to_missing_socket_raises(self, tmp_path):
        with pytest.raises(RpcConnectionClosed):
            RpcClient(str(tmp_path / "nope.sock"))

    def test_server_close_unlinks_socket(self, socket_path, tmp_path):
        server = _echo_server(socket_path)
        server.close()
        assert not (tmp_path / "rpc.sock").exists()

    def test_stale_socket_file_is_replaced(self, socket_path):
        first = _echo_server(socket_path)
        first.close()
        second = _echo_server(socket_path)
        try:
            client = RpcClient(socket_path)
            assert client.call({"n": 1}) == {"echo": {"n": 1}}
            client.close()
        finally:
            second.close()

    def test_concurrent_clients(self, socket_path):
        server = _echo_server(socket_path)
        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def drive(i: int) -> None:
            try:
                client = RpcClient(socket_path)
                for n in range(20):
                    reply = client.call({"client": i, "n": n})
                    assert reply == {"echo": {"client": i, "n": n}}
                results[i] = reply
                client.close()
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=drive, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors
            assert len(results) == 8
        finally:
            server.close()

    def test_peer_death_raises_on_call(self, socket_path):
        server = _echo_server(socket_path)
        client = RpcClient(socket_path)
        assert client.call({"n": 0})["echo"] == {"n": 0}
        server.close()
        # A frame already in flight when close() lands may still be
        # answered before the connection thread notices the flag, so the
        # guaranteed failure is the *next* call after the drain.
        try:
            client.call({"n": 1}, timeout=10)
            first_failed = False
        except RpcConnectionClosed:
            first_failed = True
        if not first_failed:
            with pytest.raises(RpcConnectionClosed):
                client.call({"n": 2}, timeout=10)
        client.close()
