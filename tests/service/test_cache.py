"""Tests for the solve cache (parameter reuse across identical solves)."""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.core.solver import SolverOptions
from repro.errors import NotFittedError
from repro.io import data_fingerprint
from repro.service.cache import SolveCache, solve_key


def _constrained_model(data, labels, which=0):
    model = BackgroundModel(data)
    model.add_cluster_constraint(np.flatnonzero(labels == which))
    return model


class TestKeys:
    def test_same_state_same_key(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        a = cache.key_for(_constrained_model(data, labels))
        b = cache.key_for(_constrained_model(data, labels))
        assert a == b

    def test_key_sensitive_to_constraints(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        assert cache.key_for(
            _constrained_model(data, labels, 0)
        ) != cache.key_for(_constrained_model(data, labels, 1))

    def test_key_sensitive_to_data(self, two_cluster_data, rng):
        data, labels = two_cluster_data
        cache = SolveCache()
        other = rng.standard_normal(data.shape)
        assert cache.key_for(
            _constrained_model(data, labels)
        ) != cache.key_for(_constrained_model(other, labels))

    def test_key_sensitive_to_solver_options(self, two_cluster_data):
        data, labels = two_cluster_data
        fp = data_fingerprint(data)
        model = _constrained_model(data, labels)
        a = solve_key(fp, model.constraints, SolverOptions())
        b = solve_key(fp, model.constraints, SolverOptions(lambda_tolerance=1e-4))
        assert a != b

    def test_precomputed_fingerprint_matches(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        model = _constrained_model(data, labels)
        assert cache.key_for(model) == cache.key_for(
            model, data_fp=data_fingerprint(model.data)
        )


class TestFetchStore:
    def test_miss_then_hit(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        model = _constrained_model(data, labels)
        key = cache.key_for(model)
        assert not cache.fetch(model, key)
        model.fit()
        cache.store(model, key)

        twin = _constrained_model(data, labels)
        assert cache.fetch(twin, key)
        assert twin.is_fitted
        np.testing.assert_allclose(twin.whiten(), model.whiten(), atol=1e-12)

    def test_hit_report_carries_original_diagnostics(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        model = _constrained_model(data, labels)
        report, hit = cache.fit(model)
        assert not hit

        twin = _constrained_model(data, labels)
        twin_report, hit = cache.fit(twin)
        assert hit
        assert twin_report.sweeps == report.sweeps
        assert twin_report.converged == report.converged

    def test_cached_params_isolated(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        model = _constrained_model(data, labels)
        cache.fit(model)

        first = _constrained_model(data, labels)
        cache.fit(first)
        first._params.mean += 100.0  # vandalise the installed copy

        second = _constrained_model(data, labels)
        cache.fit(second)
        np.testing.assert_allclose(
            second.whiten(), model.whiten(), atol=1e-12
        )

    def test_store_requires_fitted_model(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        model = _constrained_model(data, labels)
        with pytest.raises(NotFittedError):
            cache.store(model, cache.key_for(model))


class TestLruAndStats:
    def test_lru_eviction(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache(max_entries=2)
        keys = []
        for rows in ([0, 1, 2], [3, 4, 5], [6, 7, 8]):
            model = BackgroundModel(data)
            model.add_cluster_constraint(rows)
            key = cache.key_for(model)
            model.fit()
            cache.store(model, key)
            keys.append(key)
        assert len(cache) == 2
        assert keys[0] not in cache  # oldest evicted
        assert keys[1] in cache and keys[2] in cache
        assert cache.stats()["evictions"] == 1

    def test_stats_counters(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        model = _constrained_model(data, labels)
        cache.fit(model)
        cache.fit(_constrained_model(data, labels))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_clear(self, two_cluster_data):
        data, labels = two_cluster_data
        cache = SolveCache()
        cache.fit(_constrained_model(data, labels))
        cache.clear()
        assert len(cache) == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SolveCache(max_entries=0)
