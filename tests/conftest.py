"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_cluster_data(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small 3-D dataset with two well-separated clusters.

    Returns (data, labels); cluster 0 has 60 points, cluster 1 has 40.
    """
    a = rng.normal([0.0, 0.0, 0.0], 0.2, (60, 3))
    b = rng.normal([3.0, 3.0, 0.0], 0.2, (40, 3))
    data = np.vstack([a, b])
    labels = np.array([0] * 60 + [1] * 40)
    return data, labels


@pytest.fixture
def gaussian_data(rng) -> np.ndarray:
    """Plain standard-normal data (already 'explained' by the prior)."""
    return rng.standard_normal((200, 4))
