"""Seed-determinism regression tests.

Two layers of guarantee:

* **in-process** — ``fit_fastica(seed=k)`` and a full
  ``objective-sweep`` exploration trace are bit-for-bit stable across
  repeated runs in the same interpreter (the multi-restart batching must
  not introduce order-of-evaluation randomness);
* **across interpreters** — the same trace digest is reproduced by fresh
  Python processes under different ``PYTHONHASHSEED`` values, proving no
  set/dict-iteration order leaks into results (the registry, feedback
  grouping, and policy rotation all touch string-keyed mappings).

Wall-clock fields (``elapsed`` at any nesting depth) are zeroed before
comparison: they are timing measurements by design; everything else in
the trace must match to the byte.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.explore import make_policy, run_exploration
from repro.explore.trace import trace_lines
from repro.projection.fastica import fit_fastica

_REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _normalize(obj):
    """Zero every wall-clock field, recursively; leave the rest alone."""
    if isinstance(obj, dict):
        return {
            key: 0.0 if key == "elapsed" else _normalize(value)
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [_normalize(item) for item in obj]
    return obj


def _sweep_trace_bytes(data) -> bytes:
    """Run objective-sweep and serialise its trace, timing zeroed."""
    from tests.explore.test_engine import in_process

    result = run_exploration(
        make_policy("objective-sweep"),
        in_process(data, seed=0),
        rounds=3,
        seed=42,
        clock=lambda: 0.0,
    )
    lines = [_normalize(line) for line in trace_lines(result)]
    return "\n".join(
        json.dumps(line, sort_keys=True) for line in lines
    ).encode()


#: Stand-alone script for the cross-interpreter runs: prints the
#: normalised trace digest of a fixed objective-sweep exploration.
_SUBPROCESS_SCRIPT = """
import hashlib, json
import numpy as np
from repro.core.session import ExplorationSession
from repro.explore import InProcessDriver, make_policy, run_exploration
from repro.explore.trace import trace_lines

def normalize(obj):
    if isinstance(obj, dict):
        return {k: 0.0 if k == "elapsed" else normalize(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [normalize(x) for x in obj]
    return obj

rng = np.random.default_rng(12345)
a = rng.normal([0.0, 0.0, 0.0], 0.2, (60, 3))
b = rng.normal([3.0, 3.0, 0.0], 0.2, (40, 3))
data = np.vstack([a, b])
session = ExplorationSession(data, objective="pca", standardize=True, seed=0)
result = run_exploration(
    make_policy("objective-sweep"),
    InProcessDriver(session, info={"dataset": "test"}),
    rounds=3,
    seed=42,
    clock=lambda: 0.0,
)
payload = "\\n".join(
    json.dumps(normalize(line), sort_keys=True) for line in trace_lines(result)
)
print(hashlib.sha256(payload.encode()).hexdigest())
"""


class TestFastICASeedDeterminism:
    def test_same_seed_bit_for_bit(self, two_cluster_data):
        data, _ = two_cluster_data
        for kwargs in (
            {"seed": 7},
            {"seed": 7, "n_restarts": 4},
            {"seed": 7, "algorithm": "deflation"},
        ):
            r1 = fit_fastica(data, **kwargs)
            r2 = fit_fastica(data, **kwargs)
            np.testing.assert_array_equal(r1.components, r2.components)
            assert r1.n_iterations == r2.n_iterations
            assert r1.converged == r2.converged
            assert r1.best_restart == r2.best_restart

    def test_different_seeds_draw_different_inits(self, two_cluster_data):
        data, _ = two_cluster_data
        # Not a correctness requirement per se, but if every seed produced
        # identical components the seed plumbing would be dead.
        r1 = fit_fastica(data, seed=1, max_iterations=2, tolerance=0.0)
        r2 = fit_fastica(data, seed=2, max_iterations=2, tolerance=0.0)
        assert not np.array_equal(r1.components, r2.components)


class TestObjectiveSweepTraceDeterminism:
    def test_trace_bit_for_bit_in_process(self, two_cluster_data):
        data, _ = two_cluster_data
        assert _sweep_trace_bytes(data) == _sweep_trace_bytes(data)

    def test_trace_stable_across_pythonhashseed(self):
        """Fresh interpreters with different hash seeds agree exactly."""
        digests = {}
        for hash_seed in ("0", "1", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT],
                capture_output=True,
                text=True,
                timeout=300,
                env={
                    "PYTHONPATH": _REPO_SRC,
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                },
            )
            assert proc.returncode == 0, proc.stderr
            digests[hash_seed] = proc.stdout.strip()
        assert len(set(digests.values())) == 1, digests
