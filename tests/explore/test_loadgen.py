"""Tests for the concurrent policy-driven workload generator."""

import json

import pytest

from repro.explore.loadgen import (
    LatencyRecorder,
    LoadGenConfig,
    format_report,
    route_template,
    run_loadgen,
    write_report,
)
from repro.service import SessionManager
from repro.service.server import start_background


class TestRouteTemplate:
    def test_session_paths_collapse(self):
        assert (
            route_template("GET", "/v1", "/sessions/abc123/view")
            == "GET /v1/sessions/{id}/view"
        )
        assert (
            route_template("DELETE", "/v1", "/sessions/abc123")
            == "DELETE /v1/sessions/{id}"
        )

    def test_collection_paths_untouched(self):
        assert route_template("POST", "/v1", "/sessions") == "POST /v1/sessions"
        assert route_template("GET", "/v1", "/stats") == "GET /v1/stats"

    def test_query_strings_stripped(self):
        assert (
            route_template("GET", "/v1", "/sessions/x/view?detail=1")
            == "GET /v1/sessions/{id}/view"
        )


class TestLatencyRecorder:
    def test_percentiles_and_errors(self):
        recorder = LatencyRecorder()
        for ms in (1, 2, 3, 4, 100):
            recorder.record("GET /x", ms / 1e3, ok=True)
        recorder.record("GET /x", 0.5, ok=False)
        summary = recorder.summary()
        stats = summary["GET /x"]
        assert stats["count"] == 6
        assert stats["errors"] == 1
        assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        assert recorder.totals() == (6, 1)


class TestConfig:
    def test_worker_default(self):
        assert LoadGenConfig(url="x", sessions=3).resolved_workers() == 3
        assert LoadGenConfig(url="x", sessions=50).resolved_workers() == 8
        assert (
            LoadGenConfig(url="x", sessions=50, workers=2).resolved_workers()
            == 2
        )

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            run_loadgen(LoadGenConfig(url="http://x", sessions=0))
        with pytest.raises(ValueError):
            run_loadgen(LoadGenConfig(url="http://x", policies=()))
        with pytest.raises(ValueError):
            run_loadgen(
                LoadGenConfig(url="http://x", policies=("not-a-policy",))
            )


class TestLiveWorkload:
    @pytest.fixture
    def server(self, two_cluster_data):
        data, _ = two_cluster_data
        server = start_background(SessionManager({"two": data}))
        yield server
        server.stop()

    def test_eight_concurrent_policy_sessions(self, server, tmp_path):
        """The acceptance workload: >= 8 sessions, mixed policies, report."""
        config = LoadGenConfig(
            url=server.base_url,
            sessions=8,
            workers=4,
            policies=("objective-sweep", "random-walk"),
            rounds=2,
            seed=0,
        )
        report = run_loadgen(config)

        totals = report.totals
        assert totals["sessions_failed"] == 0, report.sessions
        assert totals["sessions_ok"] == 8
        assert totals["throughput_rps"] > 0
        # create + (rounds+1 views) + feedback + delete per session.
        assert totals["requests"] >= 8 * 4

        view_stats = report.routes["GET /v1/sessions/{id}/view"]
        for key in ("count", "p50_ms", "p95_ms", "p99_ms", "mean_ms"):
            assert key in view_stats
        assert view_stats["count"] >= 8 * 3  # initial + one per round

        assert report.cache is not None
        assert "hit_rate" in report.cache
        # Twin sessions reach identical belief states concurrently; the
        # solve cache must convert some of them into hits.
        assert report.cache["hits"] > 0

        path = write_report(report, tmp_path / "BENCH_loadgen.json")
        payload = json.loads(path.read_text())
        assert payload["suite"] == "loadgen"
        assert payload["routes"] == report.routes
        assert payload["totals"]["requests"] == totals["requests"]

        text = format_report(report)
        assert "GET /v1/sessions/{id}/view" in text
        assert "req/s" in text

    def test_mixed_datasets_round_robin(
        self, two_cluster_data, gaussian_data, tmp_path
    ):
        data, _ = two_cluster_data
        server = start_background(
            SessionManager({"two": data, "gauss": gaussian_data})
        )
        try:
            report = run_loadgen(
                LoadGenConfig(
                    url=server.base_url,
                    sessions=4,
                    workers=2,
                    policies=("random-walk",),
                    rounds=1,
                    seed=0,
                )
            )
        finally:
            server.stop()
        assert report.totals["sessions_failed"] == 0
        used = {outcome["dataset"] for outcome in report.sessions}
        assert used == {"two", "gauss"}

    def test_obs_run_records_metrics_series(
        self, two_cluster_data, tmp_path
    ):
        """With --obs the loadgen scrapes /v1/metrics DURING the run and
        the report carries the time-series, not just the final totals."""
        from repro import obs

        data, _ = two_cluster_data
        obs.configure()
        server = start_background(SessionManager({"two": data}))
        try:
            report = run_loadgen(
                LoadGenConfig(
                    url=server.base_url,
                    sessions=4,
                    workers=2,
                    policies=("objective-sweep",),
                    rounds=2,
                    seed=0,
                    obs=True,
                    scrape_interval=0.05,
                )
            )
        finally:
            server.stop()
            obs.disable()
        series = report.obs["series"]
        assert series["interval_seconds"] == 0.05
        samples = series["samples"]
        assert len(samples) >= 2  # immediate anchor + final scrape
        for sample in samples:
            assert {"ts", "mono", "families"} <= set(sample)
        assert samples[0]["mono"] <= samples[-1]["mono"]
        timeline = series["timeline"]
        assert len(timeline) == len(samples) - 1
        assert all(point["requests_per_s"] >= 0 for point in timeline)
        # the whole run's requests appear in the scraped counters
        from repro.obs.timeseries import counter_delta

        total = counter_delta(
            samples[0], samples[-1], "repro_requests_total"
        )
        assert total > 0
        # series survives the JSON artifact round-trip
        path = write_report(report, tmp_path / "BENCH_loadgen.json")
        payload = json.loads(path.read_text())
        assert payload["obs"]["series"]["timeline"] == timeline
        assert "obs series:" in format_report(report)

    def test_scrape_interval_zero_disables_sampler(self, two_cluster_data):
        from repro import obs

        data, _ = two_cluster_data
        obs.configure()
        server = start_background(SessionManager({"two": data}))
        try:
            report = run_loadgen(
                LoadGenConfig(
                    url=server.base_url,
                    sessions=1,
                    workers=1,
                    policies=("objective-sweep",),
                    rounds=1,
                    seed=0,
                    obs=True,
                    scrape_interval=0.0,
                )
            )
        finally:
            server.stop()
            obs.disable()
        assert report.obs["enabled"] is True
        assert "series" not in report.obs
