"""Tests for the exploration engine: determinism, stopping, warm starts."""

import warnings

import numpy as np
import pytest

from repro.core.session import ExplorationSession
from repro.explore import (
    InProcessDriver,
    KnowledgeGainPlateau,
    RoundBudget,
    RunState,
    WallClockBudget,
    make_policy,
    run_exploration,
)
from repro.feedback import ViewSelectionFeedback
from repro.projection import registry


def in_process(data, seed=0, warm_start=False, objective="pca"):
    session = ExplorationSession(
        data,
        objective=objective,
        standardize=True,
        seed=seed,
        warm_start=warm_start,
    )
    info = {
        "dataset": "test",
        "standardize": True,
        "session_seed": seed,
        "warm_start": warm_start,
    }
    return InProcessDriver(session, info=info)


class TestDeterminism:
    @pytest.mark.parametrize(
        "policy_name", ["surprise", "objective-sweep", "random-walk"]
    )
    def test_same_seed_same_run(self, two_cluster_data, policy_name):
        data, _ = two_cluster_data
        results = [
            run_exploration(
                make_policy(policy_name),
                in_process(data, seed=0),
                rounds=3,
                seed=42,
            )
            for _ in range(2)
        ]
        a, b = results
        assert [fb.to_dict() for fb in a.feedback_sequence()] == [
            fb.to_dict() for fb in b.feedback_sequence()
        ]
        assert a.knowledge_curve() == b.knowledge_curve()
        assert a.stopped_by == b.stopped_by

    def test_knowledge_curve_non_decreasing(self, two_cluster_data):
        data, _ = two_cluster_data
        result = run_exploration(
            make_policy("surprise"), in_process(data), rounds=4, seed=0
        )
        curve = result.knowledge_curve()
        assert curve[0] == 0.0  # no knowledge before any feedback
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_no_deprecated_calls(self, two_cluster_data):
        """Policies flow through apply/apply_many only (no mark_*/assume_*)."""
        data, _ = two_cluster_data
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_exploration(
                make_policy("objective-sweep"),
                in_process(data),
                rounds=2,
                seed=0,
            )


class TestStopping:
    def test_requires_some_rule(self, two_cluster_data):
        data, _ = two_cluster_data
        with pytest.raises(ValueError):
            run_exploration(make_policy("surprise"), in_process(data))

    def test_round_budget(self, two_cluster_data):
        data, _ = two_cluster_data
        result = run_exploration(
            make_policy("random-walk"), in_process(data), rounds=2, seed=0
        )
        assert len(result.rounds) == 2
        assert result.stopped_by.startswith("round-budget")

    def test_policy_exhaustion(self, two_cluster_data):
        data, _ = two_cluster_data
        result = run_exploration(
            make_policy("surprise"), in_process(data), rounds=50, seed=0
        )
        assert len(result.rounds) < 50
        assert result.stopped_by.startswith("policy-exhausted")

    def test_knowledge_plateau(self, two_cluster_data):
        data, _ = two_cluster_data
        # An absurdly high bar makes every round a plateau round.
        result = run_exploration(
            make_policy("random-walk"),
            in_process(data),
            rounds=50,
            stopping=[KnowledgeGainPlateau(min_gain_nats=1e9, patience=2)],
            seed=0,
        )
        assert len(result.rounds) == 2
        assert result.stopped_by.startswith("knowledge-plateau")

    def test_wall_clock_budget_with_fake_clock(self, two_cluster_data):
        data, _ = two_cluster_data
        ticks = iter(np.arange(0.0, 1000.0, 10.0))
        result = run_exploration(
            make_policy("random-walk"),
            in_process(data),
            rounds=50,
            stopping=[WallClockBudget(max_seconds=25.0)],
            seed=0,
            clock=lambda: float(next(ticks)),
        )
        assert result.stopped_by.startswith("wall-clock-budget")
        assert len(result.rounds) < 50

    def test_plateau_rule_unit(self):
        rule = KnowledgeGainPlateau(min_gain_nats=0.5, patience=2)
        state = RunState(knowledge_curve=[0.0, 1.0, 1.1, 1.2])
        assert rule.should_stop(state) is not None
        state = RunState(knowledge_curve=[0.0, 1.0, 1.1, 2.2])
        assert rule.should_stop(state) is None

    def test_round_budget_unit(self):
        rule = RoundBudget(max_rounds=3)
        assert rule.should_stop(RunState(rounds_completed=2)) is None
        assert rule.should_stop(RunState(rounds_completed=3)) is not None


class TestWarmStart:
    def test_warm_start_matches_cold_run(self, two_cluster_data):
        """The incremental path lands on the same optimum (same feedback)."""
        data, _ = two_cluster_data
        cold = run_exploration(
            make_policy("random-walk"), in_process(data), rounds=3, seed=5
        )
        warm = run_exploration(
            make_policy("random-walk"),
            in_process(data, warm_start=True),
            rounds=3,
            seed=5,
        )
        assert [fb.to_dict() for fb in cold.feedback_sequence()] == [
            fb.to_dict() for fb in warm.feedback_sequence()
        ]
        # Warm and cold solves stop at the same optimum within solver
        # tolerance; the knowledge readings must agree closely.
        np.testing.assert_allclose(
            cold.knowledge_curve(), warm.knowledge_curve(), rtol=0.05, atol=0.05
        )

    def test_warm_start_survives_undo(self, two_cluster_data):
        """Undo breaks the append-only prefix; the session must cold-start."""
        data, _ = two_cluster_data
        session = ExplorationSession(
            data, standardize=True, seed=0, warm_start=True
        )
        from repro.feedback import ClusterFeedback

        session.current_view()
        session.apply(ClusterFeedback(rows=range(10), label="a"))
        session.current_view()
        session.undo_last_feedback()
        session.apply(ClusterFeedback(rows=range(20, 40), label="b"))
        view = session.current_view()  # must not raise, must refit cleanly
        assert view is not None
        assert session.model.is_fitted


class TestCustomObjective:
    def test_sweep_over_a_test_registered_objective(self, two_cluster_data):
        """Policies work with any registry-registered objective."""
        data, _ = two_cluster_data

        class VarianceSpread:
            name = "variance-spread-test"
            description = "axis directions ranked by |variance - 1|"

            def find_directions(self, whitened, rng):
                return np.eye(whitened.shape[1])

            def score(self, whitened, directions):
                proj = whitened @ np.atleast_2d(directions).T
                return proj.var(axis=0, ddof=1) - 1.0

        registry.register(VarianceSpread())
        try:
            policy = make_policy(
                "objective-sweep",
                objectives=["variance-spread-test", "pca"],
                score_threshold=0.0,
            )
            result = run_exploration(
                policy, in_process(data), rounds=2, seed=0
            )
            objectives_seen = [record.objective for record in result.rounds]
            assert objectives_seen == ["variance-spread-test", "pca"]
            applied = result.feedback_sequence()
            assert applied, "the sweep should have confirmed something"
            assert all(
                isinstance(fb, ViewSelectionFeedback) for fb in applied
            )
        finally:
            registry.unregister("variance-spread-test")
