"""Trace determinism: record, persist, replay — in-process and over HTTP."""

import json

import pytest

from repro.core.session import ExplorationSession
from repro.errors import DataShapeError
from repro.explore import (
    InProcessDriver,
    load_trace,
    make_policy,
    remote_driver_for,
    replay_trace,
    run_exploration,
    save_trace,
)
from repro.explore.trace import in_process_driver_for
from repro.service import ServiceClient, SessionManager
from repro.service.server import start_background


@pytest.fixture
def recorded(two_cluster_data, tmp_path):
    """One recorded surprise-policy run plus its data and trace path."""
    data, _ = two_cluster_data
    session = ExplorationSession(data, standardize=True, seed=0)
    driver = InProcessDriver(
        session,
        info={
            "dataset": "two",
            "standardize": True,
            "session_seed": 0,
            "warm_start": False,
        },
    )
    result = run_exploration(
        make_policy("surprise"), driver, rounds=3, seed=0
    )
    path = tmp_path / "run.jsonl"
    save_trace(result, path)
    return data, result, path


class TestPersistence:
    def test_round_trip(self, recorded):
        _, result, path = recorded
        trace = load_trace(path)
        assert trace.header["policy"] == "surprise"
        assert trace.header["seed"] == 0
        assert trace.session_info["dataset"] == "two"
        assert len(trace.rounds) == len(result.rounds)
        assert trace.knowledge_curve() == result.knowledge_curve()
        assert trace.summary["stopped_by"] == result.stopped_by
        for recorded_round, original in zip(trace.rounds, result.rounds):
            assert [fb.to_dict() for fb in recorded_round.feedback] == [
                fb.to_dict() for fb in original.feedback
            ]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(json.dumps({"type": "summary"}) + "\n")
        with pytest.raises(DataShapeError, match="no header"):
            load_trace(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"type": "header", "version": 99}) + "\n")
        with pytest.raises(DataShapeError, match="version"):
            load_trace(path)

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(DataShapeError, match="not JSON"):
            load_trace(path)


class TestInProcessReplay:
    def test_replay_is_bit_for_bit(self, recorded):
        data, _, path = recorded
        trace = load_trace(path)
        outcome = replay_trace(trace, in_process_driver_for(trace, data))
        assert outcome.matches, outcome.mismatches
        assert outcome.actual_curve == outcome.expected_curve

    def test_tampered_trace_is_detected(self, recorded):
        data, _, path = recorded
        trace = load_trace(path)
        trace.rounds[0].knowledge_nats += 0.5
        outcome = replay_trace(trace, in_process_driver_for(trace, data))
        assert not outcome.matches
        assert any(
            m.get("field") == "knowledge_nats" for m in outcome.mismatches
        )

    def test_replay_respects_tolerance(self, recorded):
        data, _, path = recorded
        trace = load_trace(path)
        trace.rounds[0].knowledge_nats += 1e-6
        outcome = replay_trace(
            trace, in_process_driver_for(trace, data), tolerance=1e-3
        )
        assert outcome.matches


class TestHttpReplay:
    def test_replay_through_a_live_server(self, recorded):
        """Same trace, same curve — through the full service stack."""
        data, _, path = recorded
        trace = load_trace(path)
        server = start_background(SessionManager({"two": data}))
        try:
            client = ServiceClient(server.base_url)
            outcome = replay_trace(trace, remote_driver_for(trace, client))
        finally:
            server.stop()
        assert outcome.matches, outcome.mismatches
        assert outcome.actual_curve == outcome.expected_curve

    def test_remote_replay_needs_a_dataset_name(self, recorded, two_cluster_data):
        data, _, path = recorded
        trace = load_trace(path)
        trace.header["session"].pop("dataset")
        with pytest.raises(DataShapeError, match="dataset"):
            remote_driver_for(trace, object())


class TestObjectiveSweepReplay:
    def test_view_feedback_replays_exactly(self, two_cluster_data, tmp_path):
        """View-relative feedback needs the observe sequence re-enacted."""
        data, _ = two_cluster_data
        session = ExplorationSession(data, standardize=True, seed=3)
        driver = InProcessDriver(
            session,
            info={
                "dataset": "two",
                "standardize": True,
                "session_seed": 3,
                "warm_start": False,
            },
        )
        result = run_exploration(
            make_policy("objective-sweep"), driver, rounds=4, seed=3
        )
        path = tmp_path / "sweep.jsonl"
        save_trace(result, path)
        trace = load_trace(path)
        outcome = replay_trace(trace, in_process_driver_for(trace, data))
        assert outcome.matches, outcome.mismatches
