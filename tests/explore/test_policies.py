"""Tests for the exploration-policy vocabulary."""

import numpy as np
import pytest

from repro.explore.policies import (
    POLICIES,
    Observation,
    ObjectiveSweep,
    RandomWalk,
    SurpriseGreedy,
    UnknownPolicyError,
    make_policy,
    policy_names,
)
from repro.feedback import ClusterFeedback, Feedback, ViewSelectionFeedback


def make_observation(
    n=60,
    round_index=0,
    objective="pca",
    top_score=0.5,
    knowledge=0.0,
    surprise=None,
    projected=None,
):
    rng = np.random.default_rng(7)
    if surprise is None:
        surprise = rng.uniform(1.0, 2.0, n)
    if projected is None:
        projected = rng.standard_normal((n, 2))
    scores = np.array([top_score, top_score / 2])
    return Observation(
        round_index=round_index,
        objective=objective,
        axes=np.eye(2, projected.shape[1] if projected.ndim == 2 else 2),
        scores=scores,
        top_score=float(top_score),
        knowledge_nats=float(knowledge),
        row_surprise=np.asarray(surprise, dtype=np.float64),
        projected=np.asarray(projected, dtype=np.float64),
    )


class TestRegistry:
    def test_names_cover_builtins(self):
        assert policy_names() == sorted(POLICIES)
        assert {"surprise", "objective-sweep", "random-walk"} <= set(
            policy_names()
        )

    def test_make_policy_unknown_raises_value_error(self):
        with pytest.raises(UnknownPolicyError):
            make_policy("nope")
        with pytest.raises(ValueError):  # subclass contract
            make_policy("nope")

    def test_make_policy_passes_kwargs(self):
        policy = make_policy("surprise", min_rows=3, fraction=0.5)
        assert policy.min_rows == 3
        assert policy.fraction == 0.5


class TestSurpriseGreedy:
    def _planted_observation(self):
        # Rows 0..14 are very surprising and sit together in the view;
        # everything else is quiet background scattered far away.
        n = 80
        surprise = np.full(n, 1.0)
        surprise[:15] = 10.0
        rng = np.random.default_rng(0)
        projected = rng.standard_normal((n, 2)) * 8.0
        projected[:15] = [20.0, 20.0] + rng.standard_normal((15, 2)) * 0.1
        return make_observation(n=n, surprise=surprise, projected=projected)

    def test_marks_the_planted_cluster(self):
        policy = SurpriseGreedy(fraction=0.2, min_rows=5)
        policy.reset()
        rng = np.random.default_rng(0)
        batch = policy.propose(self._planted_observation(), rng)
        assert len(batch) == 1
        feedback = batch[0]
        assert isinstance(feedback, ClusterFeedback)
        assert set(feedback.rows) == set(range(15))

    def test_never_reproposes_a_seen_cluster(self):
        policy = SurpriseGreedy(fraction=0.2, min_rows=5)
        policy.reset()
        rng = np.random.default_rng(0)
        observation = self._planted_observation()
        assert policy.propose(observation, rng)
        assert policy.propose(observation, rng) == []

    def test_reset_forgets_seen_clusters(self):
        policy = SurpriseGreedy(fraction=0.2, min_rows=5)
        policy.reset()
        rng = np.random.default_rng(0)
        observation = self._planted_observation()
        first = policy.propose(observation, rng)
        policy.reset()
        again = policy.propose(observation, rng)
        assert [fb.to_dict() for fb in first] == [fb.to_dict() for fb in again]

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            SurpriseGreedy(fraction=0.0)
        with pytest.raises(ValueError):
            SurpriseGreedy(min_rows=1)


class TestObjectiveSweep:
    def test_rotates_through_registered_objectives(self):
        policy = ObjectiveSweep(objectives=["pca", "ica"])
        policy.reset()
        assert [policy.objective_for_round(i) for i in range(4)] == [
            "pca", "ica", "pca", "ica",
        ]
        assert policy.patience == 2

    def test_default_sweep_is_the_whole_registry(self):
        from repro.projection import registry

        policy = ObjectiveSweep()
        policy.reset()
        assert policy.objectives == registry.names()

    def test_denies_a_quiet_view(self):
        policy = ObjectiveSweep(score_threshold=0.1)
        policy.reset()
        rng = np.random.default_rng(0)
        assert policy.propose(make_observation(top_score=0.01), rng) == []

    def test_confirms_an_informative_view(self):
        policy = ObjectiveSweep(score_threshold=0.1, select_fraction=0.25)
        policy.reset()
        rng = np.random.default_rng(0)
        batch = policy.propose(make_observation(top_score=0.5), rng)
        assert len(batch) == 1
        assert isinstance(batch[0], ViewSelectionFeedback)
        assert len(batch[0].rows) >= policy.min_rows

    def test_denies_an_already_confirmed_selection(self):
        policy = ObjectiveSweep(score_threshold=0.1)
        policy.reset()
        rng = np.random.default_rng(0)
        observation = make_observation(top_score=0.5)
        assert policy.propose(observation, rng)
        assert policy.propose(observation, rng) == []

    def test_unregistered_objective_rejected_at_reset(self):
        policy = ObjectiveSweep(objectives=["pca", "not-a-thing"])
        with pytest.raises(UnknownPolicyError):
            policy.reset()


class TestRandomWalk:
    def test_deterministic_given_seed(self):
        policy = RandomWalk()
        policy.reset()
        observation = make_observation()
        first = policy.propose(observation, np.random.default_rng(3))
        second = policy.propose(observation, np.random.default_rng(3))
        assert [fb.to_dict() for fb in first] == [
            fb.to_dict() for fb in second
        ]

    def test_rows_in_range(self):
        policy = RandomWalk(min_rows=4, max_fraction=0.2)
        policy.reset()
        rng = np.random.default_rng(1)
        for i in range(10):
            batch = policy.propose(make_observation(n=50, round_index=i), rng)
            (feedback,) = batch
            assert 4 <= len(feedback.rows) <= 50
            assert all(0 <= r < 50 for r in feedback.rows)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            RandomWalk(max_fraction=1.5)


class TestTypedFeedbackOnly:
    """Every built-in policy speaks the typed vocabulary exclusively."""

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_policy_emits_only_feedback_objects(self, name):
        policy = make_policy(name)
        policy.reset()
        rng = np.random.default_rng(0)
        for i in range(4):
            batch = policy.propose(make_observation(round_index=i), rng)
            assert isinstance(batch, list)
            assert all(isinstance(fb, Feedback) for fb in batch)
