"""Property tests: batched kernels vs the pre-vectorization loops.

Every vectorized kernel of the solver core is checked against the
preserved loop implementation in :mod:`repro.core.reference` to 1e-10
(most agree to machine epsilon; the looser bound absorbs summation-order
differences in the one-shot INIT reductions).  Hypothesis drives random
shapes, overlapping constraint layouts, and singular/pinned covariances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.constraint import Constraint, ConstraintKind
from repro.core.equivalence import build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.reference import (
    reference_apply_quadratic_update,
    reference_build_equivalence_classes,
    reference_init_targets,
    reference_optim_sweeps,
    reference_projected_stats,
    reference_sample_background,
    reference_whiten,
    reference_whitening_transforms,
)
from repro.core.sampling import sample_background
from repro.core.solver import SolverOptions, init_targets, solve_maxent
from repro.core.whitening import whiten, whitening_transforms
from repro.linalg import woodbury_rank1_inverse, woodbury_rank1_inverse_batched

_TOL = 1e-10

_FAST = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def covariance_stack(draw):
    """A (C, d, d) stack of PSD matrices, some exactly singular (pinned)."""
    c_count = draw(st.integers(min_value=1, max_value=8))
    d = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    sigma = np.empty((c_count, d, d))
    for c in range(c_count):
        rank = draw(st.integers(min_value=1, max_value=d))
        a = rng.standard_normal((d, rank))
        sigma[c] = a @ a.T  # rank-deficient when rank < d
    return sigma


@st.composite
def constraint_layout(draw):
    """Random data plus overlapping linear/quadratic constraints."""
    n = draw(st.integers(min_value=4, max_value=60))
    d = draw(st.integers(min_value=2, max_value=6))
    t_count = draw(st.integers(min_value=0, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, d))
    constraints = []
    for t in range(t_count):
        size = draw(st.integers(min_value=1, max_value=n))
        rows = np.sort(rng.choice(n, size=size, replace=False))
        kind = (
            ConstraintKind.QUADRATIC
            if draw(st.booleans())
            else ConstraintKind.LINEAR
        )
        w = rng.standard_normal(d)
        w /= np.linalg.norm(w)
        constraints.append(Constraint(kind, rows, w, label=f"c{t}"))
    return data, constraints


def _params_for(sigma: np.ndarray, seed: int = 0) -> ClassParameters:
    """ClassParameters carrying the given sigma stack and random means."""
    c_count, d = sigma.shape[0], sigma.shape[1]
    rng = np.random.default_rng(seed)
    params = ClassParameters.prior(c_count, d)
    params.sigma[:] = sigma
    params.theta1[:] = rng.standard_normal((c_count, d))
    params.mean[:] = np.einsum("cij,cj->ci", params.sigma, params.theta1)
    params.bump_versions(np.arange(c_count))
    return params


class TestBatchedWhitening:
    @given(covariance_stack())
    @_FAST
    def test_transforms_match_loop(self, sigma):
        params = _params_for(sigma)
        got = whitening_transforms(params)
        want = reference_whitening_transforms(params)
        np.testing.assert_allclose(got, want, atol=_TOL)

    @given(covariance_stack(), st.integers(min_value=0, max_value=2**31 - 1))
    @_FAST
    def test_whiten_matches_loop(self, sigma, seed):
        params = _params_for(sigma)
        rng = np.random.default_rng(seed)
        n = rng.integers(sigma.shape[0], 50)
        data = rng.standard_normal((int(n), sigma.shape[1]))
        # Arbitrary class assignment covering every class index.
        classes = build_equivalence_classes(int(n), [])
        class_of_row = rng.integers(0, sigma.shape[0], int(n))
        classes = type(classes)(
            n_rows=int(n),
            class_of_row=class_of_row,
            class_counts=np.bincount(class_of_row, minlength=sigma.shape[0]),
            members=(),
            representative_rows=np.zeros(sigma.shape[0], dtype=np.intp),
        )
        got = whiten(data, params, classes)
        want = reference_whiten(data, params, classes)
        np.testing.assert_allclose(got, want, atol=_TOL)


class TestBatchedSampling:
    @given(covariance_stack(), st.integers(min_value=0, max_value=2**31 - 1))
    @_FAST
    def test_sample_matches_loop_for_same_seed(self, sigma, seed):
        params = _params_for(sigma)
        rng = np.random.default_rng(seed)
        n = int(rng.integers(sigma.shape[0], 50))
        class_of_row = rng.integers(0, sigma.shape[0], n)
        classes = build_equivalence_classes(n, [])
        classes = type(classes)(
            n_rows=n,
            class_of_row=class_of_row,
            class_counts=np.bincount(class_of_row, minlength=sigma.shape[0]),
            members=(),
            representative_rows=np.zeros(sigma.shape[0], dtype=np.intp),
        )
        got = sample_background(
            params, classes, rng=np.random.default_rng(seed + 1)
        )
        want = reference_sample_background(
            params, classes, rng=np.random.default_rng(seed + 1)
        )
        np.testing.assert_allclose(got, want, atol=_TOL)


class TestBatchedWoodbury:
    @given(
        covariance_stack(),
        st.floats(min_value=0.0, max_value=5.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @_FAST
    def test_batched_matches_scalar_loop(self, sigma, lam, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal(sigma.shape[1])
        w /= np.linalg.norm(w)
        got = woodbury_rank1_inverse_batched(sigma, w, lam)
        want = np.stack(
            [woodbury_rank1_inverse(sigma[c], w, lam) for c in range(len(sigma))]
        )
        np.testing.assert_allclose(got, want, atol=_TOL)

    @given(covariance_stack(), st.integers(min_value=0, max_value=2**31 - 1))
    @_FAST
    def test_quadratic_update_matches_loop(self, sigma, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal(sigma.shape[1])
        w /= np.linalg.norm(w)
        lam = float(rng.uniform(0.0, 2.0))
        delta = float(rng.standard_normal())
        subset = np.flatnonzero(rng.random(sigma.shape[0]) < 0.7)
        if subset.size == 0:
            subset = np.array([0])

        vec = _params_for(sigma, seed=seed)
        ref = vec.copy()
        vec.apply_quadratic_update(subset, w, lam, delta)
        reference_apply_quadratic_update(ref, subset, w, lam, delta)
        np.testing.assert_allclose(vec.sigma, ref.sigma, atol=_TOL)
        np.testing.assert_allclose(vec.mean, ref.mean, atol=_TOL)
        np.testing.assert_allclose(vec.theta1, ref.theta1, atol=_TOL)

    @given(covariance_stack())
    @_FAST
    def test_projected_stats_match_loop_einsum(self, sigma):
        params = _params_for(sigma)
        rng = np.random.default_rng(1)
        w = rng.standard_normal(sigma.shape[1])
        w /= np.linalg.norm(w)
        subset = np.arange(sigma.shape[0])
        got_m, got_v = params.projected_stats(subset, w)
        want_m, want_v = reference_projected_stats(params, subset, w)
        np.testing.assert_allclose(got_m, want_m, atol=_TOL)
        np.testing.assert_allclose(got_v, want_v, atol=_TOL)


class TestOneShotInit:
    @given(constraint_layout())
    @_FAST
    def test_targets_and_anchors_match_per_constraint_passes(self, layout):
        data, constraints = layout
        got_t, got_a = init_targets(data, constraints)
        want_t, want_a = reference_init_targets(data, constraints)
        np.testing.assert_allclose(got_t, want_t, atol=_TOL, rtol=1e-10)
        np.testing.assert_allclose(got_a, want_a, atol=_TOL, rtol=1e-10)


class TestVectorizedEquivalence:
    @given(constraint_layout())
    @_FAST
    def test_identical_partition_and_numbering(self, layout):
        data, constraints = layout
        n = data.shape[0]
        got = build_equivalence_classes(n, constraints)
        want = reference_build_equivalence_classes(n, constraints)
        assert got.n_rows == want.n_rows
        np.testing.assert_array_equal(got.class_of_row, want.class_of_row)
        np.testing.assert_array_equal(got.class_counts, want.class_counts)
        np.testing.assert_array_equal(
            got.representative_rows, want.representative_rows
        )
        assert len(got.members) == len(want.members)
        for g, w in zip(got.members, want.members):
            np.testing.assert_array_equal(g, w)

    def test_many_constraints_cross_byte_boundaries(self):
        # >8 and >16 constraints exercise multi-byte packed signatures.
        rng = np.random.default_rng(0)
        n = 200
        constraints = []
        for t in range(19):
            rows = np.sort(rng.choice(n, size=rng.integers(1, n), replace=False))
            w = rng.standard_normal(3)
            constraints.append(
                Constraint(ConstraintKind.LINEAR, rows, w / np.linalg.norm(w))
            )
        got = build_equivalence_classes(n, constraints)
        want = reference_build_equivalence_classes(n, constraints)
        np.testing.assert_array_equal(got.class_of_row, want.class_of_row)
        for g, w in zip(got.members, want.members):
            np.testing.assert_array_equal(g, w)


class TestSolverEndToEnd:
    @given(constraint_layout())
    @_FAST
    def test_fixed_sweeps_match_reference_loop(self, layout):
        """Full OPTIM parity: N forced sweeps, loop vs vectorized."""
        data, constraints = layout
        if not constraints:
            return
        n = data.shape[0]
        classes = build_equivalence_classes(n, constraints)
        sweeps = 3
        forced = SolverOptions(
            lambda_tolerance=-1.0,
            drift_tolerance_factor=-1.0,
            time_cutoff=None,
            max_sweeps=sweeps,
        )
        fresh = ClassParameters.prior(classes.n_classes, data.shape[1])
        got, _, report = solve_maxent(
            data, constraints, options=forced, params=fresh, classes=classes
        )
        assert report.sweeps == sweeps
        want = reference_optim_sweeps(data, constraints, classes, sweeps)
        np.testing.assert_allclose(got.sigma, want.sigma, atol=1e-8)
        np.testing.assert_allclose(got.mean, want.mean, atol=1e-8)

    def test_report_elapsed_is_init_plus_optim(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((50, 3))
        rows = np.arange(20)
        w = np.array([1.0, 0.0, 0.0])
        constraints = [
            Constraint(ConstraintKind.LINEAR, rows, w),
            Constraint(ConstraintKind.QUADRATIC, rows, w),
        ]
        _, _, report = solve_maxent(data, constraints)
        assert report.elapsed == pytest.approx(
            report.init_seconds + report.optim_seconds
        )
        assert report.init_seconds >= 0.0
        assert report.optim_seconds >= 0.0


class TestKernelCache:
    def test_cache_invalidated_by_updates(self):
        params = ClassParameters.prior(2, 3)
        t1 = whitening_transforms(params)
        assert whitening_transforms(params) is t1  # memo hit
        params.apply_quadratic_update(
            np.array([0]), np.array([1.0, 0.0, 0.0]), 0.5, 0.0
        )
        t2 = whitening_transforms(params)
        assert t2 is not t1
        np.testing.assert_allclose(
            t2, reference_whitening_transforms(params), atol=_TOL
        )

    def test_direct_mutation_with_bump_is_seen(self):
        params = ClassParameters.prior(1, 2)
        _ = whitening_transforms(params)
        params.sigma[0] = np.diag([4.0, 1.0])
        params.bump_versions(np.array([0]))
        got = whitening_transforms(params)
        np.testing.assert_allclose(
            got, reference_whitening_transforms(params), atol=_TOL
        )

    def test_copy_does_not_share_cache(self):
        params = ClassParameters.prior(1, 2)
        t1 = whitening_transforms(params)
        clone = params.copy()
        assert whitening_transforms(clone) is not t1
