"""Unit tests for row equivalence classes."""


from repro.core.builders import cluster_constraint, margin_constraints
from repro.core.equivalence import build_equivalence_classes


class TestBuildEquivalenceClasses:
    def test_no_constraints_single_class(self):
        classes = build_equivalence_classes(10, [])
        assert classes.n_classes == 1
        assert classes.class_counts[0] == 10

    def test_margin_constraints_single_class(self, gaussian_data):
        constraints = margin_constraints(gaussian_data)
        classes = build_equivalence_classes(gaussian_data.shape[0], constraints)
        # Margins touch every row identically -> one class.
        assert classes.n_classes == 1

    def test_disjoint_clusters_three_classes(self, rng):
        data = rng.standard_normal((30, 3))
        constraints = cluster_constraint(data, range(0, 10)) + cluster_constraint(
            data, range(10, 20)
        )
        classes = build_equivalence_classes(30, constraints)
        # Cluster 1, cluster 2, untouched remainder.
        assert classes.n_classes == 3
        assert sorted(classes.class_counts.tolist()) == [10, 10, 10]

    def test_overlapping_clusters_refine(self, rng):
        data = rng.standard_normal((30, 3))
        constraints = cluster_constraint(data, range(0, 20)) + cluster_constraint(
            data, range(10, 30)
        )
        classes = build_equivalence_classes(30, constraints)
        # {0-9}, {10-19} (both), {20-29} -> 3 classes, no untouched rows.
        assert classes.n_classes == 3
        assert sorted(classes.class_counts.tolist()) == [10, 10, 10]

    def test_members_fully_cover_constraints(self, rng):
        data = rng.standard_normal((30, 3))
        constraints = cluster_constraint(data, range(0, 20)) + cluster_constraint(
            data, range(10, 30)
        )
        classes = build_equivalence_classes(30, constraints)
        for t in range(len(constraints)):
            assert classes.count_in_constraint(t) == constraints[t].n_rows

    def test_class_of_row_consistent_with_members(self, rng):
        data = rng.standard_normal((20, 2))
        constraints = cluster_constraint(data, range(0, 5))
        classes = build_equivalence_classes(20, constraints)
        member_classes = set(classes.members[0].tolist())
        for row in range(5):
            assert int(classes.class_of_row[row]) in member_classes
        for row in range(5, 20):
            assert int(classes.class_of_row[row]) not in member_classes

    def test_representatives_belong_to_their_class(self, rng):
        data = rng.standard_normal((25, 2))
        constraints = cluster_constraint(data, range(0, 7)) + cluster_constraint(
            data, range(7, 25)
        )
        classes = build_equivalence_classes(25, constraints)
        for c, rep in enumerate(classes.representative_rows):
            assert int(classes.class_of_row[rep]) == c

    def test_number_of_classes_independent_of_n(self, rng):
        # Same constraint topology on 10x the rows -> same class count.
        small = build_equivalence_classes(
            100, cluster_constraint(rng.standard_normal((100, 2)), range(0, 50))
        )
        big = build_equivalence_classes(
            1000, cluster_constraint(rng.standard_normal((1000, 2)), range(0, 500))
        )
        assert small.n_classes == big.n_classes == 2
