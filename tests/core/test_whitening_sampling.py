"""Tests for per-row whitening (Eq. 14) and background sampling."""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.core.equivalence import build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.sampling import sample_background
from repro.core.whitening import whiten, whitening_transforms
from repro.errors import DataShapeError


class TestWhiten:
    def test_prior_whitening_is_identity(self, gaussian_data):
        classes = build_equivalence_classes(gaussian_data.shape[0], [])
        params = ClassParameters.prior(1, 4)
        np.testing.assert_allclose(
            whiten(gaussian_data, params, classes), gaussian_data, atol=1e-12
        )

    def test_whitening_standardises_under_true_model(self, rng):
        # Build a known Gaussian model, sample from it, whiten with it:
        # the result must look standard normal.
        n, d = 4000, 3
        mean = np.array([2.0, -1.0, 0.5])
        a = rng.standard_normal((d, d))
        cov = a @ a.T + 0.5 * np.eye(d)
        data = rng.multivariate_normal(mean, cov, size=n)

        classes = build_equivalence_classes(n, [])
        params = ClassParameters.prior(1, d)
        params.sigma[0] = cov
        params.mean[0] = mean
        whitened = whiten(data, params, classes)
        np.testing.assert_allclose(whitened.mean(axis=0), 0.0, atol=0.1)
        sample_cov = np.cov(whitened, rowvar=False)
        np.testing.assert_allclose(sample_cov, np.eye(d), atol=0.1)

    def test_symmetric_square_root_used(self, rng):
        # The transform must be Sigma^{-1/2} (symmetric), not a Cholesky
        # factor: verify T @ Sigma @ T == I and T == T.T.
        d = 4
        a = rng.standard_normal((d, d))
        cov = a @ a.T + np.eye(d)
        params = ClassParameters.prior(1, d)
        params.sigma[0] = cov
        transforms = whitening_transforms(params)
        t = transforms[0]
        np.testing.assert_allclose(t, t.T, atol=1e-10)
        np.testing.assert_allclose(t @ cov @ t, np.eye(d), atol=1e-8)

    def test_shape_mismatch_rejected(self, gaussian_data):
        classes = build_equivalence_classes(gaussian_data.shape[0], [])
        params = ClassParameters.prior(1, 3)  # wrong dim
        with pytest.raises(DataShapeError):
            whiten(gaussian_data, params, classes)

    def test_row_count_mismatch_rejected(self, gaussian_data):
        classes = build_equivalence_classes(7, [])
        params = ClassParameters.prior(1, 4)
        with pytest.raises(DataShapeError):
            whiten(gaussian_data, params, classes)

    def test_singular_covariance_produces_finite_output(self, two_cluster_data):
        # A cluster of 2 points in 3-D pins directions to zero variance;
        # whitening must stay finite thanks to eigenvalue clamping.
        data, _ = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint([0, 1])
        model.fit()
        whitened = model.whiten()
        assert np.all(np.isfinite(whitened))


class TestSampleBackground:
    def test_shape(self, gaussian_data):
        classes = build_equivalence_classes(gaussian_data.shape[0], [])
        params = ClassParameters.prior(1, 4)
        sample = sample_background(params, classes, rng=np.random.default_rng(0))
        assert sample.shape == gaussian_data.shape

    def test_prior_sample_is_standard_normal(self):
        classes = build_equivalence_classes(20000, [])
        params = ClassParameters.prior(1, 2)
        sample = sample_background(params, classes, rng=np.random.default_rng(1))
        np.testing.assert_allclose(sample.mean(axis=0), 0.0, atol=0.05)
        np.testing.assert_allclose(sample.std(axis=0), 1.0, atol=0.05)

    def test_sample_respects_class_parameters(self):
        classes = build_equivalence_classes(10000, [])
        params = ClassParameters.prior(1, 2)
        params.mean[0] = np.array([5.0, -3.0])
        params.sigma[0] = np.diag([4.0, 0.25])
        sample = sample_background(params, classes, rng=np.random.default_rng(2))
        np.testing.assert_allclose(sample.mean(axis=0), [5.0, -3.0], atol=0.1)
        np.testing.assert_allclose(sample.std(axis=0), [2.0, 0.5], atol=0.1)

    def test_singular_covariance_sample_in_subspace(self):
        classes = build_equivalence_classes(1000, [])
        params = ClassParameters.prior(1, 2)
        params.sigma[0] = np.diag([1.0, 0.0])
        sample = sample_background(params, classes, rng=np.random.default_rng(3))
        # Second coordinate must be exactly pinned to the mean (0).
        np.testing.assert_allclose(sample[:, 1], 0.0, atol=1e-10)

    def test_deterministic_with_seed(self, gaussian_data):
        classes = build_equivalence_classes(gaussian_data.shape[0], [])
        params = ClassParameters.prior(1, 4)
        s1 = sample_background(params, classes, rng=np.random.default_rng(42))
        s2 = sample_background(params, classes, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(s1, s2)
