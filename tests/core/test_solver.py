"""Unit and behaviour tests for the MaxEnt coordinate-ascent solver."""

import numpy as np
import pytest

from repro.core.builders import (
    cluster_constraint,
    margin_constraints,
    one_cluster_constraint,
)
from repro.core.constraint import Constraint, ConstraintKind
from repro.core.solver import SolverOptions, solve_maxent
from repro.datasets.paper import (
    adversarial_constraints_case_a,
    adversarial_constraints_case_b,
    adversarial_three_points,
)
from repro.errors import DataShapeError


def _expectations(data, constraints, params, classes):
    """Model expectation of every constraint under fitted parameters."""
    values = []
    for t, c in enumerate(constraints):
        affected = classes.members[t]
        counts = classes.class_counts[affected].astype(float)
        means, variances = params.projected_stats(affected, c.w)
        if c.kind is ConstraintKind.LINEAR:
            values.append(float(np.dot(counts, means)))
        else:
            delta = float(c.anchor_mean(data) @ c.w)
            values.append(float(np.dot(counts, variances + (means - delta) ** 2)))
    return np.asarray(values)


class TestSolveMaxentBasics:
    def test_no_constraints_returns_prior(self, gaussian_data):
        params, classes, report = solve_maxent(gaussian_data, [])
        assert report.converged
        assert classes.n_classes == 1
        np.testing.assert_array_equal(params.mean[0], np.zeros(4))
        np.testing.assert_array_equal(params.sigma[0], np.eye(4))

    def test_margin_constraints_match_observed(self, two_cluster_data):
        data, _ = two_cluster_data
        constraints = margin_constraints(data)
        params, classes, report = solve_maxent(data, constraints)
        assert report.converged
        got = _expectations(data, constraints, params, classes)
        want = np.array([c.observed_value(data) for c in constraints])
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-8)

    def test_margin_constraints_set_column_moments(self, two_cluster_data):
        data, _ = two_cluster_data
        constraints = margin_constraints(data)
        params, classes, _ = solve_maxent(data, constraints)
        # Single class; its mean must equal the column means and the
        # diagonal variance the (biased, anchored) column variances.
        np.testing.assert_allclose(params.mean[0], data.mean(axis=0), atol=1e-6)

    def test_cluster_constraints_match_observed(self, two_cluster_data):
        data, labels = two_cluster_data
        constraints = cluster_constraint(
            data, np.flatnonzero(labels == 0)
        ) + cluster_constraint(data, np.flatnonzero(labels == 1))
        params, classes, report = solve_maxent(data, constraints)
        assert report.converged
        got = _expectations(data, constraints, params, classes)
        want = np.array([c.observed_value(data) for c in constraints])
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-8)

    def test_cluster_means_move_to_cluster_centres(self, two_cluster_data):
        data, labels = two_cluster_data
        rows0 = np.flatnonzero(labels == 0)
        constraints = cluster_constraint(data, rows0)
        params, classes, _ = solve_maxent(data, constraints)
        cls0 = int(classes.class_of_row[rows0[0]])
        np.testing.assert_allclose(
            params.mean[cls0], data[rows0].mean(axis=0), atol=1e-6
        )

    def test_unconstrained_rows_keep_prior(self, two_cluster_data):
        data, labels = two_cluster_data
        rows0 = np.flatnonzero(labels == 0)
        constraints = cluster_constraint(data, rows0)
        params, classes, _ = solve_maxent(data, constraints)
        free_row = int(np.flatnonzero(labels == 1)[0])
        cls = int(classes.class_of_row[free_row])
        np.testing.assert_array_equal(params.mean[cls], np.zeros(3))
        np.testing.assert_array_equal(params.sigma[cls], np.eye(3))

    def test_one_cluster_constraint_reproduces_covariance(self, rng):
        data = rng.standard_normal((400, 3)) @ np.diag([3.0, 1.0, 0.3])
        constraints = one_cluster_constraint(data)
        params, classes, _ = solve_maxent(data, constraints)
        # The anchored covariance of the model must match the data's
        # (biased) covariance around the observed mean.
        centred = data - data.mean(axis=0)
        sample_cov = (centred.T @ centred) / data.shape[0]
        model_cov = params.sigma[0] + np.outer(
            params.mean[0] - data.mean(axis=0), params.mean[0] - data.mean(axis=0)
        )
        np.testing.assert_allclose(model_cov, sample_cov, rtol=1e-5, atol=1e-7)


class TestSolverValidation:
    def test_dimension_mismatch_rejected(self, gaussian_data):
        bad = Constraint(
            ConstraintKind.LINEAR, np.array([0]), np.ones(7)
        )
        with pytest.raises(DataShapeError):
            solve_maxent(gaussian_data, [bad])

    def test_row_out_of_range_rejected(self, gaussian_data):
        bad = Constraint(
            ConstraintKind.LINEAR, np.array([10**6]), np.ones(4)
        )
        with pytest.raises(DataShapeError):
            solve_maxent(gaussian_data, [bad])

    def test_1d_data_rejected(self):
        with pytest.raises(DataShapeError):
            solve_maxent(np.ones(5), [])


class TestSolverControls:
    def test_max_sweeps_respected(self):
        bundle = adversarial_three_points()
        constraints = adversarial_constraints_case_b(bundle.data)
        options = SolverOptions(
            lambda_tolerance=0.0,
            drift_tolerance_factor=0.0,
            time_cutoff=None,
            max_sweeps=7,
        )
        _, _, report = solve_maxent(bundle.data, constraints, options=options)
        assert report.sweeps == 7
        assert not report.converged

    def test_time_cutoff_stops_early(self):
        bundle = adversarial_three_points()
        constraints = adversarial_constraints_case_b(bundle.data)
        options = SolverOptions(
            lambda_tolerance=0.0,
            drift_tolerance_factor=0.0,
            time_cutoff=0.05,
            max_sweeps=10**6,
        )
        _, _, report = solve_maxent(bundle.data, constraints, options=options)
        assert not report.converged
        assert report.elapsed < 5.0

    def test_on_step_callback_called_per_constraint(self, two_cluster_data):
        data, labels = two_cluster_data
        constraints = cluster_constraint(data, np.flatnonzero(labels == 0))
        calls = []
        solve_maxent(
            data,
            constraints,
            on_step=lambda sweep, t, lam, params: calls.append((sweep, t)),
        )
        # Every sweep must touch every constraint once, in order.
        per_sweep = len(constraints)
        assert len(calls) % per_sweep == 0
        assert [t for _, t in calls[:per_sweep]] == list(range(per_sweep))

    def test_init_and_optim_seconds_reported(self, two_cluster_data):
        data, labels = two_cluster_data
        constraints = cluster_constraint(data, np.flatnonzero(labels == 0))
        _, _, report = solve_maxent(data, constraints)
        assert report.init_seconds >= 0.0
        assert report.optim_seconds >= 0.0


class TestAdversarialCases:
    def test_case_a_reaches_analytic_optimum(self):
        bundle = adversarial_three_points()
        constraints = adversarial_constraints_case_a(bundle.data)
        params, classes, report = solve_maxent(
            bundle.data,
            constraints,
            options=SolverOptions(time_cutoff=None, lambda_tolerance=1e-6),
        )
        cls = int(classes.class_of_row[0])
        # Analytic solution (paper Eq. 12): m = (1/2, 0), Sigma = diag(1/4, 0).
        # The zero-variance entry is a singular limit point that coordinate
        # ascent only approaches (each sweep shrinks it geometrically), so
        # it gets a looser tolerance than the regular entries.
        np.testing.assert_allclose(params.mean[cls], [0.5, 0.0], atol=1e-3)
        assert params.sigma[cls][0, 0] == pytest.approx(0.25, abs=1e-4)
        assert params.sigma[cls][1, 1] == pytest.approx(0.0, abs=5e-3)

    def test_case_a_row2_keeps_prior(self):
        bundle = adversarial_three_points()
        constraints = adversarial_constraints_case_a(bundle.data)
        params, classes, _ = solve_maxent(bundle.data, constraints)
        cls = int(classes.class_of_row[1])  # row 2 (0-based 1) unconstrained
        np.testing.assert_array_equal(params.sigma[cls], np.eye(2))

    def test_case_b_variance_decays_like_inverse_steps(self):
        bundle = adversarial_three_points()
        constraints = adversarial_constraints_case_b(bundle.data)
        trace = []
        options = SolverOptions(
            lambda_tolerance=0.0,
            drift_tolerance_factor=0.0,
            time_cutoff=None,
            max_sweeps=300,
        )
        solve_maxent(
            bundle.data,
            constraints,
            options=options,
            on_step=lambda s, t, lam, p: trace.append(float(p.sigma[0, 0, 0])),
        )
        trace_arr = np.asarray(trace)
        # Tail decay exponent of (Sigma_1)_11 vs step count ~ -1 (Fig. 5b).
        tail = trace_arr[len(trace_arr) // 2 :]
        taus = np.arange(1, trace_arr.size + 1)[len(trace_arr) // 2 :]
        slope = np.polyfit(np.log(taus), np.log(np.maximum(tail, 1e-300)), 1)[0]
        assert slope == pytest.approx(-1.0, abs=0.25)
