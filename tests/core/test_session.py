"""Tests for the ExplorationSession interaction loop."""

import numpy as np
import pytest

from repro.core.session import ExplorationSession
from repro.datasets.paper import three_d_clusters


class TestSessionLoop:
    def test_initial_view_available(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data, objective="pca")
        view = session.current_view()
        assert view.axes.shape == (2, 3)
        assert len(session.history) == 1

    def test_view_cached_until_feedback(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data)
        v1 = session.current_view()
        v2 = session.current_view()
        assert v1 is v2
        assert len(session.history) == 1

    def test_feedback_invalidates_view(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data)
        v1 = session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0))
        v2 = session.current_view()
        assert v1 is not v2
        assert len(session.history) == 2

    def test_score_decreases_after_marking_all_clusters(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data)
        before = float(np.max(np.abs(session.current_view().scores)))
        session.mark_cluster(np.flatnonzero(labels == 0))
        session.mark_cluster(np.flatnonzero(labels == 1))
        after = float(np.max(np.abs(session.current_view().scores)))
        assert after < 0.2 * before

    def test_is_explained_after_full_feedback(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data)
        assert not session.is_explained()
        session.mark_cluster(np.flatnonzero(labels == 0))
        session.mark_cluster(np.flatnonzero(labels == 1))
        assert session.is_explained(score_threshold=0.05)

    def test_history_records_feedback_labels(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="left-blob")
        assert "left-blob" in session.history[0].constraints_added

    def test_run_steps_returns_one_view_per_marking(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data)
        views = session.run_steps(
            [np.flatnonzero(labels == 0), np.flatnonzero(labels == 1)]
        )
        assert len(views) == 2
        assert len(session.history) == 3

    def test_mark_view_selection_adds_four_constraints(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data)
        session.current_view()
        session.mark_view_selection(np.flatnonzero(labels == 0))
        assert session.model.n_constraints == 4

    def test_assume_margins_and_covariance(self, gaussian_data):
        session = ExplorationSession(gaussian_data)
        session.assume_margins()
        session.assume_overall_covariance()
        assert session.model.n_constraints == 4 * gaussian_data.shape[1]
        # Both constraint families must fit without issue.
        view = session.current_view()
        assert np.all(np.isfinite(view.axes))

    def test_background_sample_shape(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data)
        assert session.background_sample().shape == data.shape

    def test_whitened_shape(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data)
        assert session.whitened().shape == data.shape

    def test_invalid_objective_rejected(self, gaussian_data):
        with pytest.raises(ValueError):
            ExplorationSession(gaussian_data, objective="umap")

    def test_reproducible_with_seed(self):
        bundle = three_d_clusters(seed=3)
        s1 = ExplorationSession(bundle.data, objective="ica", seed=11)
        s2 = ExplorationSession(bundle.data, objective="ica", seed=11)
        np.testing.assert_array_equal(
            s1.current_view().axes, s2.current_view().axes
        )


class TestViewRelativeFeedbackResolution:
    def test_view_feedback_uses_the_shown_view_axes(self, two_cluster_data):
        """A 2-D constraint binds to the view the user was looking at —
        including an objective-override view — not a recomputed default."""
        import numpy as np

        from repro.core.session import ExplorationSession
        from repro.feedback import ViewSelectionFeedback

        data, _ = two_cluster_data
        session = ExplorationSession(data, objective="pca", seed=0)
        shown = session.current_view("axis")  # override, as over the API
        session.apply(ViewSelectionFeedback(rows=range(20), label="seen"))
        new_constraints = session.model.constraints[-4:]
        ws = {tuple(np.round(c.w, 12)) for c in new_constraints}
        assert ws <= {tuple(np.round(axis, 12)) for axis in shown.axes}

    def test_view_feedback_without_a_view_falls_back_to_default(
        self, two_cluster_data
    ):
        from repro.core.session import ExplorationSession
        from repro.feedback import ViewSelectionFeedback

        data, _ = two_cluster_data
        session = ExplorationSession(data, objective="pca", seed=0)
        session.apply(ViewSelectionFeedback(rows=range(20)))
        assert session.model.n_constraints > 0
