"""Direct unit tests for the coordinate-step update rules."""

import numpy as np
import pytest

from repro.core.constraint import Constraint, ConstraintKind
from repro.core.equivalence import build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.updates import linear_step, quadratic_step


def _setup(data, constraint):
    classes = build_equivalence_classes(data.shape[0], [constraint])
    params = ClassParameters.prior(classes.n_classes, data.shape[1])
    return params, classes


def _linear_expectation(constraint, params, classes, t=0):
    affected = classes.members[t]
    counts = classes.class_counts[affected].astype(float)
    means, _ = params.projected_stats(affected, constraint.w)
    return float(np.dot(counts, means))


def _quadratic_expectation(constraint, delta, params, classes, t=0):
    affected = classes.members[t]
    counts = classes.class_counts[affected].astype(float)
    means, variances = params.projected_stats(affected, constraint.w)
    return float(np.dot(counts, variances + (means - delta) ** 2))


class TestLinearStep:
    def test_single_step_exact(self, rng):
        data = rng.standard_normal((20, 3)) + 2.0
        c = Constraint(
            ConstraintKind.LINEAR, np.arange(10), np.array([1.0, 0.0, 0.0])
        )
        params, classes = _setup(data, c)
        target = c.observed_value(data)
        lam = linear_step(c, target, params, classes, t=0)
        assert lam != 0.0
        got = _linear_expectation(c, params, classes)
        assert got == pytest.approx(target, rel=1e-12)

    def test_satisfied_constraint_zero_step(self, rng):
        data = rng.standard_normal((10, 2))
        c = Constraint(ConstraintKind.LINEAR, np.arange(10), np.array([1.0, 0.0]))
        params, classes = _setup(data, c)
        current = _linear_expectation(c, params, classes)
        lam = linear_step(c, current, params, classes, t=0)
        assert lam == 0.0

    def test_zero_variance_direction_skipped(self, rng):
        data = rng.standard_normal((6, 2))
        c = Constraint(ConstraintKind.LINEAR, np.arange(6), np.array([0.0, 1.0]))
        params, classes = _setup(data, c)
        params.sigma[:] = 0.0  # degenerate: nothing can move the mean
        lam = linear_step(c, 100.0, params, classes, t=0)
        assert lam == 0.0

    def test_mean_moves_along_w_only(self, rng):
        data = rng.standard_normal((8, 3))
        w = np.array([0.0, 1.0, 0.0])
        c = Constraint(ConstraintKind.LINEAR, np.arange(8), w)
        params, classes = _setup(data, c)
        linear_step(c, 16.0, params, classes, t=0)
        cls = int(classes.class_of_row[0])
        # Orthogonal coordinates of the mean stay zero (prior Sigma = I).
        assert params.mean[cls][0] == pytest.approx(0.0)
        assert params.mean[cls][2] == pytest.approx(0.0)
        assert params.mean[cls][1] == pytest.approx(2.0)  # 16 / 8 rows


class TestQuadraticStep:
    def test_single_step_exact(self, rng):
        data = 3.0 * rng.standard_normal((30, 2))
        w = np.array([1.0, 0.0])
        c = Constraint(ConstraintKind.QUADRATIC, np.arange(30), w)
        params, classes = _setup(data, c)
        target = c.observed_value(data)
        delta = float(c.anchor_mean(data) @ w)
        lam = quadratic_step(c, target, delta, params, classes, t=0)
        assert lam != 0.0
        got = _quadratic_expectation(c, delta, params, classes)
        assert got == pytest.approx(target, rel=1e-9)

    def test_inflating_variance_uses_negative_lambda(self, rng):
        # Target variance above the prior's requires lambda < 0.
        data = 5.0 * rng.standard_normal((50, 1))
        c = Constraint(ConstraintKind.QUADRATIC, np.arange(50), np.array([1.0]))
        params, classes = _setup(data, c)
        target = c.observed_value(data)  # >> 50 * 1
        delta = float(c.anchor_mean(data)[0])
        lam = quadratic_step(c, target, delta, params, classes, t=0)
        assert lam < 0.0
        cls = int(classes.class_of_row[0])
        assert params.sigma[cls][0, 0] > 1.0

    def test_singular_target_takes_bounded_step(self):
        # Two identical points: observed quadratic value 0 along w — the
        # singular Fig. 5 situation.  One step must shrink variance but
        # stay finite.
        data = np.ones((2, 2))
        c = Constraint(ConstraintKind.QUADRATIC, np.arange(2), np.array([1.0, 0.0]))
        params, classes = _setup(data, c)
        lam = quadratic_step(c, 0.0, 1.0, params, classes, t=0)
        assert lam > 0.0
        cls = int(classes.class_of_row[0])
        var = params.sigma[cls][0, 0]
        assert 0.0 < var < 1.0
        assert np.isfinite(var)

    def test_all_zero_variance_skipped(self, rng):
        data = rng.standard_normal((4, 2))
        c = Constraint(ConstraintKind.QUADRATIC, np.arange(4), np.array([1.0, 0.0]))
        params, classes = _setup(data, c)
        params.sigma[:] = 0.0
        lam = quadratic_step(c, 5.0, 0.0, params, classes, t=0)
        assert lam == 0.0

    def test_orthogonal_variance_untouched(self, rng):
        data = rng.standard_normal((20, 2)) * np.array([4.0, 1.0])
        w = np.array([1.0, 0.0])
        c = Constraint(ConstraintKind.QUADRATIC, np.arange(20), w)
        params, classes = _setup(data, c)
        target = c.observed_value(data)
        delta = float(c.anchor_mean(data) @ w)
        quadratic_step(c, target, delta, params, classes, t=0)
        cls = int(classes.class_of_row[0])
        assert params.sigma[cls][1, 1] == pytest.approx(1.0)
        assert params.sigma[cls][0, 1] == pytest.approx(0.0)
