"""Unit tests for the constraint primitives."""

import numpy as np
import pytest

from repro.core.constraint import Constraint, ConstraintKind
from repro.errors import ConstraintError


def _lin(rows, w, **kw):
    return Constraint(ConstraintKind.LINEAR, np.asarray(rows), np.asarray(w, float), **kw)


def _quad(rows, w, **kw):
    return Constraint(
        ConstraintKind.QUADRATIC, np.asarray(rows), np.asarray(w, float), **kw
    )


class TestConstraintValidation:
    def test_rows_sorted_on_construction(self):
        c = _lin([3, 1, 2], [1.0, 0.0])
        np.testing.assert_array_equal(c.rows, [1, 2, 3])

    def test_empty_rows_rejected(self):
        with pytest.raises(ConstraintError):
            _lin([], [1.0])

    def test_duplicate_rows_rejected(self):
        with pytest.raises(ConstraintError):
            _lin([1, 1, 2], [1.0])

    def test_negative_rows_rejected(self):
        with pytest.raises(ConstraintError):
            _lin([-1, 0], [1.0])

    def test_zero_vector_rejected(self):
        with pytest.raises(ConstraintError):
            _lin([0], [0.0, 0.0])

    def test_nan_vector_rejected(self):
        with pytest.raises(ConstraintError):
            _lin([0], [np.nan, 1.0])

    def test_2d_vector_rejected(self):
        with pytest.raises(ConstraintError):
            _lin([0], np.ones((2, 2)))

    def test_properties(self):
        c = _quad([0, 5], [0.0, 1.0, 0.0])
        assert c.dim == 3
        assert c.n_rows == 2
        assert "quad" in c.describe()

    def test_label_in_describe(self):
        c = _lin([0], [1.0], label="margin[0]/lin")
        assert "margin[0]/lin" in c.describe()


class TestObservedValue:
    def test_linear_sums_projections(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        c = _lin([0, 2], [1.0, 0.0])
        assert c.observed_value(data) == pytest.approx(1.0 + 5.0)

    def test_linear_with_general_direction(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        c = _lin([0, 1], [0.5, 0.5])
        assert c.observed_value(data) == pytest.approx(0.5 * (1 + 2 + 3 + 4))

    def test_quadratic_is_centred_sum_of_squares(self):
        data = np.array([[0.0], [2.0], [4.0]])
        c = _quad([0, 1, 2], [1.0])
        # mean 2; squared deviations 4 + 0 + 4.
        assert c.observed_value(data) == pytest.approx(8.0)

    def test_quadratic_single_row_is_zero(self):
        data = np.array([[7.0, 1.0]])
        c = _quad([0], [1.0, 0.0])
        assert c.observed_value(data) == pytest.approx(0.0)

    def test_anchor_mean(self):
        data = np.array([[0.0, 0.0], [2.0, 4.0]])
        c = _quad([0, 1], [1.0, 0.0])
        np.testing.assert_allclose(c.anchor_mean(data), [1.0, 2.0])

    def test_quadratic_invariant_to_row_order(self):
        data = np.array([[0.0], [1.0], [5.0]])
        c1 = _quad([0, 2], [1.0])
        c2 = _quad([2, 0], [1.0])
        assert c1.observed_value(data) == c2.observed_value(data)
