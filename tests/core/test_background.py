"""Tests for the BackgroundModel facade."""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.errors import DataShapeError, NotFittedError


class TestConstruction:
    def test_rejects_empty_data(self):
        with pytest.raises(DataShapeError):
            BackgroundModel(np.empty((0, 3)))

    def test_rejects_nan_data(self):
        data = np.ones((5, 2))
        data[0, 0] = np.nan
        with pytest.raises(DataShapeError):
            BackgroundModel(data)

    def test_defensive_copy(self, gaussian_data):
        model = BackgroundModel(gaussian_data)
        gaussian_data[0, 0] = 999.0
        assert model.data[0, 0] != 999.0

    def test_standardize_centres_and_scales(self, rng):
        data = rng.standard_normal((300, 3)) * np.array([10.0, 1.0, 0.1]) + 5.0
        model = BackgroundModel(data, standardize=True)
        np.testing.assert_allclose(model.data.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(model.data.std(axis=0), 1.0, atol=1e-10)

    def test_standardize_constant_column_safe(self, rng):
        data = rng.standard_normal((50, 2))
        data[:, 1] = 7.0
        model = BackgroundModel(data, standardize=True)
        assert np.all(np.isfinite(model.data))


class TestFitLifecycle:
    def test_not_fitted_raises(self, gaussian_data):
        model = BackgroundModel(gaussian_data)
        with pytest.raises(NotFittedError):
            model.whiten()

    def test_dirty_after_new_constraint(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.fit()
        assert model.is_fitted
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        assert not model.is_fitted
        with pytest.raises(NotFittedError):
            model.whiten()

    def test_fit_clears_dirty(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.fit()
        assert model.is_fitted
        assert model.last_report is not None

    def test_constraint_dimension_checked_at_registration(self, gaussian_data):
        from repro.core.constraint import Constraint, ConstraintKind

        model = BackgroundModel(gaussian_data)
        bad = Constraint(ConstraintKind.LINEAR, np.array([0]), np.ones(9))
        with pytest.raises(DataShapeError):
            model.add_constraints([bad])

    def test_constraint_rows_checked_at_registration(self, gaussian_data):
        from repro.core.constraint import Constraint, ConstraintKind

        model = BackgroundModel(gaussian_data)
        bad = Constraint(ConstraintKind.LINEAR, np.array([10**6]), np.ones(4))
        with pytest.raises(DataShapeError):
            model.add_constraints([bad])


class TestDerivedQuantities:
    def test_whitening_identity_without_constraints(self, gaussian_data):
        model = BackgroundModel(gaussian_data)
        model.fit()
        np.testing.assert_allclose(model.whiten(), model.data, atol=1e-10)

    def test_expectations_match_targets_after_fit(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.add_cluster_constraint(np.flatnonzero(labels == 1))
        model.fit()
        np.testing.assert_allclose(
            model.constraint_expectations(),
            model.constraint_targets(),
            rtol=1e-6,
            atol=1e-8,
        )

    def test_whitened_cluster_data_is_standard(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.add_cluster_constraint(np.flatnonzero(labels == 1))
        model.fit()
        whitened = model.whiten()
        np.testing.assert_allclose(whitened.mean(axis=0), 0.0, atol=0.05)
        np.testing.assert_allclose(whitened.var(axis=0), 1.0, atol=0.1)

    def test_sample_matches_model_moments(self, two_cluster_data):
        data, labels = two_cluster_data
        rows0 = np.flatnonzero(labels == 0)
        model = BackgroundModel(data)
        model.add_cluster_constraint(rows0)
        model.fit()
        rng = np.random.default_rng(7)
        samples = np.stack([model.sample(rng=rng) for _ in range(200)])
        sample_mean = samples[:, rows0, :].mean(axis=(0, 1))
        np.testing.assert_allclose(sample_mean, data[rows0].mean(axis=0), atol=0.05)

    def test_row_accessors(self, two_cluster_data):
        data, labels = two_cluster_data
        rows0 = np.flatnonzero(labels == 0)
        model = BackgroundModel(data)
        model.add_cluster_constraint(rows0)
        model.fit()
        i = int(rows0[0])
        np.testing.assert_allclose(model.row_mean(i), data[rows0].mean(axis=0), atol=1e-6)
        assert model.row_covariance(i).shape == (3, 3)
        means = model.means()
        assert means.shape == data.shape
        np.testing.assert_allclose(means[i], model.row_mean(i))

    def test_equivalence_summary(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.fit()
        summary = model.equivalence_summary()
        assert summary["n_rows"] == 100
        assert summary["n_classes"] == 2
