"""Tests for the undo facility (model, session and app levels)."""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.core.session import ExplorationSession
from repro.errors import DataShapeError
from repro.ui.app import SiderApp


class TestModelRemoveLast:
    def test_removes_and_returns(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0), label="a")
        n_group = model.n_constraints
        model.add_cluster_constraint(np.flatnonzero(labels == 1), label="b")
        removed = model.remove_last_constraints(n_group)
        assert len(removed) == n_group
        assert all(c.label.startswith("b") for c in removed)
        assert model.n_constraints == n_group

    def test_marks_dirty(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.fit()
        model.remove_last_constraints(1)
        assert not model.is_fitted

    def test_zero_is_noop(self, gaussian_data):
        model = BackgroundModel(gaussian_data)
        model.fit()
        assert model.remove_last_constraints(0) == []
        assert model.is_fitted  # untouched

    def test_too_many_rejected(self, gaussian_data):
        model = BackgroundModel(gaussian_data)
        with pytest.raises(DataShapeError):
            model.remove_last_constraints(1)

    def test_negative_rejected(self, gaussian_data):
        model = BackgroundModel(gaussian_data)
        with pytest.raises(DataShapeError):
            model.remove_last_constraints(-1)


class TestSessionUndo:
    def test_undo_restores_previous_belief_state(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="keep")
        view_after_first = session.current_view()
        scores_after_first = np.abs(view_after_first.scores).copy()

        session.mark_cluster(np.flatnonzero(labels == 1), label="oops")
        session.current_view()
        undone = session.undo_last_feedback()
        assert undone == "oops"
        restored = session.current_view()
        np.testing.assert_allclose(
            np.abs(restored.scores), scores_after_first, atol=1e-8
        )

    def test_undo_empty_returns_none(self, gaussian_data):
        session = ExplorationSession(gaussian_data, seed=0)
        assert session.undo_last_feedback() is None

    def test_undo_all_feedback_returns_to_prior(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0))
        session.mark_cluster(np.flatnonzero(labels == 1))
        session.undo_last_feedback()
        session.undo_last_feedback()
        session.current_view()
        assert session.model.n_constraints == 0
        assert session.model.knowledge_nats() == pytest.approx(0.0, abs=1e-9)

    def test_undo_mixed_action_kinds(self, gaussian_data):
        session = ExplorationSession(gaussian_data, seed=0)
        session.assume_margins()
        n_margins = session.model.n_constraints
        session.current_view()
        session.mark_view_selection([0, 1, 2], label="sel")
        assert session.model.n_constraints == n_margins + 4
        assert session.undo_last_feedback() == "sel"
        assert session.model.n_constraints == n_margins
        assert session.undo_last_feedback() == "margins"
        assert session.model.n_constraints == 0

    def test_history_labels_cleaned(self, two_cluster_data):
        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="mistake")
        session.undo_last_feedback()
        assert all(
            "mistake" not in record.constraints_added
            for record in session.history
        )


class TestAppUndo:
    def test_undo_button_flow(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        frame0 = app.render()
        score0 = float(np.max(np.abs(frame0.view.scores)))

        app.select_rows(np.flatnonzero(labels == 0))
        app.add_cluster_constraint(label="blob")
        app.update_background()
        assert app.undo() == "blob"
        app.update_background()
        frame_back = app.render()
        assert float(np.max(np.abs(frame_back.view.scores))) == pytest.approx(
            score0, abs=1e-8
        )
        assert "undo 'blob'" in app.state.action_log

    def test_undo_nothing(self, gaussian_data):
        app = SiderApp(gaussian_data, seed=0)
        assert app.undo() is None
