"""Unit tests for the constraint builders."""

import numpy as np
import pytest

from repro.core.builders import (
    cluster_constraint,
    margin_constraints,
    one_cluster_constraint,
    projection_constraints,
)
from repro.core.constraint import ConstraintKind
from repro.errors import ConstraintError, DataShapeError


class TestMarginConstraints:
    def test_count_is_2d(self, gaussian_data):
        constraints = margin_constraints(gaussian_data)
        assert len(constraints) == 2 * gaussian_data.shape[1]

    def test_alternating_kinds(self, gaussian_data):
        constraints = margin_constraints(gaussian_data)
        kinds = [c.kind for c in constraints]
        assert kinds[::2] == [ConstraintKind.LINEAR] * gaussian_data.shape[1]
        assert kinds[1::2] == [ConstraintKind.QUADRATIC] * gaussian_data.shape[1]

    def test_axis_aligned_unit_vectors(self, gaussian_data):
        constraints = margin_constraints(gaussian_data)
        d = gaussian_data.shape[1]
        for j in range(d):
            w = constraints[2 * j].w
            assert w[j] == 1.0
            assert np.count_nonzero(w) == 1

    def test_all_rows_included(self, gaussian_data):
        constraints = margin_constraints(gaussian_data)
        for c in constraints:
            assert c.n_rows == gaussian_data.shape[0]

    def test_rejects_1d_input(self):
        with pytest.raises(DataShapeError):
            margin_constraints(np.ones(5))


class TestClusterConstraint:
    def test_count_is_2d(self, two_cluster_data):
        data, labels = two_cluster_data
        constraints = cluster_constraint(data, np.flatnonzero(labels == 0))
        assert len(constraints) == 2 * data.shape[1]

    def test_axes_are_orthonormal(self, two_cluster_data):
        data, labels = two_cluster_data
        constraints = cluster_constraint(data, np.flatnonzero(labels == 0))
        axes = np.array([c.w for c in constraints[::2]])
        np.testing.assert_allclose(axes @ axes.T, np.eye(data.shape[1]), atol=1e-10)

    def test_full_basis_even_for_tiny_cluster(self, rng):
        data = rng.standard_normal((10, 5))
        constraints = cluster_constraint(data, [0, 1])  # 2 points, 5 dims
        assert len(constraints) == 10
        axes = np.array([c.w for c in constraints[::2]])
        np.testing.assert_allclose(axes @ axes.T, np.eye(5), atol=1e-10)

    def test_labels_carry_prefix(self, two_cluster_data):
        data, labels = two_cluster_data
        constraints = cluster_constraint(
            data, np.flatnonzero(labels == 1), label="my-cluster"
        )
        assert all(c.label.startswith("my-cluster") for c in constraints)

    def test_rows_out_of_range_rejected(self, gaussian_data):
        with pytest.raises(ConstraintError):
            cluster_constraint(gaussian_data, [10**6])

    def test_empty_rows_rejected(self, gaussian_data):
        with pytest.raises(ConstraintError):
            cluster_constraint(gaussian_data, [])


class TestOneClusterConstraint:
    def test_covers_all_rows(self, gaussian_data):
        constraints = one_cluster_constraint(gaussian_data)
        assert all(c.n_rows == gaussian_data.shape[0] for c in constraints)
        assert len(constraints) == 2 * gaussian_data.shape[1]

    def test_axes_align_with_principal_components(self, rng):
        # Strongly anisotropic data: first SVD axis must match the dominant
        # direction.
        base = rng.standard_normal((300, 1)) * np.array([[5.0, 0.0, 0.0]])
        data = base + 0.1 * rng.standard_normal((300, 3))
        constraints = one_cluster_constraint(data)
        top_axis = constraints[0].w
        assert abs(top_axis[0]) > 0.99


class TestProjectionConstraints:
    def test_count_is_four(self, gaussian_data):
        axes = np.zeros((2, 4))
        axes[0, 0] = 1.0
        axes[1, 1] = 1.0
        constraints = projection_constraints(gaussian_data, [0, 1, 2], axes)
        assert len(constraints) == 4

    def test_wrong_axes_shape_rejected(self, gaussian_data):
        with pytest.raises(DataShapeError):
            projection_constraints(gaussian_data, [0], np.ones((3, 4)))

    def test_uses_given_axes(self, gaussian_data):
        axes = np.zeros((2, 4))
        axes[0, 2] = 1.0
        axes[1, 3] = 1.0
        constraints = projection_constraints(gaussian_data, [0, 1], axes)
        np.testing.assert_array_equal(constraints[0].w, axes[0])
        np.testing.assert_array_equal(constraints[2].w, axes[1])
