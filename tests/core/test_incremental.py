"""Tests for warm-start incremental refitting."""

import numpy as np
import pytest

from repro.core.builders import cluster_constraint
from repro.core.incremental import WarmStartState, incremental_solve
from repro.core.solver import SolverOptions, solve_maxent


@pytest.fixture
def three_cluster_data(rng):
    a = rng.normal([0, 0], 0.3, (40, 2))
    b = rng.normal([4, 0], 0.3, (40, 2))
    c = rng.normal([2, 4], 0.3, (40, 2))
    data = np.vstack([a, b, c])
    groups = [range(0, 40), range(40, 80), range(80, 120)]
    return data, groups


def _cumulative_lists(data, groups):
    lists = []
    acc = []
    for g in groups:
        acc = acc + cluster_constraint(data, g)
        lists.append(list(acc))
    return lists


class TestIncrementalSolve:
    def test_cold_start_matches_plain_solver(self, three_cluster_data):
        data, groups = three_cluster_data
        constraints = _cumulative_lists(data, groups)[-1]
        plain_params, _, _ = solve_maxent(data, constraints)
        inc_params, _, _, _ = incremental_solve(data, constraints)
        np.testing.assert_allclose(inc_params.mean, plain_params.mean, atol=1e-8)

    def test_warm_start_reaches_same_optimum(self, three_cluster_data):
        data, groups = three_cluster_data
        lists = _cumulative_lists(data, groups)
        options = SolverOptions(time_cutoff=None, lambda_tolerance=1e-5)

        cold_params, _, _ = solve_maxent(data, lists[-1], options=options)
        state = None
        for constraints in lists:
            warm_params, _, _, state = incremental_solve(
                data, constraints, previous=state, options=options
            )
        np.testing.assert_allclose(warm_params.mean, cold_params.mean, atol=1e-3)
        np.testing.assert_allclose(
            np.einsum("cii->ci", warm_params.sigma),
            np.einsum("cii->ci", cold_params.sigma),
            atol=1e-3,
        )

    def test_warm_start_reuses_converged_state_in_one_sweep(
        self, three_cluster_data
    ):
        data, groups = three_cluster_data
        lists = _cumulative_lists(data, groups)
        options = SolverOptions(time_cutoff=None)
        _, _, _, state = incremental_solve(data, lists[-1], options=options)
        # Re-solving the identical list warm must converge immediately.
        _, _, report, _ = incremental_solve(
            data, lists[-1], previous=state, options=options
        )
        assert report.sweeps <= 2

    def test_non_prefix_falls_back_to_cold(self, three_cluster_data):
        data, groups = three_cluster_data
        lists = _cumulative_lists(data, groups)
        _, _, _, state = incremental_solve(data, lists[0])
        # A *different* (non-prefix) constraint list: silently cold-starts
        # and still reaches the right answer.
        other = cluster_constraint(data, groups[2])
        params, classes, report, _ = incremental_solve(
            data, other, previous=state
        )
        plain_params, _, _ = solve_maxent(data, other)
        np.testing.assert_allclose(params.mean, plain_params.mean, atol=1e-8)

    def test_state_carries_constraint_list(self, three_cluster_data):
        data, groups = three_cluster_data
        constraints = cluster_constraint(data, groups[0])
        _, _, _, state = incremental_solve(data, constraints)
        assert isinstance(state, WarmStartState)
        assert len(state.constraints) == len(constraints)

    def test_new_classes_seeded_from_parents(self, three_cluster_data):
        data, groups = three_cluster_data
        # Round 1: one big group covering everything.
        big = cluster_constraint(data, range(0, 120))
        _, _, _, state = incremental_solve(
            data, big, options=SolverOptions(time_cutoff=None)
        )
        # Round 2: append a sub-group; its class splits off the big class
        # and must be seeded from it (not the prior).
        extended = big + cluster_constraint(data, groups[0])
        params, classes, report, _ = incremental_solve(
            data, extended, previous=state, options=SolverOptions(time_cutoff=None)
        )
        # Fewer sweeps than a cold start needs.
        _, _, cold_report = solve_maxent(
            data, extended, options=SolverOptions(time_cutoff=None)
        )
        assert report.sweeps <= cold_report.sweeps
