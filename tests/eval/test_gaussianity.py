"""Tests for the whitened-data gaussianity diagnostics."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.eval.gaussianity import dimensions_explained, gaussianity_report
from repro.eval.summaries import score_drop, summarize_columns


class TestGaussianityReport:
    def test_standard_normal_low_deviation(self, rng):
        data = rng.standard_normal((20000, 3))
        report = gaussianity_report(data)
        assert report.aggregate < 0.05
        assert np.all(np.abs(report.excess_kurtosis) < 0.2)

    def test_shifted_mean_detected(self, rng):
        data = rng.standard_normal((5000, 2))
        data[:, 1] += 2.0
        report = gaussianity_report(data)
        assert report.mean_abs[1] > 1.5
        assert report.aggregate > 1.5

    def test_inflated_variance_detected(self, rng):
        data = rng.standard_normal((5000, 2))
        data[:, 0] *= 3.0
        report = gaussianity_report(data)
        assert report.var_deviation[0] > 5.0

    def test_multimodal_negative_kurtosis(self, rng):
        data = rng.standard_normal((5000, 2))
        data[:, 0] += rng.choice([-3.0, 3.0], size=5000)
        report = gaussianity_report(data)
        assert report.excess_kurtosis[0] < -1.0

    def test_heavy_tails_positive_kurtosis(self, rng):
        data = rng.standard_normal((5000, 1))
        data[:, 0] = rng.standard_t(df=3, size=5000)
        report = gaussianity_report(data)
        assert report.excess_kurtosis[0] > 1.0

    def test_too_few_rows_rejected(self):
        with pytest.raises(DataShapeError):
            gaussianity_report(np.ones((2, 3)))


class TestDimensionsExplained:
    def test_standard_normal_all_true(self, rng):
        data = rng.standard_normal((20000, 4))
        assert np.all(dimensions_explained(data))

    def test_structured_dims_flagged(self, rng):
        data = rng.standard_normal((20000, 3))
        data[:, 2] = (
            rng.choice([-1.0, 1.0], size=20000) + 0.2 * rng.standard_normal(20000)
        )
        data[:, 2] /= data[:, 2].std()
        mask = dimensions_explained(data)
        assert mask[0] and mask[1]
        assert not mask[2]


class TestSummaries:
    def test_summarize_columns(self):
        data = np.array([[1.0, 10.0], [3.0, 20.0]])
        summaries = summarize_columns(data, ["p", "q"])
        assert summaries[0].name == "p"
        assert summaries[0].mean == 2.0
        assert summaries[1].maximum == 20.0

    def test_summarize_name_count_checked(self, rng):
        with pytest.raises(DataShapeError):
            summarize_columns(rng.standard_normal((5, 2)), ["only-one"])

    def test_score_drop(self):
        assert score_drop(np.array([1.0, 0.5]), np.array([0.1])) == pytest.approx(0.9)
        assert score_drop(np.array([0.0]), np.array([0.0])) == 0.0
