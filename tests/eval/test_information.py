"""Tests for the information-theoretic diagnostics."""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.core.equivalence import build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.errors import DataShapeError
from repro.eval.information import (
    background_kl_from_prior,
    knowledge_gain,
    row_negative_log_density,
)


class TestBackgroundKl:
    def test_prior_is_zero(self):
        classes = build_equivalence_classes(50, [])
        params = ClassParameters.prior(1, 3)
        assert background_kl_from_prior(params, classes) == pytest.approx(0.0)

    def test_mean_shift_closed_form(self):
        # KL(N(m, I) || N(0, I)) = |m|^2 / 2 per row.
        classes = build_equivalence_classes(10, [])
        params = ClassParameters.prior(1, 2)
        params.mean[0] = np.array([3.0, 4.0])
        got = background_kl_from_prior(params, classes)
        assert got == pytest.approx(10 * 0.5 * 25.0)

    def test_variance_change_closed_form(self):
        # KL(N(0, s I) || N(0, I)) = d/2 (s - log s - 1) per row.
        classes = build_equivalence_classes(4, [])
        params = ClassParameters.prior(1, 3)
        s = 0.2
        params.sigma[0] = s * np.eye(3)
        got = background_kl_from_prior(params, classes)
        want = 4 * 0.5 * 3 * (s - np.log(s) - 1.0)
        assert got == pytest.approx(want)

    def test_singular_covariance_finite(self):
        classes = build_equivalence_classes(2, [])
        params = ClassParameters.prior(1, 2)
        params.sigma[0] = np.diag([1.0, 0.0])
        got = background_kl_from_prior(params, classes)
        assert np.isfinite(got)
        assert got > 5.0  # pinning a direction is a lot of knowledge

    def test_monotone_in_constraints(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.fit()
        k0 = model.knowledge_nats()
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.fit()
        k1 = model.knowledge_nats()
        model.add_cluster_constraint(np.flatnonzero(labels == 1))
        model.fit()
        k2 = model.knowledge_nats()
        assert k0 == pytest.approx(0.0, abs=1e-9)
        assert k0 < k1 < k2


class TestRowSurprise:
    def test_prior_surprise_is_gaussian_loglik(self, rng):
        data = rng.standard_normal((100, 3))
        classes = build_equivalence_classes(100, [])
        params = ClassParameters.prior(1, 3)
        got = row_negative_log_density(data, params, classes)
        want = 0.5 * (
            np.einsum("ij,ij->i", data, data) + 3 * np.log(2 * np.pi)
        )
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_extreme_rows_more_surprising(self, rng):
        data = rng.standard_normal((50, 2))
        data[0] = [8.0, 8.0]
        classes = build_equivalence_classes(50, [])
        params = ClassParameters.prior(1, 2)
        surprise = row_negative_log_density(data, params, classes)
        assert np.argmax(surprise) == 0

    def test_model_facade(self, two_cluster_data):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.fit()
        surprise = model.row_surprise()
        assert surprise.shape == (100,)
        assert np.all(np.isfinite(surprise))

    def test_conforming_rows_less_surprising_after_constraint(
        self, two_cluster_data
    ):
        # Marking cluster 1 should drop its rows' surprise (they were far
        # from the prior) while the untouched cluster-0 rows keep theirs.
        data, labels = two_cluster_data
        rows1 = np.flatnonzero(labels == 1)
        model = BackgroundModel(data)
        model.fit()
        before = model.row_surprise()
        model.add_cluster_constraint(rows1)
        model.fit()
        after = model.row_surprise()
        assert after[rows1].mean() < before[rows1].mean()

    def test_shape_mismatch_rejected(self, rng):
        classes = build_equivalence_classes(10, [])
        params = ClassParameters.prior(1, 3)
        with pytest.raises(DataShapeError):
            row_negative_log_density(rng.standard_normal((10, 4)), params, classes)


class TestKnowledgeGain:
    def test_positive_difference(self):
        assert knowledge_gain(2.0, 5.0) == 3.0

    def test_clamped_at_zero(self):
        assert knowledge_gain(5.0, 4.999) == 0.0
