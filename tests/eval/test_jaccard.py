"""Tests for Jaccard selection-quality metrics."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.eval.jaccard import best_matching_class, jaccard_index, jaccard_to_classes


class TestJaccardIndex:
    def test_identical_sets(self):
        assert jaccard_index([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_index([1, 2], [3, 4]) == 0.0

    def test_partial_overlap(self):
        assert jaccard_index([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_index([], []) == 0.0

    def test_one_empty(self):
        assert jaccard_index([], [1, 2]) == 0.0

    def test_duplicates_ignored(self):
        assert jaccard_index([1, 1, 2], [1, 2, 2]) == 1.0

    def test_symmetric(self):
        a, b = [1, 5, 9], [5, 9, 12, 14]
        assert jaccard_index(a, b) == jaccard_index(b, a)


class TestJaccardToClasses:
    def test_sorted_descending(self):
        labels = np.array(["x"] * 10 + ["y"] * 10)
        table = jaccard_to_classes(range(0, 9), labels)
        values = list(table.values())
        assert values == sorted(values, reverse=True)
        assert list(table)[0] == "x"

    def test_exact_values(self):
        labels = np.array(["a", "a", "b", "b"])
        table = jaccard_to_classes([0, 1], labels)
        assert table["a"] == 1.0
        assert table["b"] == 0.0

    def test_rejects_2d_labels(self):
        with pytest.raises(DataShapeError):
            jaccard_to_classes([0], np.ones((2, 2)))


class TestBestMatchingClass:
    def test_best_class(self):
        labels = np.array([0] * 5 + [1] * 5)
        cls, value = best_matching_class([5, 6, 7, 8, 9], labels)
        assert cls == 1
        assert value == 1.0
