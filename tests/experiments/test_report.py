"""Tests for the shared table formatting helpers."""

from repro.experiments.report import format_floats, format_seconds, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long-header"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows equally wide.
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2
        assert lines[1].startswith("-")

    def test_title_line(self):
        text = format_table(["c"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_values_stringified(self):
        text = format_table(["v"], [[3.14159], [None]])
        assert "3.14159" in text
        assert "None" in text

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatHelpers:
    def test_format_floats_precision(self):
        assert format_floats([1.23456, -0.5], precision=2) == "1.23 -0.50"

    def test_format_seconds_braces(self):
        assert format_seconds([0.04, 1.26]) == "{0.0, 1.3}"
