"""Integration tests: every experiment harness reproduces the paper's shape.

These are the automated versions of the paper-vs-measured checks recorded in
EXPERIMENTS.md.  Each test runs the full harness (sometimes on a reduced
workload for speed) and asserts the qualitative claims of the corresponding
table/figure.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_loop,
    fig2_synthetic3d,
    fig3_x5_structure,
    fig5_convergence,
    fig6_whitening,
    fig8_bnc_iterations,
    fig9_segmentation,
    table1_ica_scores,
    table2_runtime,
)


@pytest.fixture(scope="module")
def fig2_result():
    return fig2_synthetic3d.run(seed=0)


@pytest.fixture(scope="module")
def table1_result():
    return table1_ica_scores.run(seed=0, n=600)


@pytest.fixture(scope="module")
def fig5_result():
    return fig5_convergence.run(max_sweeps_b=200)


@pytest.fixture(scope="module")
def fig6_result():
    return fig6_whitening.run(seed=0, n=800)


@pytest.fixture(scope="module")
def fig8_result():
    return fig8_bnc_iterations.run(seed=0)


@pytest.fixture(scope="module")
def fig9_result():
    return fig9_segmentation.run(seed=0)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_loop.run(seed=0)

    def test_scores_decrease_everywhere(self, result):
        assert result.all_scores_decrease()

    def test_knowledge_grows_everywhere(self, result):
        assert result.all_knowledge_increases()

    def test_knowledge_starts_at_zero(self, result):
        for trace in result.traces:
            assert trace.knowledge[0] == pytest.approx(0.0, abs=1e-9)

    def test_three_datasets_covered(self, result):
        assert len(result.traces) == 3
        assert "Fig. 1" in result.format_table()


class TestFig2:
    def test_first_view_shows_three_blobs(self, fig2_result):
        assert fig2_result.visible_clusters_first == 3

    def test_background_matches_after_constraints(self, fig2_result):
        # Score drops by orders of magnitude once the three visible
        # clusters are constrained.
        assert fig2_result.matched_view.scores[0] < 0.05 * fig2_result.first_view.scores[0]

    def test_ghost_displacement_shrinks(self, fig2_result):
        assert fig2_result.displacement_after < fig2_result.displacement_before

    def test_next_view_loads_on_x3(self, fig2_result):
        assert fig2_result.x3_weight_next > 0.8

    def test_overlapping_pair_resolves(self, fig2_result):
        assert fig2_result.split_separation > 2.0

    def test_format_table_renders(self, fig2_result):
        text = fig2_result.format_table()
        assert "Fig. 2" in text
        assert "3 blobs" in text


class TestFig3:
    def test_structure(self):
        result = fig3_x5_structure.run(seed=0)
        # A overlaps a *different* one of B/C/D in every panel.
        assert set(result.overlap_per_panel.values()) == {"B", "C", "D"}
        assert result.separable_45
        assert result.coupling_measured == pytest.approx(0.75, abs=0.07)
        assert "X̂5" in result.format_table()


class TestTable1:
    def test_top_scores_decay(self, table1_result):
        tops = table1_result.top_abs_scores
        assert tops[0] > tops[1] > tops[2]
        # The final stage must be close to fully explained.
        assert tops[2] < 0.35 * tops[0]

    def test_view_moves_to_dims_45_after_first_round(self, table1_result):
        # Stage 0 looks at dims 1-3; stage 1's top axis loads on dims 4-5.
        assert table1_result.loading_on_dims45[1] > 0.8
        assert table1_result.loading_on_dims45[1] > table1_result.loading_on_dims45[0]

    def test_five_scores_per_row(self, table1_result):
        for row in table1_result.score_rows:
            assert row.size == 5

    def test_format_table_renders(self, table1_result):
        assert "Table I" in table1_result.format_table()


class TestFig5:
    def test_case_a_fast_to_optimum(self, fig5_result):
        # "Convergence occurs after one pass": within the first sweep
        # (4 constraint steps) of reaching the 1/4 optimum.
        assert 0 < fig5_result.steps_to_optimum_a <= 4
        assert fig5_result.final_a == pytest.approx(0.25, abs=1e-3)

    def test_case_b_slow_inverse_decay(self, fig5_result):
        assert fig5_result.decay_exponent_b == pytest.approx(-1.0, abs=0.3)
        assert fig5_result.final_b < 0.01

    def test_case_b_needs_many_more_steps(self, fig5_result):
        assert fig5_result.trace_b.size > 10 * fig5_result.steps_to_optimum_a

    def test_traces_monotone_tail(self, fig5_result):
        tail = fig5_result.trace_b[-50:]
        assert np.all(np.diff(tail) <= 1e-12)


class TestFig6:
    def test_whitening_identity_at_stage_a(self, fig6_result):
        assert fig6_result.identity_max_error < 1e-10

    def test_dims_123_explained_dims_45_not_at_stage_b(self, fig6_result):
        mask = fig6_result.explained_after_stage1
        assert bool(np.all(mask[:3]))
        assert not bool(np.all(mask[3:]))

    def test_all_dims_explained_at_stage_c(self, fig6_result):
        assert bool(np.all(fig6_result.explained_after_stage2))

    def test_kurtosis_decays(self, fig6_result):
        a, b, c = fig6_result.max_abs_kurtosis
        assert a > b > c


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        # A tiny grid keeps this test fast while still checking shape.
        grid = {"n": (256, 1024), "d": (8, 16), "k": (1, 2)}
        original = table2_runtime.DEFAULT_GRID
        table2_runtime.DEFAULT_GRID = grid
        try:
            return table2_runtime.run(full_grid=False, repeats=1, seed=0)
        finally:
            table2_runtime.DEFAULT_GRID = original

    def test_cells_cover_grid(self, result):
        assert len(result.cells) == 4
        assert all(len(c.optim_by_k) == 2 for c in result.cells)

    def test_optim_independent_of_n(self, result):
        # Max/min ratio across n at the largest (d, k): near 1, certainly
        # far from the 4x data-size ratio.
        assert result.optim_n_dependence() < 3.0

    def test_optim_grows_with_k(self, result):
        for cell in result.cells:
            assert cell.optim_by_k[-1] >= cell.optim_by_k[0]

    def test_format_table_renders(self, result):
        text = result.format_table()
        assert "Table II" in text
        assert "OPTIM" in text


class TestFig7And8:
    def test_first_selection_is_conversations(self, fig8_result):
        first = fig8_result.first_round
        assert first.best_class == "transcribed conversations"
        assert first.best_jaccard > 0.8   # paper: 0.928

    def test_second_selection_is_academic_plus_news(self, fig8_result):
        top_two = list(fig8_result.second_jaccards)[:2]
        assert set(top_two) == {"academic prose", "broadsheet newspaper"}
        assert fig8_result.combined_jaccard > 0.8  # combined cluster

    def test_scores_decay_across_rounds(self, fig8_result):
        s0, s1, s2 = fig8_result.top_scores
        assert s0 > s1 > s2
        assert s2 < 0.15 * s0

    def test_pairplot_present_in_first_frame(self, fig8_result):
        assert fig8_result.first_round.frame.pairplot is not None
        assert len(fig8_result.first_round.top_separating_attributes) > 0


class TestFig9:
    def test_initial_scale_mismatch(self, fig9_result):
        assert fig9_result.initial_scale_mismatch > 10.0

    def test_sky_selection_pure(self, fig9_result):
        assert fig9_result.sky_jaccard > 0.9    # paper: 1.0

    def test_grass_selection_pure(self, fig9_result):
        assert fig9_result.grass_jaccard > 0.9  # paper: 0.964

    def test_middle_blob_mixes_five_classes(self, fig9_result):
        values = list(fig9_result.middle_jaccards.values())
        assert len(values) == 5
        for v in values:
            assert 0.1 < v < 0.35               # paper: ~0.2 each

    def test_scores_drop_after_constraints(self, fig9_result):
        assert (
            fig9_result.score_after_constraints
            < fig9_result.score_before_constraints
        )

    def test_final_view_surfaces_outliers(self, fig9_result):
        assert fig9_result.top_extreme_is_outlier
        assert fig9_result.outlier_fraction_in_final_view >= 0.4
