"""Seed robustness: the reproductions hold beyond the default seed.

Every figure/table harness uses seed 0 by default; these tests replay the
core shape claims on other seeds with slightly relaxed thresholds, showing
the results come from the constructions rather than from a lucky draw.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig2_synthetic3d,
    fig3_x5_structure,
    fig5_convergence,
    table1_ica_scores,
)

SEEDS = (1, 7)


class TestFig2AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_storyline(self, seed):
        result = fig2_synthetic3d.run(seed=seed)
        assert result.visible_clusters_first == 3
        assert result.matched_view.scores[0] < 0.2 * result.first_view.scores[0]
        # The essential claim is the overlapping pair resolving in the next
        # view; the X3 loading is only a proxy and can share weight with
        # other axes on some draws.
        assert result.x3_weight_next > 0.5
        assert result.split_separation > 2.0


class TestFig3AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_structure(self, seed):
        result = fig3_x5_structure.run(seed=seed)
        assert set(result.overlap_per_panel.values()) == {"B", "C", "D"}
        assert result.separable_45
        assert result.coupling_measured == pytest.approx(0.75, abs=0.08)


class TestTable1AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_score_decay(self, seed):
        result = table1_ica_scores.run(seed=seed, n=600)
        tops = result.top_abs_scores
        assert tops[2] < tops[0]
        assert tops[2] < 0.5 * tops[0]
        # After round 1 the view looks at dims 4-5.
        assert result.loading_on_dims45[1] > 0.7


class TestFig5IsDeterministic:
    def test_no_randomness_involved(self):
        # The adversarial dataset is fixed (Eq. 11); two runs agree exactly.
        a = fig5_convergence.run(max_sweeps_b=100)
        b = fig5_convergence.run(max_sweeps_b=100)
        np.testing.assert_array_equal(a.trace_a, b.trace_a)
        np.testing.assert_array_equal(a.trace_b, b.trace_b)
