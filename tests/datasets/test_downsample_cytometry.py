"""Tests for downsampling utilities and the cytometry surrogate."""

import numpy as np
import pytest

from repro.datasets import cytometry_surrogate, downsample, lift_selection
from repro.datasets.base import DatasetBundle
from repro.errors import DataShapeError


@pytest.fixture
def labelled_bundle(rng):
    labels = np.array(["a"] * 700 + ["b"] * 280 + ["c"] * 20)
    return DatasetBundle(
        name="toy", data=rng.standard_normal((1000, 3)), labels=labels
    )


class TestDownsample:
    def test_shape_and_name(self, labelled_bundle):
        sample = downsample(labelled_bundle, 100, rng=np.random.default_rng(0))
        assert sample.n_rows == 100
        assert sample.name == "toy#100"
        assert sample.metadata["parent_n_rows"] == 1000

    def test_labels_follow_rows(self, labelled_bundle):
        sample = downsample(labelled_bundle, 200, rng=np.random.default_rng(1))
        rows = sample.metadata["sample_rows"]
        np.testing.assert_array_equal(sample.labels, labelled_bundle.labels[rows])
        np.testing.assert_array_equal(sample.data, labelled_bundle.data[rows])

    def test_stratified_keeps_small_class(self, labelled_bundle):
        sample = downsample(
            labelled_bundle, 100, rng=np.random.default_rng(2), stratify=True
        )
        counts = {c: int(np.sum(sample.labels == c)) for c in ("a", "b", "c")}
        assert counts["a"] == pytest.approx(70, abs=2)
        assert counts["b"] == pytest.approx(28, abs=2)
        assert counts["c"] >= 1  # the 2% class survives

    def test_stratified_requires_labels(self, rng):
        bundle = DatasetBundle(name="t", data=rng.standard_normal((50, 2)))
        with pytest.raises(DataShapeError):
            downsample(bundle, 10, stratify=True)

    def test_oversampling_rejected(self, labelled_bundle):
        with pytest.raises(DataShapeError):
            downsample(labelled_bundle, 2000)

    def test_zero_rows_rejected(self, labelled_bundle):
        with pytest.raises(DataShapeError):
            downsample(labelled_bundle, 0)

    def test_rows_unique_and_sorted(self, labelled_bundle):
        sample = downsample(labelled_bundle, 500, rng=np.random.default_rng(3))
        rows = sample.metadata["sample_rows"]
        assert np.all(np.diff(rows) > 0)


class TestLiftSelection:
    def test_roundtrip(self, labelled_bundle):
        sample = downsample(labelled_bundle, 100, rng=np.random.default_rng(0))
        lifted = lift_selection(sample, [0, 5, 7])
        rows = sample.metadata["sample_rows"]
        np.testing.assert_array_equal(lifted, rows[[0, 5, 7]])
        # Lifted rows index the same data values.
        np.testing.assert_array_equal(
            labelled_bundle.data[lifted], sample.data[[0, 5, 7]]
        )

    def test_requires_downsampled_bundle(self, labelled_bundle):
        with pytest.raises(DataShapeError):
            lift_selection(labelled_bundle, [0])

    def test_out_of_range_rejected(self, labelled_bundle):
        sample = downsample(labelled_bundle, 10, rng=np.random.default_rng(0))
        with pytest.raises(DataShapeError):
            lift_selection(sample, [10])


class TestCytometrySurrogate:
    def test_shape_and_channels(self):
        bundle = cytometry_surrogate(n_events=2000, seed=0)
        assert bundle.data.shape == (2000, 8)
        assert bundle.feature_names[0] == "FSC-A"

    def test_population_fractions(self):
        bundle = cytometry_surrogate(n_events=20000, seed=0)
        counts = bundle.metadata["population_counts"]
        assert counts["nkt-rare"] == pytest.approx(200, rel=0.5)
        assert counts["t-helper"] > counts["nkt-rare"] * 10

    def test_asinh_transform_compresses_range(self):
        raw = cytometry_surrogate(n_events=2000, seed=0, transform=False)
        cooked = cytometry_surrogate(n_events=2000, seed=0, transform=True)
        assert raw.data.max() > 1000.0
        assert cooked.data.max() < 10.0

    def test_populations_separable_in_marker_space(self):
        bundle = cytometry_surrogate(n_events=5000, seed=0)
        data, labels = bundle.data, bundle.labels
        # CD3 separates T cells from B cells.
        cd3 = data[:, 2]
        t = cd3[np.isin(labels, ("t-helper", "t-cytotoxic"))]
        b = cd3[labels == "b-cells"]
        assert t.mean() - b.mean() > 2.0 * (t.std() + b.std())

    def test_rare_population_is_double_bright(self):
        bundle = cytometry_surrogate(n_events=20000, seed=0)
        data, labels = bundle.data, bundle.labels
        rare = labels == "nkt-rare"
        # Brighter on CD3 than T cells AND brighter on CD56 than NK cells.
        assert data[rare, 2].mean() > data[labels == "t-helper", 2].mean()
        assert data[rare, 4].mean() > data[labels == "nk-cells", 4].mean()

    def test_deterministic(self):
        b1 = cytometry_surrogate(n_events=1000, seed=7)
        b2 = cytometry_surrogate(n_events=1000, seed=7)
        np.testing.assert_array_equal(b1.data, b2.data)
