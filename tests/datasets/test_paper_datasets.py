"""Tests for the paper's synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.paper import (
    adversarial_constraints_case_a,
    adversarial_constraints_case_b,
    adversarial_three_points,
    three_d_clusters,
    x5,
)


class TestThreeDClusters:
    def test_shape_and_sizes(self):
        bundle = three_d_clusters(seed=0)
        assert bundle.data.shape == (150, 3)
        counts = {label: int(np.sum(bundle.labels == label)) for label in range(4)}
        assert counts == {0: 50, 1: 50, 2: 25, 3: 25}

    def test_pair_overlaps_in_first_two_dims(self):
        bundle = three_d_clusters(seed=0)
        data, labels = bundle.data, bundle.labels
        c2 = data[labels == 2][:, :2].mean(axis=0)
        c3 = data[labels == 3][:, :2].mean(axis=0)
        spread = data[labels == 2][:, :2].std()
        assert np.linalg.norm(c2 - c3) < spread  # indistinguishable in 2-D

    def test_pair_separates_in_third_dim(self):
        bundle = three_d_clusters(seed=0)
        data, labels = bundle.data, bundle.labels
        gap = abs(
            data[labels == 2][:, 2].mean() - data[labels == 3][:, 2].mean()
        )
        pooled = 0.5 * (
            data[labels == 2][:, 2].std() + data[labels == 3][:, 2].std()
        )
        assert gap > 2.0 * pooled

    def test_deterministic_with_seed(self):
        b1 = three_d_clusters(seed=5)
        b2 = three_d_clusters(seed=5)
        np.testing.assert_array_equal(b1.data, b2.data)

    def test_different_seed_different_data(self):
        b1 = three_d_clusters(seed=1)
        b2 = three_d_clusters(seed=2)
        assert not np.array_equal(b1.data, b2.data)


class TestX5:
    def test_shape_and_groupings(self):
        bundle = x5(n=800, seed=0)
        assert bundle.data.shape == (800, 5)
        assert set(np.unique(bundle.labels)) == {"A", "B", "C", "D"}
        assert set(np.unique(bundle.metadata["labels45"])) == {"E", "F", "G"}

    def test_a_overlaps_each_of_bcd_in_some_panel(self):
        bundle = x5(seed=0)
        data, labels = bundle.data, bundle.labels
        overlapped = set()
        for dims in [(0, 1), (0, 2), (1, 2)]:
            centre_a = data[labels == "A"][:, dims].mean(axis=0)
            for name in ("B", "C", "D"):
                centre = data[labels == name][:, dims].mean(axis=0)
                if np.linalg.norm(centre - centre_a) < 0.2:
                    overlapped.add(name)
        assert overlapped == {"B", "C", "D"}

    def test_coupling_probability(self):
        bundle = x5(n=4000, seed=1)
        labels = bundle.labels
        labels45 = bundle.metadata["labels45"]
        bcd = np.isin(labels, ("B", "C", "D"))
        frac = float(np.mean(np.isin(labels45[bcd], ("E", "F"))))
        assert frac == pytest.approx(0.75, abs=0.03)

    def test_a_always_in_g(self):
        bundle = x5(seed=2)
        labels45 = bundle.metadata["labels45"]
        assert np.all(labels45[bundle.labels == "A"] == "G")

    def test_custom_coupling(self):
        bundle = x5(n=4000, seed=3, coupling=0.2)
        labels45 = bundle.metadata["labels45"]
        bcd = np.isin(bundle.labels, ("B", "C", "D"))
        frac = float(np.mean(np.isin(labels45[bcd], ("E", "F"))))
        assert frac == pytest.approx(0.2, abs=0.03)


class TestAdversarial:
    def test_data_matches_eq_11(self):
        bundle = adversarial_three_points()
        np.testing.assert_array_equal(
            bundle.data, [[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]]
        )

    def test_case_a_has_four_constraints(self):
        data = adversarial_three_points().data
        assert len(adversarial_constraints_case_a(data)) == 4

    def test_case_b_extends_case_a(self):
        data = adversarial_three_points().data
        ca = adversarial_constraints_case_a(data)
        cb = adversarial_constraints_case_b(data)
        assert len(cb) == 8
        for c_a, c_b in zip(ca, cb[:4]):
            np.testing.assert_array_equal(c_a.rows, c_b.rows)
            np.testing.assert_array_equal(c_a.w, c_b.w)

    def test_case_b_second_set_overlaps_row_two(self):
        data = adversarial_three_points().data
        cb = adversarial_constraints_case_b(data)
        for c in cb[4:]:
            np.testing.assert_array_equal(c.rows, [1, 2])
