"""Tests for the generic and surrogate dataset generators."""

import numpy as np
import pytest

from repro.datasets.base import DatasetBundle
from repro.datasets.bnc import GENRES, bnc_surrogate
from repro.datasets.runtime import runtime_constraints, runtime_dataset
from repro.datasets.segmentation import CLASSES, segmentation_surrogate
from repro.datasets.synthetic import gaussian_clusters, random_centroid_clusters
from repro.errors import DataShapeError


class TestDatasetBundle:
    def test_default_feature_names(self, rng):
        bundle = DatasetBundle(name="t", data=rng.standard_normal((5, 3)))
        assert bundle.feature_names == ("X1", "X2", "X3")

    def test_label_length_checked(self, rng):
        with pytest.raises(DataShapeError):
            DatasetBundle(
                name="t", data=rng.standard_normal((5, 2)), labels=np.arange(4)
            )

    def test_rows_with_label(self, rng):
        bundle = DatasetBundle(
            name="t",
            data=rng.standard_normal((6, 2)),
            labels=np.array(["a", "b", "a", "b", "a", "b"]),
        )
        np.testing.assert_array_equal(bundle.rows_with_label("a"), [0, 2, 4])

    def test_rows_with_label_requires_labels(self, rng):
        bundle = DatasetBundle(name="t", data=rng.standard_normal((5, 2)))
        with pytest.raises(DataShapeError):
            bundle.rows_with_label("a")

    def test_class_names_order(self, rng):
        bundle = DatasetBundle(
            name="t",
            data=rng.standard_normal((4, 2)),
            labels=np.array(["z", "a", "z", "m"]),
        )
        assert bundle.class_names() == ["z", "a", "m"]


class TestGaussianClusters:
    def test_sizes_and_labels(self):
        centres = np.array([[0.0, 0.0], [5.0, 5.0]])
        bundle = gaussian_clusters(centres, sizes=[30, 20], spreads=0.1, seed=0)
        assert bundle.n_rows == 50
        assert int(np.sum(bundle.labels == 0)) == 30
        assert int(np.sum(bundle.labels == 1)) == 20

    def test_clusters_near_centroids(self):
        centres = np.array([[0.0, 0.0], [5.0, 5.0]])
        bundle = gaussian_clusters(centres, sizes=[100, 100], spreads=0.1, seed=0)
        for c in (0, 1):
            got = bundle.data[bundle.labels == c].mean(axis=0)
            np.testing.assert_allclose(got, centres[c], atol=0.05)

    def test_per_cluster_spreads(self):
        centres = np.zeros((2, 2))
        bundle = gaussian_clusters(
            centres, sizes=[2000, 2000], spreads=[0.1, 2.0], seed=0
        )
        s0 = bundle.data[bundle.labels == 0].std()
        s1 = bundle.data[bundle.labels == 1].std()
        assert s1 / s0 == pytest.approx(20.0, rel=0.15)

    def test_size_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            gaussian_clusters(np.zeros((2, 2)), sizes=[10])

    def test_shuffle_off_keeps_block_order(self):
        bundle = gaussian_clusters(
            np.zeros((2, 2)), sizes=[3, 3], seed=0, shuffle=False
        )
        np.testing.assert_array_equal(bundle.labels, [0, 0, 0, 1, 1, 1])


class TestRuntimeDataset:
    def test_shape(self):
        bundle = runtime_dataset(n=100, d=4, k=3, seed=0)
        assert bundle.data.shape == (100, 4)
        assert len(np.unique(bundle.labels)) == 3

    def test_constraint_count(self):
        bundle = runtime_dataset(n=100, d=4, k=3, seed=0)
        constraints = runtime_constraints(bundle)
        # 2d margins + 2d per cluster = 2*4 + 3*2*4.
        assert len(constraints) == 8 + 24

    def test_k1_only_margins(self):
        bundle = runtime_dataset(n=50, d=3, k=1, seed=0)
        constraints = runtime_constraints(bundle)
        assert len(constraints) == 6

    def test_n_smaller_than_k_rejected(self):
        with pytest.raises(DataShapeError):
            random_centroid_clusters(n=2, d=3, k=5)


class TestBncSurrogate:
    def test_shape_and_genres(self):
        bundle = bnc_surrogate(seed=0)
        assert bundle.data.shape == (1335, 100)
        assert set(np.unique(bundle.labels)) == set(GENRES)

    def test_counts_normalisation_modes(self):
        counts = bnc_surrogate(seed=0, normalize="counts")
        rel = bnc_surrogate(seed=0, normalize="relative")
        hel = bnc_surrogate(seed=0, normalize="hellinger")
        np.testing.assert_allclose(counts.data.sum(axis=1), 2000.0)
        np.testing.assert_allclose(rel.data.sum(axis=1), 1.0, atol=1e-12)
        np.testing.assert_allclose((hel.data**2).sum(axis=1), 1.0, atol=1e-12)

    def test_unknown_normalize_rejected(self):
        with pytest.raises(ValueError):
            bnc_surrogate(normalize="tfidf")

    def test_smaller_corpus(self):
        bundle = bnc_surrogate(seed=0, n_documents=200)
        assert 150 <= bundle.n_rows <= 250

    def test_conversations_distinct(self):
        # The core calibration property: conversations are far from every
        # written genre in standardised space.
        bundle = bnc_surrogate(seed=0)
        data = bundle.data
        std = (data - data.mean(0)) / data.std(0)
        conv = std[bundle.labels == "transcribed conversations"].mean(axis=0)
        for genre in GENRES:
            if genre == "transcribed conversations":
                continue
            other = std[bundle.labels == genre].mean(axis=0)
            assert np.linalg.norm(conv - other) > 5.0


class TestSegmentationSurrogate:
    def test_shape_and_classes(self):
        bundle = segmentation_surrogate(seed=0)
        assert bundle.data.shape == (2310, 19)
        assert set(np.unique(bundle.labels)) == set(CLASSES)

    def test_scale_anisotropy(self):
        bundle = segmentation_surrogate(seed=0)
        stds = bundle.data.std(axis=0)
        assert stds.max() / stds.min() > 20.0

    def test_outlier_rows_recorded(self):
        bundle = segmentation_surrogate(seed=0)
        outliers = bundle.metadata["outlier_rows"]
        assert len(outliers) >= 3
        assert np.all(outliers < bundle.n_rows)

    def test_outliers_are_remote_in_mahalanobis(self):
        bundle = segmentation_surrogate(seed=0)
        data = bundle.data
        cov = np.cov(data, rowvar=False)
        inv = np.linalg.inv(cov + 1e-9 * np.eye(19))
        centred = data - data.mean(axis=0)
        maha = np.sqrt(np.einsum("ij,jk,ik->i", centred, inv, centred))
        # Typical Mahalanobis norm in 19-D is ~sqrt(19) ≈ 4.4; the injected
        # outliers sit at 6-9, i.e. clearly above the bulk but not by an
        # arbitrary factor.
        outliers = bundle.metadata["outlier_rows"]
        assert np.median(maha[outliers]) > 1.3 * np.median(maha)
        assert np.median(maha[outliers]) > 5.5

    def test_smaller_classes(self):
        bundle = segmentation_surrogate(seed=0, samples_per_class=50)
        assert bundle.n_rows == 350
