"""Unit tests for the symmetric eigen helpers."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.linalg import inverse_sqrt_psd, sqrt_psd, symmetric_eig


class TestSymmetricEig:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((5, 5))
        mat = a @ a.T
        vals, vecs = symmetric_eig(mat)
        np.testing.assert_allclose((vecs * vals) @ vecs.T, mat, rtol=1e-9, atol=1e-9)

    def test_negative_noise_clamped(self):
        # A matrix that is PSD up to floating point noise.
        mat = np.array([[1.0, 1.0], [1.0, 1.0]])
        vals, _ = symmetric_eig(mat)
        assert np.all(vals >= 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(DataShapeError):
            symmetric_eig(np.ones((2, 3)))


class TestSqrtPsd:
    def test_square_root_property(self, rng):
        a = rng.standard_normal((4, 4))
        mat = a @ a.T
        root = sqrt_psd(mat)
        np.testing.assert_allclose(root @ root, mat, rtol=1e-8, atol=1e-10)

    def test_singular_matrix_ok(self):
        mat = np.diag([4.0, 0.0])
        root = sqrt_psd(mat)
        np.testing.assert_allclose(root, np.diag([2.0, 0.0]), atol=1e-12)


class TestInverseSqrtPsd:
    def test_whitening_property(self, rng):
        a = rng.standard_normal((4, 4))
        mat = a @ a.T + 0.5 * np.eye(4)
        inv_root = inverse_sqrt_psd(mat)
        np.testing.assert_allclose(
            inv_root @ mat @ inv_root, np.eye(4), rtol=1e-8, atol=1e-8
        )

    def test_identity_maps_to_identity(self):
        np.testing.assert_allclose(inverse_sqrt_psd(np.eye(3)), np.eye(3), atol=1e-12)

    def test_singular_direction_clamped_not_infinite(self):
        mat = np.diag([1.0, 0.0])
        inv_root = inverse_sqrt_psd(mat)
        assert np.all(np.isfinite(inv_root))
        # The zero-variance direction gets a large but finite scaling.
        assert inv_root[1, 1] > 1e3

    def test_custom_floor_respected(self):
        mat = np.diag([1.0, 1e-20])
        inv_root = inverse_sqrt_psd(mat, floor=1e-4)
        assert inv_root[1, 1] == pytest.approx(1.0 / np.sqrt(1e-4))
