"""Unit tests for the Sherman–Morrison rank-1 covariance updates."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.linalg import woodbury_rank1_downdate, woodbury_rank1_inverse


def _random_spd(rng, d):
    a = rng.standard_normal((d, d))
    return a @ a.T + d * np.eye(d)


class TestWoodburyRank1Inverse:
    def test_matches_direct_inverse(self, rng):
        d = 6
        sigma = _random_spd(rng, d)
        w = rng.standard_normal(d)
        lam = 0.7
        expected = np.linalg.inv(np.linalg.inv(sigma) + lam * np.outer(w, w))
        got = woodbury_rank1_inverse(sigma, w, lam)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)

    def test_negative_lambda_inflates_variance(self, rng):
        sigma = np.eye(3)
        w = np.array([1.0, 0.0, 0.0])
        got = woodbury_rank1_inverse(sigma, w, -0.5)
        assert got[0, 0] == pytest.approx(2.0)
        assert got[1, 1] == pytest.approx(1.0)

    def test_zero_lambda_is_identity_operation(self, rng):
        sigma = _random_spd(rng, 4)
        w = rng.standard_normal(4)
        got = woodbury_rank1_inverse(sigma, w, 0.0)
        np.testing.assert_allclose(got, sigma, rtol=1e-12)

    def test_result_is_symmetric(self, rng):
        sigma = _random_spd(rng, 5)
        w = rng.standard_normal(5)
        got = woodbury_rank1_inverse(sigma, w, 2.3)
        np.testing.assert_array_equal(got, got.T)

    def test_shrinks_variance_along_w(self, rng):
        sigma = _random_spd(rng, 4)
        w = rng.standard_normal(4)
        w /= np.linalg.norm(w)
        before = float(w @ sigma @ w)
        after = float(w @ woodbury_rank1_inverse(sigma, w, 1.5) @ w)
        assert after < before

    def test_orthogonal_directions_untouched(self, rng):
        sigma = np.diag([1.0, 2.0, 3.0])
        w = np.array([1.0, 0.0, 0.0])
        got = woodbury_rank1_inverse(sigma, w, 5.0)
        assert got[1, 1] == pytest.approx(2.0)
        assert got[2, 2] == pytest.approx(3.0)

    def test_raises_when_update_not_positive_definite(self):
        sigma = np.eye(2)
        w = np.array([1.0, 0.0])
        # lam = -1 makes the precision singular: 1 + lam*w^T Sigma w = 0.
        with pytest.raises(ConvergenceError):
            woodbury_rank1_inverse(sigma, w, -1.0)

    def test_repeated_updates_match_batch_inverse(self, rng):
        d = 5
        sigma = np.eye(d)
        precision = np.eye(d)
        for _ in range(20):
            w = rng.standard_normal(d)
            lam = float(rng.uniform(0.0, 1.0))
            sigma = woodbury_rank1_inverse(sigma, w, lam)
            precision = precision + lam * np.outer(w, w)
        np.testing.assert_allclose(sigma, np.linalg.inv(precision), rtol=1e-8)


class TestWoodburyDowndate:
    def test_downdate_inverts_update(self, rng):
        sigma = _random_spd(rng, 4)
        w = rng.standard_normal(4)
        lam = 0.9
        up = woodbury_rank1_inverse(sigma, w, lam)
        back = woodbury_rank1_downdate(up, w, lam)
        np.testing.assert_allclose(back, sigma, rtol=1e-8, atol=1e-10)
