"""Unit tests for the monotone root finder."""

import math

import numpy as np
import pytest

from repro.errors import RootFindError
from repro.linalg import find_monotone_root


class TestFindMonotoneRoot:
    def test_linear_function(self):
        root = find_monotone_root(lambda x: 2.0 * x - 3.0)
        assert root == pytest.approx(1.5)

    def test_decreasing_function(self):
        root = find_monotone_root(lambda x: 5.0 - x)
        assert root == pytest.approx(5.0)

    def test_root_far_from_start(self):
        root = find_monotone_root(lambda x: x - 1e7, start=0.0, initial_step=1.0)
        assert root == pytest.approx(1e7, rel=1e-6)

    def test_root_in_negative_direction(self):
        root = find_monotone_root(lambda x: x + 42.0)
        assert root == pytest.approx(-42.0)

    def test_exact_root_at_start(self):
        assert find_monotone_root(lambda x: x, start=0.0) == 0.0

    def test_one_sided_domain_with_pole(self):
        # f(x) = 1/(1+x) - 0.25 on x > -1: root at x = 3.
        def f(x):
            return 1.0 / (1.0 + x) - 0.25

        root = find_monotone_root(f, lower=-1.0, upper=math.inf, start=0.0)
        assert root == pytest.approx(3.0)

    def test_root_close_to_open_lower_bound(self):
        # Root at x = -0.999 just inside the open bound at -1.
        def f(x):
            return 1.0 / (1.0 + x) - 1000.0

        root = find_monotone_root(f, lower=-1.0, upper=math.inf, start=0.0)
        assert root == pytest.approx(-0.999, rel=1e-6)

    def test_quadratic_constraint_shape(self):
        # The real shape from the MaxEnt solver: v(lam) = s/(1+lam s) +
        # off^2/(1+lam s)^2 with target between asymptote and v(0).
        s, off, target = 2.0, 1.5, 1.0

        def phi(lam):
            denom = 1.0 + lam * s
            return s / denom + off**2 / denom**2 - target

        root = find_monotone_root(phi, lower=-1.0 / s, upper=math.inf, start=0.0)
        denom = 1.0 + root * s
        assert s / denom + off**2 / denom**2 == pytest.approx(target, rel=1e-9)

    def test_no_root_raises(self):
        # Strictly positive function: no root anywhere.
        with pytest.raises(RootFindError):
            find_monotone_root(lambda x: 1.0 + np.exp(-abs(x)) * 0.0, start=0.0)

    def test_empty_interval_raises(self):
        with pytest.raises(RootFindError):
            find_monotone_root(lambda x: x, lower=2.0, upper=1.0)

    def test_start_outside_interval_is_clipped(self):
        root = find_monotone_root(
            lambda x: x - 0.5, lower=0.0, upper=1.0, start=50.0
        )
        assert root == pytest.approx(0.5)

    def test_bounded_interval(self):
        root = find_monotone_root(
            lambda x: x**3 - 0.2, lower=-1.0, upper=1.0, start=0.0
        )
        assert root == pytest.approx(0.2 ** (1.0 / 3.0))


class TestSubnormalOffsets:
    def test_subnormal_intercept_does_not_hide_the_crossing(self):
        """The sign-change test must not rely on a product that can
        underflow: 5e-324 * -0.5 rounds to -0.0 and previously made the
        bracketer discard a genuine crossing (found by hypothesis)."""
        root = find_monotone_root(lambda x: 0.5 * x + 5e-324)
        assert abs(0.5 * root + 5e-324) < 1e-6

    def test_negative_subnormal_slope_side(self):
        root = find_monotone_root(lambda x: -0.5 * x - 5e-324)
        assert abs(-0.5 * root - 5e-324) < 1e-6
