"""Tests for the command-line interface."""

import pytest

from repro.cli import DATASETS, EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig5"])
        assert args.name == "fig5"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore", "x5"])
        assert args.rounds == 2
        assert args.objective == "pca"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.store_dir is None
        assert args.max_sessions == 64
        assert args.ttl is None
        assert args.cache_size == 128

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9001", "--store-dir", "/tmp/x", "--ttl", "30"]
        )
        assert args.port == 9001
        assert args.store_dir == "/tmp/x"
        assert args.ttl == 30.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "x5" in out

    def test_registries_cover_all_paper_items(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "table1", "fig5", "fig6",
            "table2", "fig7", "fig8", "fig9",
        }
        assert set(DATASETS) == {
            "three-d", "x5", "bnc", "segmentation", "cytometry",
        }

    def test_dataset_description(self, capsys):
        assert main(["dataset", "three-d"]) == 0
        out = capsys.readouterr().out
        assert "(150, 3)" in out
        assert "classes" in out

    def test_experiment_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "Case A" in out

    def test_explore_three_d(self, capsys):
        assert main(["explore", "three-d", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "round 0" in out
        assert "final top |score|" in out
