"""Tests for the command-line interface."""

import pytest

from repro.cli import DATASETS, EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig5"])
        assert args.name == "fig5"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore", "x5"])
        assert args.rounds == 2
        assert args.objective == "pca"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.store_dir is None
        assert args.max_sessions == 64
        assert args.ttl is None
        assert args.cache_size == 128

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9001", "--store-dir", "/tmp/x", "--ttl", "30"]
        )
        assert args.port == 9001
        assert args.store_dir == "/tmp/x"
        assert args.ttl == 30.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "x5" in out

    def test_registries_cover_all_paper_items(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "table1", "fig5", "fig6",
            "table2", "fig7", "fig8", "fig9",
        }
        assert set(DATASETS) == {
            "three-d", "x5", "bnc", "segmentation", "cytometry",
        }

    def test_dataset_description(self, capsys):
        assert main(["dataset", "three-d"]) == 0
        out = capsys.readouterr().out
        assert "(150, 3)" in out
        assert "classes" in out

    def test_experiment_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "Case A" in out

    def test_explore_three_d(self, capsys):
        assert main(["explore", "three-d", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "round 0" in out
        assert "final top |score|" in out


class TestAutonomousExploreCLI:
    def test_parser_policy_flags(self):
        args = build_parser().parse_args(
            [
                "explore", "--policy", "surprise", "--dataset", "three-d",
                "--rounds", "3", "--seed", "1", "--trace", "t.jsonl",
                "--warm-start",
            ]
        )
        assert args.policy == "surprise"
        assert args.dataset == "three-d"
        assert args.trace == "t.jsonl"
        assert args.warm_start is True
        assert args.replay is None

    def test_parser_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--policy", "nope", "x5"])

    def test_parser_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.sessions == 8
        assert args.rounds == 3
        assert args.url is None
        assert args.output == "BENCH_loadgen.json"

    def test_explore_without_dataset_errors(self, capsys):
        assert main(["explore", "--policy", "surprise"]) == 2
        assert "dataset" in capsys.readouterr().err

    def test_policy_run_trace_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "explore", "--policy", "surprise", "--dataset",
                    "three-d", "--rounds", "2", "--seed", "0",
                    "--trace", str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "knowledge curve" in out
        assert trace.exists()

        assert main(["explore", "--replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "replay matches" in out

    def test_loadgen_smoke_against_temp_server(self, tmp_path, capsys):
        output = tmp_path / "BENCH_loadgen.json"
        assert (
            main(
                [
                    "loadgen", "--sessions", "2", "--workers", "2",
                    "--rounds", "1", "--dataset", "three-d",
                    "--policy", "random-walk", "--output", str(output),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "req/s" in out
        assert output.exists()
