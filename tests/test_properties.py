"""Property-based tests (hypothesis) for the core invariants.

These exercise the mathematical guarantees of the system under randomly
generated data and constraint layouts:

* fitted models match their constraint targets (the defining MaxEnt
  property, Eq. 6);
* whitening inverts the model covariance structure;
* Woodbury updates agree with direct inversion;
* Jaccard is a proper similarity;
* equivalence classes form a partition consistent with the constraints.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.background import BackgroundModel
from repro.core.builders import cluster_constraint
from repro.core.equivalence import build_equivalence_classes
from repro.eval.jaccard import jaccard_index
from repro.linalg import (
    find_monotone_root,
    inverse_sqrt_psd,
    sqrt_psd,
    woodbury_rank1_inverse,
)
from repro.projection.pca import fit_pca

# Keep hypothesis examples small: every example runs a full solver.
_FAST = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def small_dataset(draw):
    """A well-conditioned random dataset (n in [8, 40], d in [2, 5])."""
    n = draw(st.integers(min_value=8, max_value=40))
    d = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, d)) * draw(
        st.floats(min_value=0.1, max_value=5.0)
    ) + draw(st.floats(min_value=-3.0, max_value=3.0))
    return data


@st.composite
def spd_matrix(draw):
    """A random symmetric positive-definite matrix."""
    d = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((d, d))
    return a @ a.T + (0.1 + d) * np.eye(d)


class TestMaxEntInvariants:
    @_FAST
    @given(data=small_dataset(), split=st.floats(min_value=0.2, max_value=0.8))
    def test_fitted_model_matches_targets(self, data, split):
        """After fit(), every constraint expectation equals its target.

        Both clusters are kept larger than d+2 points: a cluster with at
        most d points has zero-variance directions whose quadratic target
        is a singular limit the coordinate ascent only approaches (the
        paper's Fig. 5 Case A), so exact matching is not expected there.
        """
        n, d = data.shape
        lo, hi = d + 2, n - (d + 2)
        if lo > hi:
            cut = n // 2
        else:
            cut = min(max(int(split * n), lo), hi)
        if cut < d + 2 or n - cut < d + 2:
            return  # cannot form two non-degenerate clusters
        model = BackgroundModel(data)
        model.add_cluster_constraint(range(0, cut))
        model.add_cluster_constraint(range(cut, n))
        model.fit()
        targets = model.constraint_targets()
        got = model.constraint_expectations()
        np.testing.assert_allclose(got, targets, rtol=1e-4, atol=1e-6)

    @_FAST
    @given(data=small_dataset())
    def test_whitening_identity_without_constraints(self, data):
        """No constraints => whitening is exactly the identity."""
        model = BackgroundModel(data)
        model.fit()
        np.testing.assert_allclose(model.whiten(), model.data, atol=1e-10)

    @_FAST
    @given(data=small_dataset())
    def test_margin_fit_standardises_whitened_columns(self, data):
        """Margin constraints => whitened columns have mean 0, var ~1.

        The quadratic margin target is the anchored (biased) column sum of
        squares, so the whitened per-column second moment must match it.
        """
        model = BackgroundModel(data)
        model.add_margin_constraints()
        model.fit()
        whitened = model.whiten()
        np.testing.assert_allclose(whitened.mean(axis=0), 0.0, atol=0.05)
        second_moment = np.mean(whitened**2, axis=0)
        np.testing.assert_allclose(second_moment, 1.0, atol=0.1)


class TestLinalgInvariants:
    @_FAST
    @given(
        sigma=spd_matrix(),
        lam=st.floats(min_value=0.0, max_value=10.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_woodbury_equals_direct_inverse(self, sigma, lam, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal(sigma.shape[0])
        expected = np.linalg.inv(np.linalg.inv(sigma) + lam * np.outer(w, w))
        got = woodbury_rank1_inverse(sigma, w, lam)
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-8)

    @_FAST
    @given(sigma=spd_matrix())
    def test_sqrt_roundtrip(self, sigma):
        root = sqrt_psd(sigma)
        np.testing.assert_allclose(root @ root, sigma, rtol=1e-6, atol=1e-8)

    @_FAST
    @given(sigma=spd_matrix())
    def test_inverse_sqrt_whitens(self, sigma):
        t = inverse_sqrt_psd(sigma)
        d = sigma.shape[0]
        np.testing.assert_allclose(t @ sigma @ t, np.eye(d), rtol=1e-5, atol=1e-6)

    @_FAST
    @given(
        a=st.floats(min_value=0.05, max_value=20.0),
        b=st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_root_finder_solves_affine(self, a, b):
        root = find_monotone_root(lambda x: a * x + b)
        assert abs(a * root + b) < 1e-6


class TestStructuralInvariants:
    @_FAST
    @given(
        n=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_groups=st.integers(min_value=1, max_value=4),
    )
    def test_equivalence_classes_partition(self, n, seed, n_groups):
        """Classes partition rows; each constraint is a union of classes."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, 3))
        constraints = []
        for _ in range(n_groups):
            size = int(rng.integers(1, n + 1))
            rows = rng.choice(n, size=size, replace=False)
            constraints.extend(cluster_constraint(data, rows))
        classes = build_equivalence_classes(n, constraints)
        # Partition: counts add to n, every row has a class.
        assert int(classes.class_counts.sum()) == n
        assert classes.class_of_row.shape == (n,)
        # Union-of-classes: each constraint's row count is recovered.
        for t, c in enumerate(constraints):
            assert classes.count_in_constraint(t) == c.n_rows

    @_FAST
    @given(
        xs=st.lists(st.integers(min_value=0, max_value=30), max_size=20),
        ys=st.lists(st.integers(min_value=0, max_value=30), max_size=20),
    )
    def test_jaccard_bounds_and_symmetry(self, xs, ys):
        j = jaccard_index(xs, ys) if xs or ys else 0.0
        assert 0.0 <= j <= 1.0
        assert j == jaccard_index(ys, xs)
        if set(xs) == set(ys) and xs:
            assert j == 1.0

    @_FAST
    @given(data=small_dataset())
    def test_pca_components_orthonormal(self, data):
        result = fit_pca(data)
        d = data.shape[1]
        np.testing.assert_allclose(
            result.components @ result.components.T, np.eye(d), atol=1e-8
        )
        assert np.all(result.variances >= -1e-12)
