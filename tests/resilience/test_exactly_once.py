"""Exactly-once feedback under injected faults.

Two escalating proofs that an ``Idempotency-Key`` makes feedback retries
safe even when the failure is *ambiguous* (the batch committed but the
client never heard back):

1. in-process — a chaos fault throws after the WAL commit; retrying the
   same key answers from the dedup window instead of double-applying;
2. kill -9 over HTTP — the worker process dies (``os._exit(137)``) after
   committing a batch but before responding; the client retries the same
   key against a restarted server on the same database and the final
   state is bit-for-bit identical to a never-crashed oracle.
"""

import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.session import ExplorationSession
from repro.feedback import ClusterFeedback
from repro.resilience import ChaosError, configure_chaos, disable_chaos
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import SessionManager
from repro.store.recovery import recover_session, verify_store
from repro.store.sqlite import SQLiteStore

_REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

SEED = 123
DATA_SEED = 42


def workload_data() -> np.ndarray:
    rng = np.random.default_rng(DATA_SEED)
    a = rng.normal([0.0, 0.0, 0.0], 0.3, (40, 3))
    b = rng.normal([3.0, 3.0, 0.0], 0.3, (30, 3))
    return np.vstack([a, b])


def make_item(i: int) -> ClusterFeedback:
    rows = tuple(range(i % 9, i % 9 + 6))
    return ClusterFeedback(rows=rows, label=f"batch-{i}")


class TestInProcessPostCommitFault:
    def test_retry_after_post_commit_fault_applies_exactly_once(
        self, tmp_path
    ):
        data = workload_data()
        store = SQLiteStore(tmp_path / "eo.db", fsync="always")
        manager = SessionManager({"wl": data}, store=store)
        sid = manager.create("wl", session_id="eo", seed=SEED)

        # The fault fires after the WAL commit and the dedup-window
        # update but before the caller gets its stats — the worst
        # ambiguous failure: work durable, acknowledgement lost.
        configure_chaos("manager.feedback.post_commit:error:times=1")
        try:
            with pytest.raises(ChaosError):
                manager.apply_feedback(
                    sid, [make_item(0)], idempotency_key="key-0"
                )
        finally:
            disable_chaos()

        # A blind retry with the same key must answer from the dedup
        # window, not re-apply the batch.
        stats = manager.apply_feedback(
            sid, [make_item(0)], idempotency_key="key-0"
        )
        assert stats["duplicate"] is True
        assert stats["applied"] == ["batch-0"]
        assert len(stats["feedback_log"]) == 1

        # The durable log holds exactly one record...
        manager.checkpoint(sid)
        recovered, state = recover_session(
            store, sid, data, standardize=False, seed=SEED
        )
        assert state.wal_seq == 1
        assert [f.label for f in recovered.feedback_log] == ["batch-0"]

        # ...and the view equals an oracle that saw the batch once.
        oracle = ExplorationSession(data, seed=SEED)
        oracle.apply_many([make_item(0)])
        view, _ = manager.view(sid)
        np.testing.assert_array_equal(view.axes, oracle.current_view().axes)
        store.close()

    def test_distinct_keys_still_apply_normally(self, tmp_path):
        data = workload_data()
        store = SQLiteStore(tmp_path / "eo2.db", fsync="always")
        manager = SessionManager({"wl": data}, store=store)
        sid = manager.create("wl", session_id="eo2", seed=SEED)
        first = manager.apply_feedback(
            sid, [make_item(0)], idempotency_key="key-a"
        )
        second = manager.apply_feedback(
            sid, [make_item(1)], idempotency_key="key-b"
        )
        assert "duplicate" not in first
        assert "duplicate" not in second
        assert len(second["feedback_log"]) == 2
        store.close()


_SERVER_SCRIPT = """
import sys

import numpy as np

from repro.resilience import chaos
from repro.service.manager import SessionManager
from repro.service.server import ReproServer
from repro.store.sqlite import SQLiteStore

db_path = sys.argv[1]

rng = np.random.default_rng(42)
a = rng.normal([0.0, 0.0, 0.0], 0.3, (40, 3))
b = rng.normal([3.0, 3.0, 0.0], 0.3, (30, 3))
data = np.vstack([a, b])

chaos.configure_from_env()

store = SQLiteStore(db_path, fsync="always")
manager = SessionManager({"wl": data}, store=store)
server = ReproServer(manager, port=0)
print(server.server_address[1], flush=True)
server.serve_forever()
"""


def _spawn_server(db_path, extra_env=None):
    env = {
        "PYTHONPATH": _REPO_SRC,
        "PATH": "/usr/bin:/bin:/usr/local/bin",
    }
    if extra_env:
        env.update(extra_env)
    worker = subprocess.Popen(
        [sys.executable, "-c", _SERVER_SCRIPT, str(db_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    port_line = worker.stdout.readline().strip()
    if not port_line:
        err = worker.stderr.read()
        worker.kill()
        pytest.fail(f"server worker never reported a port: {err}")
    return worker, int(port_line)


def test_kill9_post_commit_retry_is_exactly_once(tmp_path):
    """The acceptance-criteria chaos scenario, end to end over HTTP."""
    db_path = tmp_path / "kill.db"
    chaos_log = tmp_path / "chaos.jsonl"

    # Round 1: the worker is rigged to die (exit 137) right after the
    # THIRD feedback commit, before the response is written.
    worker, port = _spawn_server(
        db_path,
        extra_env={
            "REPRO_CHAOS": "manager.feedback.post_commit:kill:after=2:times=1",
            "REPRO_CHAOS_LOG": str(chaos_log),
        },
    )
    retry_key = "retry-me-once"
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{port}",
            retry_delay=0.0,
            breaker=False,
        )
        sid = client.create_session("wl", session_id="kill", seed=SEED)
        client.apply_feedback(sid, [make_item(0)])
        client.apply_feedback(sid, [make_item(1)])

        # Batch 2 commits server-side; the worker dies before answering.
        # The client's automatic retries (same pending key) hit a corpse
        # and the call surfaces as a transport error, leaving the retry
        # decision — and the key — with the caller.
        with pytest.raises(ServiceClientError) as info:
            client.apply_feedback(
                sid, [make_item(2)], idempotency_key=retry_key
            )
        assert info.value.status == 0
        assert client.last_attempts > 1  # it genuinely retried first
        worker.wait(timeout=30)
        assert worker.returncode == 137
    finally:
        if worker.poll() is None:  # pragma: no cover - cleanup on failure
            worker.kill()
        worker.stdout.close()
        worker.stderr.close()

    # The chaos log recorded the kill before the process died.
    assert "kill" in chaos_log.read_text()

    # Round 2: a fresh worker on the same database, no faults.  The
    # client resends the SAME idempotency key — the only safe move after
    # an ambiguous failure — and the server answers from its dedup
    # window instead of applying batch 2 twice.
    worker2, port2 = _spawn_server(db_path)
    try:
        client2 = ServiceClient(f"http://127.0.0.1:{port2}", breaker=False)
        stats = client2.apply_feedback(
            "kill", [make_item(2)], idempotency_key=retry_key
        )
        assert stats["duplicate"] is True
        assert stats["applied"] == ["batch-2"]
        assert len(stats["feedback_log"]) == 3
        assert client2.counters["dedup"] == 1

        # The restarted server serves the session with all three batches.
        view = client2.view("kill")
    finally:
        worker2.kill()
        worker2.wait(timeout=30)
        worker2.stdout.close()
        worker2.stderr.close()

    # Offline: the store verifies clean, holds exactly three records,
    # and replays to a view bit-identical to a never-crashed oracle.
    store = SQLiteStore(db_path)
    report = verify_store(store, policy="fail")
    assert report["ok"], report
    recovered, state = recover_session(
        store, "kill", workload_data(), standardize=False, seed=SEED
    )
    assert state.wal_seq == 3
    assert [f.label for f in recovered.feedback_log] == [
        "batch-0", "batch-1", "batch-2",
    ]
    oracle = ExplorationSession(workload_data(), seed=SEED)
    for i in range(3):
        oracle.apply_many([make_item(i)])
    np.testing.assert_array_equal(
        recovered.current_view().axes, oracle.current_view().axes
    )
    np.testing.assert_array_equal(
        recovered.current_view().scores, oracle.current_view().scores
    )
    np.testing.assert_array_equal(
        np.asarray(view["axes"]), oracle.current_view().axes
    )
    store.close()
