"""Overload shedding, request deadlines, and graceful drain over HTTP.

The paper's interactivity contract under pressure: excess load answers
``503 overloaded`` + ``Retry-After`` instead of queueing, requests that
cannot finish inside their budget abort with ``503 deadline_exceeded``
instead of burning a worker, and a draining server refuses new work,
checkpoints everything, and exits 0 so a successor can resume every
session.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.resilience import AdmissionController, DeadlineExceededError, deadline_scope
from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import SessionManager
from repro.service.server import start_background
from repro.service.store import MemoryStore

_REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _wait_for(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.01)


class TestAdminDrainRoute:
    def _api(self, data):
        manager = SessionManager({"wl": data}, store=MemoryStore())
        manager.create("wl", session_id="s1", seed=0)
        return ServiceAPI(manager)

    def test_drain_refuses_new_work_but_keeps_exempt_routes(
        self, two_cluster_data
    ):
        api = self._api(two_cluster_data[0])
        shutdowns = []
        api.shutdown_hook = lambda: shutdowns.append(True)

        status, payload = api.dispatch("POST", "/v1/admin/drain")
        assert status == 202
        assert payload["draining"] is True
        assert payload["initiated"] is True

        # The drain itself runs on a background thread so the 202 can
        # get out; its report lands on api.last_drain.
        _wait_for(lambda: api.last_drain is not None, message="drain report")
        report = api.last_drain
        assert report["idle"] is True
        assert report["checkpointed"] == 1
        assert shutdowns == [True]

        # Session work is refused with a redirect-me-elsewhere 503...
        status, payload = api.dispatch("GET", "/v1/sessions/s1/view")
        assert status == 503
        assert payload["kind"] == "draining"
        assert payload["retry_after"] > 0

        # ...while health stays answerable for the orchestrator.
        status, payload = api.dispatch("GET", "/v1/health")
        assert status == 200

        # A repeat drain is acknowledged but not re-initiated.
        status, payload = api.dispatch("POST", "/v1/admin/drain")
        assert status == 202
        assert payload["initiated"] is False

    def test_drain_budget_validation(self, two_cluster_data):
        api = self._api(two_cluster_data[0])
        status, payload = api.dispatch(
            "POST", "/v1/admin/drain", {"budget_seconds": -1}
        )
        assert status == 400


class TestOverloadOverHttp:
    def test_excess_load_sheds_with_retry_after_header(
        self, two_cluster_data
    ):
        manager = SessionManager({"wl": two_cluster_data[0]})
        api = ServiceAPI(
            manager,
            admission=AdmissionController(max_inflight=1, retry_after=1.5),
        )
        server = start_background(api)
        try:
            with api.admission.admit():  # the one slot is taken
                with pytest.raises(urllib.error.HTTPError) as info:
                    urllib.request.urlopen(
                        f"{server.base_url}/v1/datasets", timeout=10
                    )
                exc = info.value
                assert exc.code == 503
                assert float(exc.headers["Retry-After"]) == 1.5
                payload = json.loads(exc.read())
                assert payload["kind"] == "overloaded"
            # Slot free again: the same request is served.
            with urllib.request.urlopen(
                f"{server.base_url}/v1/datasets", timeout=10
            ) as response:
                assert response.status == 200
        finally:
            server.stop()

    def test_client_counts_sheds_and_honours_retry_after(
        self, two_cluster_data
    ):
        manager = SessionManager({"wl": two_cluster_data[0]})
        api = ServiceAPI(
            manager,
            admission=AdmissionController(max_inflight=1, retry_after=0.01),
        )
        server = start_background(api)
        try:
            client = ServiceClient(
                server.base_url, max_retries=1, retry_delay=0.0,
                breaker=False,
            )
            with api.admission.admit():
                with pytest.raises(ServiceClientError) as info:
                    client.datasets()
                assert info.value.status == 503
            # 503 + Retry-After is client-retryable: one retry happened
            # (against the still-held slot) before the error surfaced.
            assert client.last_attempts == 2
            assert client.counters["shed"] == 2
            assert client.counters["retries"] == 1
        finally:
            server.stop()


class TestDeadlineOverHttp:
    def test_tiny_deadline_aborts_solver_work(self, two_cluster_data):
        data = two_cluster_data[0]
        manager = SessionManager({"wl": data})
        server = start_background(ServiceAPI(manager))
        try:
            setup = ServiceClient(server.base_url, breaker=False)
            sid = setup.create_session("wl", seed=0)
            setup.mark_cluster(sid, rows=range(10), label="c0")

            # In-process sanity: this view needs a solve, and the solver
            # checks the ambient deadline every sweep.
            with deadline_scope(0.001):
                with pytest.raises(DeadlineExceededError):
                    manager.view(sid, objective="ica")

            tight = ServiceClient(
                server.base_url, deadline_ms=0.001, breaker=False
            )
            with pytest.raises(ServiceClientError) as info:
                tight.view(sid, objective="ica")
            assert info.value.status == 503
            assert info.value.payload["kind"] == "deadline_exceeded"
            # Deliberately non-retryable: resending the same budget would
            # just burn it again.
            assert tight.last_attempts == 1
            assert tight.counters["deadline_exceeded"] == 1
            assert tight.counters["retries"] == 0

            # A sane budget on the same session still gets its view.
            roomy = ServiceClient(
                server.base_url, deadline_ms=60_000, breaker=False
            )
            view = roomy.view(sid, objective="ica")
            assert "axes" in view
        finally:
            server.stop()

    def test_malformed_deadline_header_is_a_400(self, two_cluster_data):
        manager = SessionManager({"wl": two_cluster_data[0]})
        server = start_background(ServiceAPI(manager))
        try:
            request = urllib.request.Request(
                f"{server.base_url}/v1/datasets",
                headers={"X-Repro-Deadline-Ms": "soon"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 400
        finally:
            server.stop()


def _read_until(worker, needle, timeout=60.0):
    """Read worker stdout lines until one contains ``needle``."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        if worker.poll() is not None:
            break
        line = worker.stdout.readline()
        if not line:
            break
        lines.append(line)
        if needle in line:
            return line, lines
    pytest.fail(
        f"never saw {needle!r} in serve output; got: {''.join(lines)}"
        f"{worker.stderr.read() if worker.poll() is not None else ''}"
    )


def test_sigterm_drains_checkpoints_and_restart_resumes(tmp_path):
    """SIGTERM mid-session: drain, exit 0, successor serves the session."""
    store_dir = tmp_path / "sessions"
    env = {
        "PYTHONPATH": _REPO_SRC,
        "PATH": "/usr/bin:/bin:/usr/local/bin",
        "PYTHONUNBUFFERED": "1",
    }
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--store-dir", str(store_dir),
        "--drain-budget", "5",
    ]
    worker = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env,
    )
    try:
        banner, _ = _read_until(worker, "repro service on http://")
        port = int(banner.rsplit(":", 1)[1])
        client = ServiceClient(
            f"http://127.0.0.1:{port}", breaker=False
        )
        sid = client.create_session("three-d", session_id="term", seed=7)
        client.mark_cluster(sid, rows=range(8), label="pre-term")
        before = client.view(sid)

        os.kill(worker.pid, signal.SIGTERM)
        worker.wait(timeout=60)
        assert worker.returncode == 0
        out, err = worker.communicate(timeout=10)
        combined = "".join([out or "", err or ""])
        assert "drained:" in combined
        assert "1 session(s) checkpointed" in combined
    finally:
        if worker.poll() is None:  # pragma: no cover - cleanup on failure
            worker.kill()
            worker.wait(timeout=30)
        worker.stdout.close()
        worker.stderr.close()

    # A successor on the same store resumes the checkpointed session and
    # serves the identical view.
    worker2 = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env,
    )
    try:
        banner, _ = _read_until(worker2, "repro service on http://")
        port2 = int(banner.rsplit(":", 1)[1])
        client2 = ServiceClient(f"http://127.0.0.1:{port2}", breaker=False)
        resumed = client2.session("term")
        assert [f["label"] for f in resumed["feedback_log"]] == ["pre-term"]
        after = client2.view("term")
        np.testing.assert_array_equal(
            np.asarray(after["axes"]), np.asarray(before["axes"])
        )
    finally:
        worker2.kill()
        worker2.wait(timeout=30)
        worker2.stdout.close()
        worker2.stderr.close()
