"""Unit tests for the repro.resilience primitives.

Deadlines (ambient scope semantics), admission control (shed / drain),
retry machinery (classification, jittered backoff, circuit breaker),
and the chaos registry (spec grammar, firing discipline, event log).
"""

import random
import time

import pytest

from repro.resilience import (
    MAX_TRACKED_BREAKERS,
    AdmissionController,
    BreakerOpen,
    ChaosError,
    CircuitBreaker,
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
    backoff_delay,
    breaker_for,
    check_deadline,
    classify,
    current_deadline,
    deadline_scope,
    reset_breakers,
    run_drain,
    tracked_breaker_count,
)
from repro.resilience.retry import BREAKER_IDLE_SECONDS
from repro.resilience import chaos as chaos_module
from repro.resilience.chaos import (
    ChaosRegistry,
    FaultSpec,
    parse_chaos,
)


class TestDeadline:
    def test_no_deadline_is_a_noop(self):
        assert current_deadline() is None
        check_deadline()  # must not raise

    def test_scope_installs_and_removes(self):
        with deadline_scope(5_000) as deadline:
            assert deadline is not None
            assert current_deadline() is deadline
            assert deadline.budget_ms == 5_000
            check_deadline()  # plenty of time left
        assert current_deadline() is None

    def test_none_or_nonpositive_budget_installs_nothing(self):
        for budget in (None, 0, -10.0):
            with deadline_scope(budget) as deadline:
                assert deadline is None
                assert current_deadline() is None

    def test_expired_deadline_raises_with_budget_and_elapsed(self):
        with deadline_scope(0.01):  # 10 microseconds
            time.sleep(0.002)
            with pytest.raises(DeadlineExceededError) as info:
                check_deadline()
        assert info.value.budget_ms == pytest.approx(0.01)
        assert info.value.elapsed_ms >= 0.01

    def test_nested_scope_keeps_the_tighter_outer_deadline(self):
        with deadline_scope(50) as outer:
            with deadline_scope(60_000):
                # The inner budget is longer: the outer deadline governs,
                # so a sub-operation can never outlive its request.
                assert current_deadline() is outer
            assert current_deadline() is outer

    def test_nested_scope_allows_a_tighter_inner_deadline(self):
        with deadline_scope(60_000) as outer:
            with deadline_scope(50) as inner:
                assert inner is not outer
                assert current_deadline() is inner
            assert current_deadline() is outer


class TestAdmissionController:
    def test_unbounded_controller_counts_but_never_sheds(self):
        ctrl = AdmissionController(max_inflight=None)
        with ctrl.admit():
            with ctrl.admit():
                assert ctrl.inflight == 2
        assert ctrl.inflight == 0
        assert ctrl.stats()["shed_overload"] == 0

    def test_sheds_past_the_bound_with_retry_after(self):
        ctrl = AdmissionController(max_inflight=1, retry_after=2.5)
        with ctrl.admit():
            with pytest.raises(OverloadedError) as info:
                with ctrl.admit():
                    pass  # pragma: no cover - never admitted
            assert info.value.retry_after == 2.5
            assert info.value.limit == 1
        # Slot freed: admission works again.
        with ctrl.admit():
            pass
        stats = ctrl.stats()
        assert stats["shed_overload"] == 1
        assert stats["admitted"] == 2  # the shed request was never admitted

    def test_exempt_requests_bypass_the_bound_and_the_drain(self):
        ctrl = AdmissionController(max_inflight=1)
        with ctrl.admit():
            with ctrl.admit(exempt=True):
                assert ctrl.inflight == 1  # exempt is not counted
        ctrl.begin_drain()
        with ctrl.admit(exempt=True):
            pass  # still answered while draining

    def test_drain_refuses_new_work(self):
        ctrl = AdmissionController()
        assert ctrl.begin_drain() is True
        assert ctrl.begin_drain() is False  # idempotent
        with pytest.raises(DrainingError):
            with ctrl.admit():
                pass  # pragma: no cover
        assert ctrl.stats()["shed_draining"] == 1

    def test_wait_idle_returns_once_inflight_reaches_zero(self):
        import threading

        ctrl = AdmissionController()
        release = threading.Event()

        def hold():
            with ctrl.admit():
                release.wait(timeout=5.0)

        thread = threading.Thread(target=hold)
        thread.start()
        while ctrl.inflight == 0:
            time.sleep(0.001)
        assert ctrl.wait_idle(0.05) is False  # budget too small
        release.set()
        assert ctrl.wait_idle(5.0) is True
        thread.join()

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


class _Failure:
    """Duck-typed stand-in for ServiceClientError in classify tests."""

    def __init__(self, status, refused=False, retry_after=None):
        self.status = status
        self.connection_refused = refused
        self.retry_after = retry_after


class TestClassify:
    def test_connection_refused_always_retryable(self):
        decision = classify(_Failure(0, refused=True), "POST")
        assert decision.retryable and decision.kind == "connection_refused"

    def test_ambiguous_transport_failure_safe_only_when_idempotent(self):
        assert classify(_Failure(0), "GET").retryable
        assert classify(_Failure(0), "HEAD").retryable
        assert not classify(_Failure(0), "POST").retryable
        assert classify(
            _Failure(0), "POST", idempotency_key="k1"
        ).retryable

    def test_503_with_retry_after_is_server_retryable(self):
        decision = classify(_Failure(503, retry_after=1.5), "POST")
        assert decision.retryable
        assert decision.kind == "server_retryable"
        assert decision.retry_after == 1.5

    def test_answered_statuses_are_final(self):
        for status, retry_after in ((404, None), (400, None), (503, None),
                                    (500, None), (200, None)):
            decision = classify(_Failure(status, retry_after=retry_after),
                                "GET")
            assert not decision.retryable
            assert decision.kind == "final"


class TestBackoffDelay:
    def test_zero_base_never_sleeps(self):
        assert backoff_delay(0, 0.0, 2.0) == 0.0
        assert backoff_delay(5, 0.0, 2.0) == 0.0

    def test_draw_is_bounded_by_cap_and_exponential_ceiling(self):
        rng = random.Random(7)
        for attempt in range(8):
            delay = backoff_delay(attempt, 0.1, 2.0, rng=rng)
            assert 0.0 <= delay <= min(2.0, 0.1 * 2 ** attempt)

    def test_floor_wins_over_a_small_draw(self):
        rng = random.Random(7)
        for _ in range(20):
            assert backoff_delay(0, 0.001, 2.0, rng=rng, floor=0.5) >= 0.5

    def test_floor_applies_even_with_zero_base(self):
        assert backoff_delay(0, 0.0, 2.0, floor=1.25) == 1.25


class TestCircuitBreaker:
    def _make(self, threshold=3, cooldown=10.0):
        clock = {"now": 100.0}
        breaker = CircuitBreaker(
            "http://x", failure_threshold=threshold, cooldown=cooldown,
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(BreakerOpen) as info:
            breaker.acquire()
        assert info.value.retry_after <= 10.0
        assert breaker.stats()["rejected"] == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock["now"] += 10.0
        breaker.acquire()  # the probe
        assert breaker.state == "half-open"
        with pytest.raises(BreakerOpen):
            breaker.acquire()  # anyone else fails fast

    def test_probe_success_closes_probe_failure_reopens(self):
        breaker, clock = self._make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock["now"] += 10.0
        breaker.acquire()
        breaker.record_success()
        assert breaker.state == "closed"

        breaker.record_failure()  # trip again
        clock["now"] += 10.0
        breaker.acquire()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        # opened counts every closed/half-open -> open transition:
        # first trip, second trip, and the failed-probe reopen.
        assert breaker.stats()["opened"] == 3
        # A fresh cooldown must elapse before the next probe.
        with pytest.raises(BreakerOpen):
            breaker.acquire()

    def test_shared_registry_hands_out_one_breaker_per_host(self):
        reset_breakers()
        try:
            a = breaker_for("http://host-a")
            assert breaker_for("http://host-a") is a
            assert breaker_for("http://host-b") is not a
        finally:
            reset_breakers()


class TestBreakerRegistryBounds:
    """The shared registry must not grow with the set of hosts ever seen.

    Regression for an unbounded-dict leak: a client sweeping many
    one-shot hosts (or an attacker varying the Host header) used to pin
    a CircuitBreaker per host forever.
    """

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        reset_breakers()
        yield
        reset_breakers()

    def test_registry_is_capped(self):
        for i in range(MAX_TRACKED_BREAKERS * 4):
            breaker_for(f"http://host-{i}")
        assert tracked_breaker_count() == MAX_TRACKED_BREAKERS

    def test_cap_evicts_least_recently_requested(self):
        hot = breaker_for("http://hot")
        for i in range(MAX_TRACKED_BREAKERS * 2):
            breaker_for(f"http://cold-{i}")
            breaker_for("http://hot")  # keep it at the MRU end
        assert breaker_for("http://hot") is hot
        # The earliest cold hosts fell off the LRU end.
        assert breaker_for("http://cold-0") is not None
        assert tracked_breaker_count() <= MAX_TRACKED_BREAKERS

    def test_idle_breakers_are_forgotten(self, monkeypatch):
        from repro.resilience import retry as retry_module

        clock = {"now": 1000.0}
        monkeypatch.setattr(
            retry_module.time, "monotonic", lambda: clock["now"]
        )
        stale = breaker_for("http://stale")
        clock["now"] += BREAKER_IDLE_SECONDS + 1.0
        breaker_for("http://fresh")  # any access sweeps idle entries
        assert tracked_breaker_count() == 1
        assert breaker_for("http://stale") is not stale

    def test_evicted_breaker_resets_shared_view_to_closed(
        self, monkeypatch
    ):
        from repro.resilience import retry as retry_module

        clock = {"now": 1000.0}
        monkeypatch.setattr(
            retry_module.time, "monotonic", lambda: clock["now"]
        )
        held = breaker_for("http://flaky", failure_threshold=1)
        held.record_failure()
        assert held.state == "open"
        clock["now"] += BREAKER_IDLE_SECONDS + 1.0
        breaker_for("http://other")  # sweep
        # A client still holding the evicted breaker keeps its state …
        assert held.state == "open"
        # … but the shared view of the host starts closed again.
        fresh = breaker_for("http://flaky")
        assert fresh is not held
        assert fresh.state == "closed"


class TestChaos:
    def test_parse_grammar(self):
        faults = parse_chaos(
            "api.dispatch:latency:ms=50:p=0.3,"
            "manager.feedback.post_commit:kill:after=3:times=1"
        )
        assert faults == [
            FaultSpec("api.dispatch", "latency", ms=50.0, p=0.3),
            FaultSpec("manager.feedback.post_commit", "kill",
                      after=3, times=1),
        ]

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            parse_chaos("just-a-point")
        with pytest.raises(ValueError):
            parse_chaos("api.dispatch:explode")
        with pytest.raises(ValueError):
            parse_chaos("api.dispatch:error:frequency=2")
        with pytest.raises(ValueError):
            parse_chaos("api.dispatch:error:p=2.0")

    def test_error_fault_raises_and_respects_times_cap(self):
        registry = ChaosRegistry("point.a:error:times=2")
        for _ in range(2):
            with pytest.raises(ChaosError):
                registry.hit("point.a")
        assert registry.hit("point.a") is None  # cap reached
        assert registry.stats()["faults"][0]["fired"] == 2

    def test_after_skips_the_first_n_hits(self):
        registry = ChaosRegistry("point.a:error:after=2")
        assert registry.hit("point.a") is None
        assert registry.hit("point.a") is None
        with pytest.raises(ChaosError):
            registry.hit("point.a")

    def test_probability_draws_are_seeded_and_reproducible(self):
        def trace(seed):
            registry = ChaosRegistry("p:error:p=0.5", seed=seed)
            fired = []
            for _ in range(40):
                try:
                    registry.hit("p")
                    fired.append(0)
                except ChaosError:
                    fired.append(1)
            return fired

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)
        assert 0 < sum(trace(11)) < 40

    def test_torn_fault_is_returned_to_the_caller(self):
        registry = ChaosRegistry("server.respond:torn")
        fault = registry.hit("server.respond")
        assert fault is not None and fault.kind == "torn"

    def test_module_hit_is_a_noop_when_disabled(self):
        chaos_module.disable_chaos()
        assert chaos_module.active_chaos() is None
        assert chaos_module.hit("api.dispatch") is None

    def test_configure_from_env(self, tmp_path):
        log = tmp_path / "chaos.jsonl"
        registry = chaos_module.configure_from_env({
            "REPRO_CHAOS": "point.b:error:times=1",
            "REPRO_CHAOS_SEED": "3",
            "REPRO_CHAOS_LOG": str(log),
        })
        try:
            assert registry is chaos_module.active_chaos()
            with pytest.raises(ChaosError):
                chaos_module.hit("point.b")
            assert "point.b" in log.read_text()
        finally:
            chaos_module.disable_chaos()
        assert chaos_module.configure_from_env({}) is None

    def test_unknown_point_costs_nothing(self):
        registry = ChaosRegistry("point.a:error")
        assert registry.hit("point.never") is None


class TestRunDrain:
    def test_drain_checkpoints_and_reports(self, two_cluster_data):
        from repro.service.manager import SessionManager
        from repro.service.store import MemoryStore

        data, _ = two_cluster_data
        manager = SessionManager(
            {"wl": data}, store=MemoryStore()
        )
        manager.create("wl", session_id="drain-a", seed=0)
        ctrl = AdmissionController()
        called = []
        report = run_drain(
            ctrl, manager, budget_seconds=1.0,
            shutdown=lambda: called.append(True),
        )
        assert report["initiated"] is True
        assert report["idle"] is True
        assert report["abandoned_inflight"] == 0
        assert report["checkpointed"] == 1
        assert called == [True]
        assert ctrl.draining
        with pytest.raises(DrainingError):
            with ctrl.admit():
                pass  # pragma: no cover

    def test_drain_shutdown_error_is_reported_not_raised(self, two_cluster_data):
        from repro.service.manager import SessionManager

        data, _ = two_cluster_data
        manager = SessionManager({"wl": data})

        def broken_shutdown():
            raise RuntimeError("socket already closed")

        report = run_drain(
            AdmissionController(), manager, budget_seconds=0.1,
            shutdown=broken_shutdown,
        )
        assert "socket already closed" in report["shutdown_error"]
