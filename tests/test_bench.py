"""Tests for the `repro bench` suites and baseline regression gate."""

import json

import numpy as np
import pytest

import repro.bench as bench
from repro.cli import main
from repro.core.equivalence import build_equivalence_classes


#: Tiny workloads so the whole CLI path runs in well under a second.
_TINY = {"structural": 3, "d": 4, "n": 64, "sweeps": 2, "repeats": 1}
_TINY_PROJECTION = {"n": 48, "d": 3, "restarts": 2, "iterations": 4,
                    "scatter_classes": 6, "repeats": 1}
_TINY_OBS = {"structural": 3, "d": 4, "n": 64, "sweeps": 2, "solves": 1,
             "repeats": 1, "merge_shards": 2, "history_samples": 3}


@pytest.fixture
def tiny_sizes(monkeypatch):
    monkeypatch.setitem(bench.SIZES, "quick", dict(_TINY))
    monkeypatch.setitem(
        bench.PROJECTION_SIZES, "quick", dict(_TINY_PROJECTION)
    )
    monkeypatch.setitem(bench.OBS_SIZES, "quick", dict(_TINY_OBS))


class TestWorkload:
    def test_many_class_workload_shape(self):
        data, constraints = bench.many_class_workload(4, 5, 128, seed=0)
        assert data.shape == (128, 5)
        # 2d margins + `structural` half constraints.
        assert len(constraints) == 2 * 5 + 4
        classes = build_equivalence_classes(128, constraints)
        # Random halves shatter the rows into many classes (up to 2^4).
        assert classes.n_classes > 4

    def test_workload_is_deterministic(self):
        data1, cs1 = bench.many_class_workload(3, 4, 64, seed=7)
        data2, cs2 = bench.many_class_workload(3, 4, 64, seed=7)
        np.testing.assert_array_equal(data1, data2)
        for a, b in zip(cs1, cs2):
            np.testing.assert_array_equal(a.w, b.w)
            np.testing.assert_array_equal(a.rows, b.rows)


class TestSuite:
    def test_payload_shape_and_artifact(self, tiny_sizes, tmp_path):
        payload = bench.run_core_solver_suite(quick=True, seed=0)
        assert payload["suite"] == "core_solver"
        assert payload["mode"] == "quick"
        for key in ("optim_sweep", "whiten", "sample", "init", "equivalence"):
            assert f"{key}_vectorized_s" in payload["timings"]
            assert f"{key}_reference_s" in payload["timings"]
            assert payload["speedups"][key] > 0
        path = bench.write_payload(payload, tmp_path)
        assert path.name == "BENCH_core_solver.json"
        assert json.loads(path.read_text())["workload"]["n"] == _TINY["n"]

    def test_projection_payload_shape_and_artifact(self, tiny_sizes, tmp_path):
        payload = bench.run_projection_suite(quick=True, seed=0)
        assert payload["suite"] == "projection"
        assert payload["mode"] == "quick"
        for key in ("fastica", "fastica_restarts", "scatter"):
            assert f"{key}_vectorized_s" in payload["timings"]
            assert f"{key}_reference_s" in payload["timings"]
            assert payload["speedups"][key] > 0
        path = bench.write_payload(payload, tmp_path)
        assert path.name == "BENCH_projection.json"
        saved = json.loads(path.read_text())
        assert saved["workload"]["restarts"] == _TINY_PROJECTION["restarts"]

    def test_obs_payload_shape_and_artifact(self, tiny_sizes, tmp_path):
        payload = bench.run_obs_suite(quick=True, seed=0)
        assert payload["suite"] == "obs"
        assert payload["mode"] == "quick"
        timings = payload["timings"]
        for key in (
            "solve_unprofiled_s", "solve_profiled_s",
            "profiler_overhead_ratio", "history_sample_s",
            "snapshot_merge_s",
        ):
            assert key in timings
        assert timings["profiler_overhead_ratio"] > 0
        profiling = payload["profiling"]
        assert profiling["bound"] == bench.PROFILER_OVERHEAD_BOUND
        assert profiling["hz"] == pytest.approx(100.0)
        assert isinstance(profiling["within_bound"], bool)
        # ratio is rounded to 4dp in the section, 6dp in timings
        assert profiling["ratio"] == pytest.approx(
            timings["profiler_overhead_ratio"], abs=5e-5
        )
        path = bench.write_payload(payload, tmp_path)
        assert path.name == "BENCH_obs.json"
        saved = json.loads(path.read_text())
        assert saved["workload"]["merge_shards"] == _TINY_OBS["merge_shards"]
        # the overhead number is recorded in the artifact (acceptance)
        assert "profiling" in saved

    def test_obs_profiling_section_rendered(self, tiny_sizes):
        payload = bench.run_obs_suite(quick=True, seed=0)
        text = bench.format_payload(payload)
        assert "profiling:" in text
        assert "ratio" in text

    def test_obs_ratio_gated_by_baselines(self, tiny_sizes, tmp_path):
        payload = bench.run_obs_suite(quick=True, seed=0)
        gate = tmp_path / "gate.json"
        gate.write_text(json.dumps({
            "tolerance": 2.0,
            "obs": {"quick": {"profiler_overhead_ratio": 0.55}},
        }))
        # force a breach: a ratio above baseline x tolerance must fail
        payload["timings"]["profiler_overhead_ratio"] = 1.2
        failures = bench.check_baselines(payload, gate)
        assert failures and "profiler_overhead_ratio" in failures[0]
        payload["timings"]["profiler_overhead_ratio"] = 1.05
        assert bench.check_baselines(payload, gate) == []

    def test_check_baselines_passes_and_fails(self, tiny_sizes, tmp_path):
        payload = bench.run_core_solver_suite(quick=True, seed=0)
        # Legacy flat layout (mode -> budgets) still read.
        generous = tmp_path / "ok.json"
        generous.write_text(
            json.dumps({"tolerance": 2.0, "quick": {
                "optim_sweep_vectorized_s": 1000.0}})
        )
        assert bench.check_baselines(payload, generous) == []
        strict = tmp_path / "bad.json"
        strict.write_text(
            json.dumps({"tolerance": 1.0, "quick": {
                "optim_sweep_vectorized_s": 1e-12,
                "missing_metric_s": 1.0}})
        )
        failures = bench.check_baselines(payload, strict)
        assert len(failures) == 2
        assert any("exceeds" in f for f in failures)
        assert any("missing" in f for f in failures)

    def test_check_baselines_suite_keyed_layout(self, tiny_sizes, tmp_path):
        payload = bench.run_projection_suite(quick=True, seed=0)
        suite_keyed = tmp_path / "suites.json"
        suite_keyed.write_text(
            json.dumps({
                "tolerance": 2.0,
                "core_solver": {"quick": {"optim_sweep_vectorized_s": 1e-12}},
                "projection": {"quick": {"fastica_vectorized_s": 1000.0}},
            })
        )
        # The projection payload is judged only by its own section.
        assert bench.check_baselines(payload, suite_keyed) == []
        strict = tmp_path / "strict.json"
        strict.write_text(
            json.dumps({
                "tolerance": 1.0,
                "projection": {"quick": {"fastica_vectorized_s": 1e-12}},
            })
        )
        failures = bench.check_baselines(payload, strict)
        assert failures and "exceeds" in failures[0]

    def test_legacy_flat_file_never_judges_other_suites(
        self, tiny_sizes, tmp_path
    ):
        """A pre-suite-keyed baselines file only described core_solver;
        a projection payload must get the 'section missing' error, not be
        graded against (or report missing metrics from) core budgets."""
        payload = bench.run_projection_suite(quick=True, seed=0)
        legacy = tmp_path / "legacy.json"
        legacy.write_text(
            json.dumps({"tolerance": 2.0, "quick": {
                "optim_sweep_vectorized_s": 1e-12}})
        )
        failures = bench.check_baselines(payload, legacy)
        assert len(failures) == 1
        assert "would check nothing" in failures[0]
        assert "optim_sweep" not in failures[0]

    def test_check_baselines_missing_mode_section_fails(self, tmp_path):
        payload = {
            "suite": "core_solver",
            "mode": "quick",
            "timings": {"optim_sweep_vectorized_s": 0.1},
        }
        no_mode = tmp_path / "no_mode.json"
        no_mode.write_text(
            json.dumps({"tolerance": 2.0, "core_solver": {"full": {}}})
        )
        failures = bench.check_baselines(payload, no_mode)
        assert failures and "'quick'" in failures[0]
        assert "would check nothing" in failures[0]

    def test_committed_baselines_cover_both_suites(self):
        committed = json.loads(
            (
                __import__("pathlib").Path(bench.__file__).resolve().parents[2]
                / "benchmarks"
                / "baselines.json"
            ).read_text()
        )
        for suite in ("core_solver", "projection", "store", "obs"):
            assert suite in committed, f"baselines.json lost its {suite} section"
            for mode in ("quick", "full"):
                assert committed[suite][mode], (suite, mode)


class TestCli:
    def test_bench_command_writes_both_artifacts(
        self, tiny_sizes, tmp_path, capsys
    ):
        status = main(
            ["bench", "--quick", "--output-dir", str(tmp_path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "suite core_solver (quick)" in out
        assert "suite projection (quick)" in out
        assert "suite obs (quick)" in out
        assert (tmp_path / "BENCH_core_solver.json").exists()
        assert (tmp_path / "BENCH_projection.json").exists()
        assert (tmp_path / "BENCH_obs.json").exists()

    def test_bench_command_single_suite(self, tiny_sizes, tmp_path, capsys):
        status = main(
            [
                "bench",
                "--quick",
                "--suite",
                "projection",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert status == 0
        assert "suite projection (quick)" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_core_solver.json").exists()
        assert (tmp_path / "BENCH_projection.json").exists()

    def test_bench_command_check_failure_exits_nonzero(
        self, tiny_sizes, tmp_path, capsys
    ):
        strict = tmp_path / "strict.json"
        strict.write_text(
            json.dumps({
                "tolerance": 1.0,
                "core_solver": {"quick": {"optim_sweep_vectorized_s": 1e-12}},
                "projection": {"quick": {"fastica_vectorized_s": 1e-12}},
            })
        )
        status = main(
            [
                "bench",
                "--quick",
                "--output-dir",
                str(tmp_path),
                "--check",
                str(strict),
            ]
        )
        assert status == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        # Both suites' regressions are reported, not just the first.
        assert "optim_sweep_vectorized_s" in err
        assert "fastica_vectorized_s" in err
