"""Tests for the `repro bench` suites and baseline regression gate."""

import json

import numpy as np
import pytest

import repro.bench as bench
from repro.cli import main
from repro.core.equivalence import build_equivalence_classes


#: Tiny workload so the whole CLI path runs in well under a second.
_TINY = {"structural": 3, "d": 4, "n": 64, "sweeps": 2, "repeats": 1}


@pytest.fixture
def tiny_sizes(monkeypatch):
    monkeypatch.setitem(bench.SIZES, "quick", dict(_TINY))


class TestWorkload:
    def test_many_class_workload_shape(self):
        data, constraints = bench.many_class_workload(4, 5, 128, seed=0)
        assert data.shape == (128, 5)
        # 2d margins + `structural` half constraints.
        assert len(constraints) == 2 * 5 + 4
        classes = build_equivalence_classes(128, constraints)
        # Random halves shatter the rows into many classes (up to 2^4).
        assert classes.n_classes > 4

    def test_workload_is_deterministic(self):
        data1, cs1 = bench.many_class_workload(3, 4, 64, seed=7)
        data2, cs2 = bench.many_class_workload(3, 4, 64, seed=7)
        np.testing.assert_array_equal(data1, data2)
        for a, b in zip(cs1, cs2):
            np.testing.assert_array_equal(a.w, b.w)
            np.testing.assert_array_equal(a.rows, b.rows)


class TestSuite:
    def test_payload_shape_and_artifact(self, tiny_sizes, tmp_path):
        payload = bench.run_core_solver_suite(quick=True, seed=0)
        assert payload["suite"] == "core_solver"
        assert payload["mode"] == "quick"
        for key in ("optim_sweep", "whiten", "sample", "init", "equivalence"):
            assert f"{key}_vectorized_s" in payload["timings"]
            assert f"{key}_reference_s" in payload["timings"]
            assert payload["speedups"][key] > 0
        path = bench.write_payload(payload, tmp_path)
        assert path.name == "BENCH_core_solver.json"
        assert json.loads(path.read_text())["workload"]["n"] == _TINY["n"]

    def test_check_baselines_passes_and_fails(self, tiny_sizes, tmp_path):
        payload = bench.run_core_solver_suite(quick=True, seed=0)
        generous = tmp_path / "ok.json"
        generous.write_text(
            json.dumps({"tolerance": 2.0, "quick": {
                "optim_sweep_vectorized_s": 1000.0}})
        )
        assert bench.check_baselines(payload, generous) == []
        strict = tmp_path / "bad.json"
        strict.write_text(
            json.dumps({"tolerance": 1.0, "quick": {
                "optim_sweep_vectorized_s": 1e-12,
                "missing_metric_s": 1.0}})
        )
        failures = bench.check_baselines(payload, strict)
        assert len(failures) == 2
        assert any("exceeds" in f for f in failures)
        assert any("missing" in f for f in failures)

    def test_check_baselines_missing_mode_section_fails(self, tmp_path):
        payload = {"mode": "quick", "timings": {"optim_sweep_vectorized_s": 0.1}}
        no_mode = tmp_path / "no_mode.json"
        no_mode.write_text(json.dumps({"tolerance": 2.0, "full": {}}))
        failures = bench.check_baselines(payload, no_mode)
        assert failures and "no 'quick' section" in failures[0]


class TestCli:
    def test_bench_command_writes_artifact(self, tiny_sizes, tmp_path, capsys):
        status = main(
            ["bench", "--quick", "--output-dir", str(tmp_path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "suite core_solver (quick)" in out
        assert (tmp_path / "BENCH_core_solver.json").exists()

    def test_bench_command_check_failure_exits_nonzero(
        self, tiny_sizes, tmp_path, capsys
    ):
        strict = tmp_path / "strict.json"
        strict.write_text(
            json.dumps({"tolerance": 1.0, "quick": {
                "optim_sweep_vectorized_s": 1e-12}})
        )
        status = main(
            [
                "bench",
                "--quick",
                "--output-dir",
                str(tmp_path),
                "--check",
                str(strict),
            ]
        )
        assert status == 1
        assert "REGRESSION" in capsys.readouterr().err
