"""Trace context, id validation, and the perf-timer span bridge."""

from __future__ import annotations

import threading

import pytest

from repro import obs, perf
from repro.obs import trace as trace_module
from repro.obs.trace import Trace, accept_trace_id, new_trace_id


@pytest.fixture
def obs_enabled():
    """Observability on (no event sink) for the duration of one test."""
    state = obs.configure()
    yield state
    obs.disable()


class TestTraceIds:
    def test_new_ids_are_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        for trace_id in ids:
            assert accept_trace_id(trace_id) == trace_id

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "short",  # < 8 chars
            "g" * 16,  # non-hex
            "deadbeef\ninjected=1",  # log injection attempt
            "x" * 65,
            "DEADBEEFCAFE??",
        ],
    )
    def test_malformed_ids_are_replaced(self, bad):
        accepted = accept_trace_id(bad)
        assert accepted != bad
        assert len(accepted) == 32

    def test_uppercase_hex_is_normalised(self):
        assert accept_trace_id("DEADBEEF" * 2) == "deadbeef" * 2


class TestTraceContext:
    def test_start_finish_scoping(self):
        assert trace_module.current() is None
        trace = trace_module.start()
        assert trace_module.current() is trace
        trace_module.finish(trace)
        assert trace_module.current() is None

    def test_traces_are_thread_isolated(self):
        seen = {}

        def worker(name):
            trace = trace_module.start()
            seen[name] = (trace, trace_module.current())
            trace_module.finish(trace)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        traces = {id(pair[0]) for pair in seen.values()}
        assert len(traces) == 4
        for trace, current in seen.values():
            assert current is trace

    def test_span_tree_aggregates_paths(self):
        trace = Trace()
        trace.add_span("solve", 0.0, 0.5, False)
        trace.add_span("solve/init", 0.0, 0.1, False)
        trace.add_span("solve", 0.6, 0.25, True)
        tree = trace.span_tree()
        assert tree["solve"]["calls"] == 2
        assert tree["solve"]["seconds"] == pytest.approx(0.75)
        assert tree["solve"]["failed"] == 1
        assert "failed" not in tree["solve/init"]
        assert trace.span_count() == 3

    def test_span_events_preserve_order_and_detail(self):
        trace = Trace()
        trace.add_span("a", trace.started, 0.001, False)
        trace.add_span("b", trace.started, 0.002, True)
        events = trace.span_events()
        assert [e["path"] for e in events] == ["a", "b"]
        assert events[1]["failed"] is True
        assert events[0]["duration_ms"] == pytest.approx(1.0)


class TestPerfBridge:
    def test_process_registry_timers_become_spans(self, obs_enabled):
        trace = trace_module.start()
        try:
            with perf.timer("solve"):
                with perf.timer("init"):
                    pass
        finally:
            trace_module.finish(trace)
        tree = trace.span_tree()
        assert set(tree) == {"solve", "solve/init"}

    def test_counters_reach_the_trace_without_perf_enabled(self, obs_enabled):
        assert not perf.is_enabled()
        trace = trace_module.start()
        try:
            perf.add("solver.sweeps", 12)
        finally:
            trace_module.finish(trace)
        assert trace.counters == {"solver.sweeps": 12}
        # and nothing leaked into the (disabled) perf registry
        assert perf.snapshot()["counters"] == {}

    def test_failed_timer_marks_span_and_pops_stack(self, obs_enabled):
        trace = trace_module.start()
        try:
            with pytest.raises(RuntimeError):
                with perf.timer("solve"):
                    raise RuntimeError("boom")
            with perf.timer("after"):
                pass
        finally:
            trace_module.finish(trace)
        tree = trace.span_tree()
        assert tree["solve"]["failed"] == 1
        # nesting stack popped despite the exception: no "solve/after"
        assert "after" in tree

    def test_private_registries_never_feed_traces(self, obs_enabled):
        private = perf.PerfRegistry(enabled=True)
        trace = trace_module.start()
        try:
            with private.timer("private_block"):
                pass
            private.add("private_counter")
        finally:
            trace_module.finish(trace)
        assert trace.span_count() == 0
        assert trace.counters == {}

    def test_no_active_trace_is_harmless(self, obs_enabled):
        with perf.timer("solve"):
            pass
        perf.add("anything")
