"""Time-series retention and window derivation (repro.obs.timeseries)."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    counter_delta,
    derive,
    gauge_value,
    histogram_delta,
    sample_key,
)


def _registry():
    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_requests_total", "Requests.", labelnames=("route", "status")
    )
    latency = registry.histogram(
        "repro_request_duration_seconds",
        "Latency.",
        labelnames=("route",),
        buckets=(0.1, 1.0, 10.0),
    )
    sessions = registry.gauge("repro_sessions_in_memory", "Sessions.")
    return registry, requests, latency, sessions


class TestSampleKey:
    def test_no_labels_is_bare_name(self):
        assert sample_key("up", {}) == "up"

    def test_labels_are_sorted(self):
        key = sample_key("reqs", {"status": "200", "route": "GET /x"})
        assert key == 'reqs{route="GET /x",status="200"}'


class TestRecorder:
    def test_sample_and_window(self):
        registry, requests, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=4)
        requests.labels(route="GET /x", status="200").inc()
        recorder.sample()
        requests.labels(route="GET /x", status="200").inc(2)
        recorder.sample()
        window = recorder.window()
        assert len(recorder) == 2
        assert window[0]["mono"] <= window[1]["mono"]
        assert "repro_requests_total" in window[1]["families"]

    def test_capacity_bounds_the_ring(self):
        registry, _, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=3)
        for _ in range(10):
            recorder.sample()
        assert len(recorder) == 3

    def test_window_seconds_filters_by_mono(self):
        registry, _, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=16)
        old = recorder.sample()
        old["mono"] -= 100.0  # age the first sample artificially
        recorder.sample()
        recorder.sample()
        assert len(recorder.window()) == 3
        assert len(recorder.window(seconds=50.0)) == 2

    def test_thread_starts_and_stops(self):
        registry, _, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=0.01, capacity=64)
        recorder.start()
        try:
            assert recorder.running
            assert len(recorder) >= 1  # start() takes an anchor sample
        finally:
            recorder.stop()
        assert not recorder.running
        # retained samples stay readable after stop
        assert len(recorder.window()) >= 1

    def test_invalid_parameters_raise(self):
        registry, _, _, _ = _registry()
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, interval=0.0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, capacity=1)


class TestCounterDelta:
    def test_increase_over_window(self):
        registry, requests, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        requests.labels(route="GET /x", status="200").inc(3)
        first = recorder.sample()
        requests.labels(route="GET /x", status="200").inc(5)
        requests.labels(route="GET /y", status="200").inc(2)
        last = recorder.sample()
        assert counter_delta(first, last, "repro_requests_total") == 7.0
        assert counter_delta(
            first, last, "repro_requests_total", {"route": "GET /y"}
        ) == 2.0

    def test_child_born_mid_window_counts_from_zero(self):
        registry, requests, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        first = recorder.sample()
        requests.labels(route="GET /x", status="200").inc(4)
        last = recorder.sample()
        assert counter_delta(first, last, "repro_requests_total") == 4.0

    def test_counter_reset_clamps_to_end_value(self):
        # Simulate a restarted shard: the end value is *below* the start.
        registry, requests, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        requests.labels(route="GET /x", status="200").inc(10)
        first = recorder.sample()
        fresh, requests2, _, _ = _registry()
        requests2.labels(route="GET /x", status="200").inc(3)
        recorder2 = TimeSeriesRecorder(fresh, interval=60.0, capacity=8)
        last = recorder2.sample()
        assert counter_delta(first, last, "repro_requests_total") == 3.0

    def test_missing_family_is_zero(self):
        registry, _, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        first = recorder.sample()
        last = recorder.sample()
        assert counter_delta(first, last, "nope_total") == 0.0


class TestHistogramDelta:
    def test_windowed_buckets_cover_only_the_window(self):
        registry, _, latency, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        latency.labels(route="GET /x").observe(0.05)
        first = recorder.sample()
        latency.labels(route="GET /x").observe(0.5)
        latency.labels(route="GET /x").observe(5.0)
        last = recorder.sample()
        delta = histogram_delta(
            first, last, "repro_request_duration_seconds"
        )
        assert delta["count"] == 2
        assert delta["sum"] == pytest.approx(5.5)
        # cumulative per-edge increases: nothing new under 0.1
        cum = {edge: value for edge, value in delta["buckets"]}
        assert cum[0.1] == 0.0
        assert cum[1.0] == 1.0
        assert cum[10.0] == 2.0

    def test_sums_across_children(self):
        registry, _, latency, _ = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        first = recorder.sample()
        latency.labels(route="GET /x").observe(0.05)
        latency.labels(route="GET /y").observe(0.05)
        last = recorder.sample()
        delta = histogram_delta(
            first, last, "repro_request_duration_seconds"
        )
        assert delta["count"] == 2

    def test_mismatched_child_buckets_raise(self):
        registry = MetricsRegistry()
        registry.histogram(
            "h", "H.", labelnames=("k",), buckets=(1.0,)
        ).labels(k="a").observe(0.5)
        other = MetricsRegistry()
        other.histogram(
            "h", "H.", labelnames=("k",), buckets=(2.0,)
        ).labels(k="a").observe(0.5)
        first = TimeSeriesRecorder(registry, 60.0, 8).sample()
        # splice a mismatched child into the same family snapshot
        mixed = TimeSeriesRecorder(other, 60.0, 8).sample()
        mixed["families"]["h"]["samples"].extend(
            first["families"]["h"]["samples"]
        )
        with pytest.raises(ValueError, match="mismatched buckets"):
            histogram_delta(first, mixed, "h")


class TestGaugeAndDerive:
    def test_gauge_value_combines_children(self):
        registry, _, _, sessions = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        sessions.default().set(7)
        last = recorder.sample()
        assert gauge_value(last, "repro_sessions_in_memory") == 7.0
        assert math.isnan(gauge_value(last, "missing"))

    def test_derive_reports_rates_and_windowed_quantiles(self):
        registry, requests, latency, sessions = _registry()
        recorder = TimeSeriesRecorder(registry, interval=60.0, capacity=8)
        first = recorder.sample()
        for _ in range(10):
            requests.labels(route="GET /x", status="200").inc()
            latency.labels(route="GET /x").observe(0.05)
        sessions.default().set(3)
        last = recorder.sample()
        last["mono"] = first["mono"] + 5.0  # deterministic window
        out = derive(first, last)
        assert out["window_seconds"] == pytest.approx(5.0)
        counter_key = sample_key(
            "repro_requests_total", {"route": "GET /x", "status": "200"}
        )
        assert out["counters"][counter_key]["increase"] == 10.0
        assert out["counters"][counter_key]["rate"] == pytest.approx(2.0)
        hist_key = sample_key(
            "repro_request_duration_seconds", {"route": "GET /x"}
        )
        hist = out["histograms"][hist_key]
        assert hist["count"] == 10
        assert hist["mean"] == pytest.approx(0.05)
        assert 0.0 < hist["p99"] <= 0.1  # all observations in first bucket
        assert out["gauges"][sample_key(
            "repro_sessions_in_memory", {}
        )] == 3.0
