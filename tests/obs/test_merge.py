"""Shard-ready snapshot merge: commutative counters/histograms, labeled
gauges, and the split-workload ground-truth property."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry


def _shard(source=None):
    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_requests_total", "Requests.", labelnames=("route", "status")
    )
    latency = registry.histogram(
        "repro_request_duration_seconds", "Latency.",
        labelnames=("route",), buckets=(0.1, 1.0, 10.0),
    )
    sessions = registry.gauge("repro_sessions_in_memory", "Sessions.")
    return registry, requests, latency, sessions


def _counter_values(registry, family):
    spec = registry.render_json().get(family, {"samples": []})
    return {
        tuple(sorted(s["labels"].items())): s["value"]
        for s in spec["samples"]
    }


def _histogram_totals(registry, family):
    spec = registry.render_json().get(family, {"samples": []})
    return {
        tuple(sorted(s["labels"].items())): (
            tuple(tuple(row) for row in s["buckets"]),
            pytest.approx(s["sum"]),
            s["count"],
        )
        for s in spec["samples"]
    }


class TestSnapshotShape:
    def test_snapshot_is_json_ready_and_carries_source(self):
        registry, requests, latency, sessions = _shard()
        requests.labels(route="GET /x", status="200").inc(3)
        latency.labels(route="GET /x").observe(0.05)
        sessions.default().set(2)
        snap = registry.to_snapshot(source="shard-a")
        assert snap["version"] == 1
        assert snap["source"] == "shard-a"
        fam = snap["families"]["repro_requests_total"]
        assert fam["kind"] == "counter"
        assert fam["samples"][0]["value"] == 3.0

    def test_unknown_kind_rejected_on_merge(self):
        registry, *_ = _shard()
        snap = {
            "version": 1,
            "families": {
                "weird": {"kind": "summary", "help": "", "labelnames": [],
                          "samples": []}
            },
        }
        with pytest.raises(ValueError, match="kind"):
            MetricsRegistry().merge(snap)


class TestMergeSemantics:
    def test_counters_sum_across_shards(self):
        a, requests_a, _, _ = _shard()
        b, requests_b, _, _ = _shard()
        requests_a.labels(route="GET /x", status="200").inc(3)
        requests_b.labels(route="GET /x", status="200").inc(4)
        requests_b.labels(route="GET /y", status="200").inc(1)
        merged = MetricsRegistry()
        merged.merge(a.to_snapshot(source="a"))
        merged.merge(b.to_snapshot(source="b"))
        values = _counter_values(merged, "repro_requests_total")
        assert values[
            (("route", "GET /x"), ("status", "200"))
        ] == 7.0
        assert values[
            (("route", "GET /y"), ("status", "200"))
        ] == 1.0

    def test_gauges_keep_per_source_identity(self):
        a, _, _, sessions_a = _shard()
        b, _, _, sessions_b = _shard()
        sessions_a.default().set(2)
        sessions_b.default().set(5)
        merged = MetricsRegistry()
        merged.merge(a.to_snapshot(source="shard-a"))
        merged.merge(b.to_snapshot(source="shard-b"))
        values = _counter_values(merged, "repro_sessions_in_memory")
        assert values[(("source", "shard-a"),)] == 2.0
        assert values[(("source", "shard-b"),)] == 5.0

    def test_source_falls_back_to_snapshot_then_unknown(self):
        a, _, _, sessions_a = _shard()
        sessions_a.default().set(1)
        merged = MetricsRegistry()
        merged.merge(a.to_snapshot())  # no source anywhere
        values = _counter_values(merged, "repro_sessions_in_memory")
        assert values[(("source", "unknown"),)] == 1.0

    def test_histogram_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", "H.", buckets=(1.0, 2.0)).default().observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", "H.", buckets=(5.0,)).default().observe(0.5)
        merged = MetricsRegistry()
        merged.merge(a.to_snapshot(source="a"))
        with pytest.raises(ValueError, match="buckets"):
            merged.merge(b.to_snapshot(source="b"))

    def test_merge_is_order_independent(self):
        shards = []
        for i in range(3):
            registry, requests, latency, _ = _shard()
            requests.labels(route="GET /x", status="200").inc(i + 1)
            latency.labels(route="GET /x").observe(0.05 * (i + 1))
            latency.labels(route="GET /x").observe(5.0)
            shards.append(registry.to_snapshot(source=f"s{i}"))
        reference = None
        for order in itertools.permutations(range(3)):
            merged = MetricsRegistry()
            for i in order:
                merged.merge(shards[i])
            counters = _counter_values(merged, "repro_requests_total")
            hists = _histogram_totals(
                merged, "repro_request_duration_seconds"
            )
            if reference is None:
                reference = (counters, hists)
            else:
                assert (counters, hists) == reference


class TestSplitWorkloadGroundTruth:
    """Observations split across K shards then merged must equal the
    single-registry ground truth — the property that makes per-shard
    scraping safe."""

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        observations=st.lists(
            st.tuples(
                st.sampled_from(["GET /x", "GET /y", "POST /z"]),
                st.sampled_from(["200", "404", "500"]),
                st.floats(
                    min_value=0.001, max_value=20.0,
                    allow_nan=False, allow_infinity=False,
                ),
                st.integers(min_value=0, max_value=3),  # shard index
            ),
            max_size=60,
        ),
        shards=st.integers(min_value=1, max_value=4),
    )
    def test_merged_equals_single_registry(self, observations, shards):
        ground, g_requests, g_latency, _ = _shard()
        shard_state = [_shard() for _ in range(shards)]
        for route, status, value, shard_index in observations:
            # apply to the assigned shard and to the ground truth
            target = shard_state[shard_index % shards]
            target[1].labels(route=route, status=status).inc()
            target[2].labels(route=route).observe(value)
            g_requests.labels(route=route, status=status).inc()
            g_latency.labels(route=route).observe(value)
        merged = MetricsRegistry()
        for i, (registry, *_rest) in enumerate(shard_state):
            merged.merge(registry.to_snapshot(source=f"shard-{i}"))
        assert _counter_values(
            merged, "repro_requests_total"
        ) == _counter_values(ground, "repro_requests_total")
        assert _histogram_totals(
            merged, "repro_request_duration_seconds"
        ) == _histogram_totals(ground, "repro_request_duration_seconds")
