"""SLO engine: objectives, burn windows, and `repro slo check`."""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    VIEW_ROUTE,
    SLOEngine,
    default_slos,
    evaluate_samples,
    evaluate_window,
    match_labels,
)
from repro.obs.timeseries import TimeSeriesRecorder


class TestMatchLabels:
    def test_exact_wildcard_and_status_class(self):
        labels = {"route": "GET /x", "status": "503"}
        assert match_labels(labels, {"route": "GET /x"})
        assert match_labels(labels, {"status": "*"})
        assert match_labels(labels, {"status": "5xx"})
        assert not match_labels(labels, {"status": "4xx"})
        assert not match_labels(labels, {"route": "GET /y"})
        assert not match_labels({"status": "ok"}, {"status": "5xx"})
        assert not match_labels({}, {"status": "5xx"})


class TestSLODeclaration:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLO(name="x", description="", kind="nope",
                family="f", threshold=1.0)

    def test_default_slos_cover_the_paper_budget(self):
        slos = {slo.name: slo for slo in default_slos()}
        assert slos["view-latency-p99"].threshold == 2.0
        assert slos["view-latency-p99"].where == {"route": VIEW_ROUTE}
        assert slos["error-rate"].where == {"status": "5xx"}
        assert slos["cache-hit-floor"].kind == "ratio_floor"
        custom = default_slos(view_p99_budget=0.5)
        assert custom[0].threshold == 0.5


def _service_registry():
    registry = MetricsRegistry()
    latency = registry.histogram(
        "repro_request_duration_seconds", "Latency.",
        labelnames=("route", "status"),
        buckets=(0.1, 0.5, 2.0, 10.0),
    )
    requests = registry.counter(
        "repro_requests_total", "Requests.",
        labelnames=("route", "status"),
    )
    lookups = registry.counter(
        "repro_solve_cache_lookups_total", "Cache.",
        labelnames=("result",),
    )
    return registry, latency, requests, lookups


def _spaced(recorder, mono=None):
    sample = recorder.sample()
    if mono is not None:
        sample["mono"] = mono
    return sample


class TestEvaluateWindow:
    def test_quantile_ceiling_ok_and_breach(self):
        registry, latency, _, _ = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 16)
        first = _spaced(recorder, mono=0.0)
        for _ in range(20):
            latency.labels(route=VIEW_ROUTE, status="200").observe(0.05)
        last = _spaced(recorder, mono=30.0)
        slo = default_slos()[0]
        result = evaluate_window(slo, first, last)
        assert result.status == "ok"
        assert result.count == 20
        assert result.burn < 1.0
        # now inject a sustained breach: every view slower than budget
        for _ in range(50):
            latency.labels(route=VIEW_ROUTE, status="200").observe(9.0)
        worse = _spaced(recorder, mono=60.0)
        result = evaluate_window(slo, last, worse)
        assert result.status == "breach"
        assert result.measured > slo.threshold
        assert result.burn > 1.0

    def test_quantile_needs_min_count(self):
        registry, latency, _, _ = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 16)
        first = _spaced(recorder, mono=0.0)
        last = _spaced(recorder, mono=30.0)
        slo = default_slos()[0]
        assert evaluate_window(slo, first, last).status == "no_data"

    def test_error_rate_ratio_with_status_class(self):
        registry, _, requests, _ = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 16)
        first = _spaced(recorder, mono=0.0)
        for _ in range(98):
            requests.labels(route="GET /x", status="200").inc()
        requests.labels(route="GET /x", status="500").inc(2)
        last = _spaced(recorder, mono=30.0)
        slo = {s.name: s for s in default_slos()}["error-rate"]
        result = evaluate_window(slo, first, last)
        assert result.measured == pytest.approx(0.02)
        assert result.status == "breach"  # 2% > 1% ceiling

    def test_ratio_floor_burns_when_hits_dry_up(self):
        registry, _, _, lookups = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 16)
        first = _spaced(recorder, mono=0.0)
        lookups.labels(result="miss").inc(10)
        last = _spaced(recorder, mono=30.0)
        slo = {s.name: s for s in default_slos()}["cache-hit-floor"]
        result = evaluate_window(slo, first, last)
        assert result.status == "breach"
        assert math.isinf(result.burn)  # zero hits: infinite burn

    def test_ratio_floor_below_min_count_is_no_data(self):
        registry, _, _, lookups = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 16)
        first = _spaced(recorder, mono=0.0)
        lookups.labels(result="miss").inc(2)  # < min_count=5 lookups
        last = _spaced(recorder, mono=30.0)
        slo = {s.name: s for s in default_slos()}["cache-hit-floor"]
        assert evaluate_window(slo, first, last).status == "no_data"


class TestEvaluateSamples:
    def _breaching_samples(self):
        """Samples where the long window is healthy but the short window
        p99 breaches (degraded), plus a fully-breaching set."""
        registry, latency, _, _ = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 64)
        samples = [_spaced(recorder, mono=0.0)]
        for _ in range(400):
            latency.labels(route=VIEW_ROUTE, status="200").observe(0.05)
        samples.append(_spaced(recorder, mono=280.0))
        for _ in range(100):
            latency.labels(route=VIEW_ROUTE, status="200").observe(9.0)
        samples.append(_spaced(recorder, mono=300.0))
        return samples

    def test_short_only_breach_reads_degraded(self):
        samples = self._breaching_samples()
        report = evaluate_samples(
            samples, default_slos()[:1],
            short_window=60.0, long_window=300.0,
        )
        row = report["slos"][0]
        assert row["short"]["status"] == "breach"
        # long window: 400 fast + 100 slow -> p99 breaches there too,
        # so drop the slow tail below 1% for the long window instead:
        assert report["status"] in ("degraded", "violating")

    def test_ready_when_all_ok(self):
        registry, latency, _, _ = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 64)
        samples = [_spaced(recorder, mono=0.0)]
        for _ in range(50):
            latency.labels(route=VIEW_ROUTE, status="200").observe(0.05)
        samples.append(_spaced(recorder, mono=30.0))
        report = evaluate_samples(samples, default_slos()[:1])
        assert report["status"] == "ready"
        assert report["slos"][0]["status"] == "ok"

    def test_no_data_with_fewer_than_two_samples(self):
        report = evaluate_samples([], default_slos())
        assert report["status"] == "ready"
        assert all(row["status"] == "no_data" for row in report["slos"])

    def test_engine_reads_its_recorder(self):
        registry, latency, _, _ = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 64)
        recorder.sample()
        for _ in range(20):
            latency.labels(route=VIEW_ROUTE, status="200").observe(0.05)
        recorder.sample()
        engine = SLOEngine(recorder, slos=default_slos()[:1])
        report = engine.report()
        assert report["samples"] == 2
        assert report["slos"][0]["name"] == "view-latency-p99"
        json.dumps(report)  # health payload must be JSON-serializable


class TestSloCheckCli:
    """`repro slo check --history FILE` — the CI gate contract."""

    def _history_file(self, tmp_path, slow: bool):
        registry, latency, _, _ = _service_registry()
        recorder = TimeSeriesRecorder(registry, 60.0, 64)
        samples = [_spaced(recorder, mono=0.0)]
        value = 9.0 if slow else 0.05
        for _ in range(100):
            latency.labels(route=VIEW_ROUTE, status="200").observe(value)
        samples.append(_spaced(recorder, mono=301.0))
        path = tmp_path / "history.json"
        path.write_text(json.dumps({"samples": samples}))
        return path

    def test_passes_on_healthy_history(self, tmp_path, capsys):
        path = self._history_file(tmp_path, slow=False)
        code = main([
            "slo", "check", "--history", str(path),
            "--objective", "view-latency-p99",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "slo ok" in out

    def test_injected_breach_exits_nonzero_and_names_the_slo(
        self, tmp_path, capsys
    ):
        path = self._history_file(tmp_path, slow=True)
        code = main([
            "slo", "check", "--history", str(path),
            "--objective", "view-latency-p99",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "view-latency-p99" in captured.err
        assert "SLO FAILED" in captured.err

    def test_json_output(self, tmp_path, capsys):
        path = self._history_file(tmp_path, slow=True)
        code = main([
            "slo", "check", "--history", str(path), "--json",
            "--objective", "view-latency-p99",
        ])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["slos"][0]["status"] == "violating"

    def test_named_objective_with_no_data_fails(self, tmp_path, capsys):
        # cache-hit-floor has no lookups in this history: explicitly
        # asking for it must fail rather than silently pass.
        path = self._history_file(tmp_path, slow=False)
        code = main([
            "slo", "check", "--history", str(path),
            "--objective", "cache-hit-floor",
        ])
        assert code == 1
        assert "cache-hit-floor" in capsys.readouterr().err

    def test_unknown_objective_is_usage_error(self, tmp_path, capsys):
        path = self._history_file(tmp_path, slow=False)
        code = main([
            "slo", "check", "--history", str(path),
            "--objective", "made-up",
        ])
        assert code == 2

    def test_missing_history_file_is_usage_error(self, tmp_path, capsys):
        code = main([
            "slo", "check", "--history", str(tmp_path / "nope.json"),
        ])
        assert code == 2

    def test_custom_budget_flips_the_verdict(self, tmp_path, capsys):
        # healthy at the 2 s default, violating at a 10 ms budget
        path = self._history_file(tmp_path, slow=False)
        code = main([
            "slo", "check", "--history", str(path),
            "--objective", "view-latency-p99",
            "--view-p99-budget", "0.01",
        ])
        assert code == 1
