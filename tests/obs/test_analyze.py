"""The event-log analyzer behind ``repro trace``."""

from __future__ import annotations

import json

import pytest

from repro.obs.analyze import analyze_events, analyze_log, format_analysis


def _request(route, ms, *, status=200, trace_id="a" * 32, **extra):
    event = {
        "event": "error" if status >= 400 else "request",
        "trace_id": trace_id,
        "route": route,
        "method": route.split(" ")[0],
        "path": route.split(" ")[1],
        "status": status,
        "duration_ms": ms,
    }
    event.update(extra)
    return event


class TestAnalyzeEvents:
    def test_per_route_percentiles_are_exact(self):
        events = [
            _request("GET /v1/health", ms) for ms in (1.0, 2.0, 3.0, 4.0)
        ]
        report = analyze_events(events)
        stats = report["routes"]["GET /v1/health"]
        assert stats["count"] == 4
        assert stats["p50_ms"] == 2.5
        assert stats["max_ms"] == 4.0
        assert stats["errors"] == 0

    def test_errors_counted_by_kind(self):
        events = [
            _request("GET /v1/sessions/{id}", 1.0, status=404,
                     error_kind="unknown_session"),
            _request("POST /v1/sessions", 1.0, status=400,
                     error_kind="bad_request"),
            _request("POST /v1/sessions", 1.0, status=400,
                     error_kind="bad_request"),
            _request("GET /v1/health", 0.5),
        ]
        report = analyze_events(events)
        assert report["errors"]["total"] == 3
        assert report["errors"]["by_kind"] == {
            "bad_request": 2,
            "unknown_session": 1,
        }
        assert report["routes"]["POST /v1/sessions"]["errors"] == 2

    def test_slowest_are_ranked_and_capped(self):
        events = [
            _request("GET /v1/x", float(i), trace_id=f"{i:032x}")
            for i in range(20)
        ]
        report = analyze_events(events, top=5)
        slow = report["slowest"]
        assert len(slow) == 5
        assert [row["duration_ms"] for row in slow] == [19.0, 18.0, 17.0, 16.0, 15.0]
        assert slow[0]["trace_id"] == f"{19:032x}"

    def test_span_trees_merge_across_events(self):
        events = [
            _request(
                "GET /v1/x", 5.0,
                spans={"solve": {"calls": 1, "seconds": 0.004},
                       "solve/init": {"calls": 1, "seconds": 0.001}},
            ),
            _request(
                "GET /v1/x", 6.0,
                spans={"solve": {"calls": 2, "seconds": 0.005, "failed": 1}},
            ),
        ]
        report = analyze_events(events)
        solve = report["spans"]["solve"]
        assert solve["calls"] == 3
        assert solve["seconds"] == pytest.approx(0.009)
        assert solve["failed"] == 1
        assert report["spans"]["solve/init"]["calls"] == 1

    def test_cache_summary_only_when_observed(self):
        assert analyze_events([_request("GET /v1/x", 1.0)])["cache"] is None
        report = analyze_events(
            [
                _request("GET /v1/x", 1.0, cache="hit"),
                _request("GET /v1/x", 1.0, cache="miss"),
            ]
        )
        assert report["cache"] == {"hits": 1, "misses": 1}

    def test_non_request_events_are_ignored(self):
        report = analyze_events(
            [{"event": "startup"}, _request("GET /v1/x", 1.0)]
        )
        assert report["events"] == 2
        assert report["requests"] == 1


class TestEdgeCases:
    def test_empty_log_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        report = analyze_log(path)
        assert report["events"] == 0
        assert report["requests"] == 0
        assert report["routes"] == {}
        assert report["cache"] is None
        # and the renderer survives a contentless report
        assert "0 event(s)" in format_analysis(report)

    def test_interleaved_concurrent_session_traces(self):
        # two sessions' requests interleaved in arrival order, as a
        # threaded server writes them; per-route stats must not care
        events = []
        for i in range(4):
            events.append(_request(
                "GET /v1/sessions/{id}/view", 10.0 + i,
                trace_id=f"{i:032x}", session_id="sess-a",
                spans={"service_view": {"calls": 1, "seconds": 0.01}},
            ))
            events.append(_request(
                "GET /v1/sessions/{id}/view", 20.0 + i,
                trace_id=f"{i + 100:032x}", session_id="sess-b",
                spans={"service_view": {"calls": 1, "seconds": 0.02}},
            ))
        report = analyze_events(events)
        stats = report["routes"]["GET /v1/sessions/{id}/view"]
        assert stats["count"] == 8
        assert report["spans"]["service_view"]["calls"] == 8
        assert report["spans"]["service_view"]["seconds"] == pytest.approx(
            0.12
        )
        sessions = {row["session_id"] for row in report["slowest"]}
        assert sessions == {"sess-a", "sess-b"}

    def test_truncated_final_record_after_rotation(self, tmp_path):
        from repro.obs.events import EventLog

        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=256) as log:
            for i in range(8):
                log.emit(_request("GET /v1/health", float(i)))
        # crash mid-write on the live file
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"event": "request", "rou')
        report = analyze_log(path)
        assert report["requests"] == 8  # rotation spanned, partial skipped
        assert report["routes"]["GET /v1/health"]["count"] == 8

    def test_missing_root_span_tree_renders_without_total(self):
        # only child spans present (the root never completed): shares
        # cannot be computed against a root total, but nothing crashes
        events = [
            _request(
                "GET /v1/x", 5.0,
                spans={"service_view/service_fit":
                       {"calls": 2, "seconds": 0.04}},
            )
        ]
        report = analyze_events(events)
        assert report["spans"]["service_view/service_fit"]["calls"] == 2
        text = format_analysis(report)
        assert "service_fit" in text
        assert "0.0%" in text  # share falls back to zero, not a crash


class TestAnalyzeLog:
    def test_reads_jsonl_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as stream:
            for event in (
                _request("GET /v1/health", 1.5),
                _request("GET /v1/health", 2.5),
            ):
                stream.write(json.dumps(event) + "\n")
        report = analyze_log(path)
        assert report["routes"]["GET /v1/health"]["count"] == 2

    def test_format_analysis_is_human_readable(self):
        events = [
            _request(
                "GET /v1/sessions/{id}/view", 120.0,
                solver_sweeps=19, cache="miss",
                spans={"service_view": {"calls": 1, "seconds": 0.1},
                       "service_view/service_fit": {"calls": 1, "seconds": 0.08}},
            ),
            _request("GET /v1/oops", 1.0, status=404,
                     error_kind="unknown_route"),
        ]
        text = format_analysis(analyze_events(events))
        assert "GET /v1/sessions/{id}/view" in text
        assert "unknown_route=1" in text
        assert "sweeps=19" in text
        assert "service_fit" in text
