"""Sampling stack profiler: collapsed stacks, exemplars, lifecycle."""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.obs.profile import StackProfiler, collapse_frame


def _here():
    return sys._current_frames()[threading.get_ident()]


class _ParkedThread:
    """A named worker parked on an event, so sample_once (which skips the
    calling thread) always has a stack to collect."""

    def __init__(self, name="parked-thread"):
        self._ready = threading.Event()
        self._release = threading.Event()
        self.ident = None
        self._thread = threading.Thread(
            target=self._park, name=name, daemon=True
        )

    def _park(self):
        self.ident = threading.get_ident()
        self._ready.set()
        self._release.wait(10.0)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(5.0)
        return self

    def __exit__(self, *exc):
        self._release.set()
        self._thread.join()


class TestCollapseFrame:
    def test_root_first_semicolon_joined(self):
        def inner():
            return collapse_frame(_here())

        def outer():
            return inner()

        stack = outer()
        parts = stack.split(";")
        # leaf (innermost) frame last, in filestem:func form
        assert parts[-1] == "test_profile:_here"
        assert parts[-2] == "test_profile:inner"
        assert parts[-3] == "test_profile:outer"
        assert all(":" in part for part in parts)


class TestStackProfiler:
    def test_sample_once_counts_other_threads(self):
        profiler = StackProfiler()
        with _ParkedThread():
            profiler.sample_once()
            profiler.sample_once()
        assert profiler.samples >= 2
        stacks = profiler.stacks()
        parked_stacks = [s for s in stacks if s.startswith("parked-thread;")]
        assert parked_stacks
        assert any("test_profile:_park" in s for s in parked_stacks)

    def test_render_collapsed_is_flamegraph_input(self):
        profiler = StackProfiler()
        with _ParkedThread():
            profiler.sample_once()
        text = profiler.render_collapsed()
        assert text.endswith("\n")
        line = text.splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack

    def test_render_collapsed_empty_profile(self):
        assert StackProfiler().render_collapsed() == ""

    def test_write_collapsed(self, tmp_path):
        profiler = StackProfiler()
        with _ParkedThread():
            profiler.sample_once()
        out = profiler.write_collapsed(tmp_path / "deep" / "profile.txt")
        assert out.read_text().strip()

    def test_daemon_thread_samples_continuously(self):
        profiler = StackProfiler(interval=0.005)
        profiler.start()
        profiler.start()  # idempotent
        try:
            deadline = time.perf_counter() + 5.0
            while profiler.samples == 0 and time.perf_counter() < deadline:
                time.sleep(0.01)
        finally:
            profiler.stop()
        assert not profiler.running
        assert profiler.samples > 0
        stats = profiler.stats()
        assert stats["unique_stacks"] >= 1
        assert stats["interval_seconds"] == 0.005
        # own sampler thread is never profiled
        assert not any(
            s.startswith("repro-obs-profiler;") for s in profiler.stacks()
        )

    def test_excerpt_scopes_by_thread_and_time(self):
        # sample_once skips the calling thread, so park a named worker
        # and excerpt that.
        profiler = StackProfiler()
        cut = time.perf_counter()
        with _ParkedThread(name="excerpt-thread") as parked:
            profiler.sample_once()
            ident = parked.ident
        rows = profiler.excerpt(thread_ident=ident)
        assert rows
        assert rows[0]["count"] >= 1
        assert rows[0]["stack"].startswith("excerpt-thread;")
        # a cutoff in the future filters everything out
        future = time.perf_counter() + 100.0
        assert profiler.excerpt(thread_ident=ident, since=future) == []
        assert profiler.excerpt(thread_ident=ident, since=cut) == rows

    def test_reset_clears_state(self):
        profiler = StackProfiler()
        with _ParkedThread():
            profiler.sample_once()
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.stacks() == {}

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            StackProfiler(interval=0.0)


class TestModuleLevelProfiler:
    def test_start_stop_and_replace_interval(self):
        from repro import obs

        assert obs.profiler() is None or not obs.profiler().running
        first = obs.start_profiler(interval=0.5)
        try:
            assert first.running
            assert obs.start_profiler(interval=0.5) is first  # idempotent
            second = obs.start_profiler(interval=0.25)
            assert second is first  # running profiler is never replaced
        finally:
            obs.stop_profiler()
        assert obs.profiler() is not None
        assert not obs.profiler().running
        # a stopped profiler with a different cadence is replaced
        third = obs.start_profiler(interval=0.125)
        try:
            assert third.interval == 0.125
        finally:
            obs.stop_profiler()
