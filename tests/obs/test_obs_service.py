"""Observability threaded through the service: events, metrics, tracing.

These tests exercise the full request path — HTTP server, dispatch
envelope, perf-span bridge, metrics registry, JSONL sink — and pin two
contracts: the /v1 JSON error payloads are byte-identical with
observability on, and the disabled hot-path hooks stay in the same cost
class as a disabled ``perf.add``.
"""

from __future__ import annotations

import json
import re
import time
import urllib.request

import numpy as np
import pytest

from repro import obs, perf
from repro.obs import parse_prometheus, read_events
from repro.service.api import ServiceAPI, TextResponse
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import SessionManager
from repro.service.server import ReproServer

_TRACE_RE = re.compile(r"^[0-9a-f]{32}$")


@pytest.fixture
def data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(80, 4))


@pytest.fixture
def obs_log(tmp_path):
    """Observability enabled with a JSONL sink; always disabled after."""
    path = tmp_path / "events.jsonl"
    state = obs.configure(event_log=str(path))
    yield state, path
    obs.disable()


@pytest.fixture
def live(data, obs_log):
    """(server, client, manager, state, log path) with obs enabled."""
    state, path = obs_log
    manager = SessionManager({"demo": data})
    server = ReproServer(manager, port=0, max_body_bytes=64 * 1024)
    server.start_background()
    client = ServiceClient(server.base_url)
    yield server, client, manager, state, path
    server.stop()


def _events(path):
    return list(read_events(path))


class TestRequestEvents:
    def test_every_request_emits_one_event_with_a_trace_id(self, live):
        server, client, manager, state, path = live
        sid = client.create_session("demo")
        client.view(sid)
        client.delete_session(sid)
        events = _events(path)
        assert [e["event"] for e in events] == ["request"] * 3
        assert [e["status"] for e in events] == [201, 200, 200]
        for event in events:
            assert _TRACE_RE.match(event["trace_id"])
        assert len({e["trace_id"] for e in events}) == 3

    def test_server_adopts_and_echoes_the_client_trace_id(self, live):
        server, client, manager, state, path = live
        request = urllib.request.Request(
            server.base_url + "/v1/health",
            headers={obs.TRACE_HEADER: "feedc0de" * 4},
        )
        with urllib.request.urlopen(request) as resp:
            assert resp.headers[obs.TRACE_HEADER] == "feedc0de" * 4
        assert _events(path)[-1]["trace_id"] == "feedc0de" * 4

    def test_malformed_header_id_is_replaced_not_logged(self, live):
        server, client, manager, state, path = live
        request = urllib.request.Request(
            server.base_url + "/v1/health",
            headers={obs.TRACE_HEADER: "not hex at all!!"},
        )
        with urllib.request.urlopen(request) as resp:
            echoed = resp.headers[obs.TRACE_HEADER]
        assert _TRACE_RE.match(echoed)
        assert _events(path)[-1]["trace_id"] == echoed

    def test_client_sends_ids_the_server_keeps(self, live):
        server, client, manager, state, path = live
        client.health()
        assert _events(path)[-1]["trace_id"] == client.last_trace_id

    def test_view_event_carries_route_session_cache_and_spans(self, live):
        server, client, manager, state, path = live
        sid = client.create_session("demo")
        client.mark_cluster(sid, list(range(10)), label="blob")
        client.view(sid)
        event = _events(path)[-1]
        assert event["route"] == "GET /v1/sessions/{id}/view"
        assert event["session_id"] == sid
        assert event["cache"] in ("hit", "miss")
        assert event["solver_sweeps"] >= 1
        assert any(p.startswith("service_view") for p in event["spans"])

    def test_slow_threshold_promotes_span_detail(self, data, tmp_path):
        path = tmp_path / "slow.jsonl"
        obs.configure(event_log=str(path), slow_ms=0.0)  # everything is slow
        try:
            manager = SessionManager({"demo": data})
            api = ServiceAPI(manager)
            api.dispatch("POST", "/v1/sessions", {"dataset": "demo"})
        finally:
            obs.disable()
        event = _events(path)[-1]
        assert event["slow"] is True
        assert isinstance(event["span_detail"], list)

    def test_fast_requests_stay_one_line(self, live):
        server, client, manager, state, path = live
        client.health()
        event = _events(path)[-1]
        assert "span_detail" not in event
        assert not event.get("slow")


class TestErrorEvents:
    """Satellite: typed error events, /v1 error contract untouched."""

    def test_unknown_session_404_contract_and_event(self, live):
        server, client, manager, state, path = live
        with pytest.raises(ServiceClientError) as err:
            client.view("missing")
        assert err.value.status == 404
        assert set(err.value.payload) == {"error"}  # contract: error only
        event = _events(path)[-1]
        assert event["event"] == "error"
        assert event["error_kind"] == "unknown_session"
        assert event["status"] == 404
        assert _TRACE_RE.match(event["trace_id"])

    def test_malformed_json_body_400(self, live):
        server, client, manager, state, path = live
        request = urllib.request.Request(
            server.base_url + "/v1/sessions",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        payload = json.loads(err.value.read())
        assert "not JSON" in payload["error"]
        event = _events(path)[-1]
        assert event["error_kind"] == "malformed_body"

    def test_non_object_json_body_400(self, live):
        server, client, manager, state, path = live
        request = urllib.request.Request(
            server.base_url + "/v1/sessions",
            data=b"[1, 2, 3]",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        assert _events(path)[-1]["error_kind"] == "malformed_body"

    def test_oversized_body_413_without_reading(self, live):
        server, client, manager, state, path = live
        big = b'{"filler": "' + b"x" * (128 * 1024) + b'"}'
        request = urllib.request.Request(
            server.base_url + "/v1/sessions",
            data=big,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 413
        event = _events(path)[-1]
        assert event["error_kind"] == "oversized_body"
        # the server is still healthy afterwards
        assert client.health() == {"status": "ok"}

    def test_405_keeps_allow_list_with_obs_on(self, live):
        server, client, manager, state, path = live
        request = urllib.request.Request(
            server.base_url + "/v1/sessions/abc/view",
            data=b"{}",
            method="PUT",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 405
        payload = json.loads(err.value.read())
        assert payload["allow"] == ["GET"]
        assert _events(path)[-1]["error_kind"] == "method_not_allowed"

    def test_unknown_route_event(self, live):
        server, client, manager, state, path = live
        with pytest.raises(ServiceClientError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404
        assert _events(path)[-1]["error_kind"] == "unknown_route"

    def test_bad_request_dataset_400(self, live):
        server, client, manager, state, path = live
        with pytest.raises(ServiceClientError) as err:
            client._request("POST", "/sessions", {"dataset": 42})
        assert err.value.status == 400
        assert _events(path)[-1]["error_kind"] == "bad_request"

    def test_unknown_dataset_404(self, live):
        server, client, manager, state, path = live
        with pytest.raises(ServiceClientError):
            client.create_session("missing-dataset")
        assert _events(path)[-1]["error_kind"] == "unknown_dataset"


class TestMetricsEndpoint:
    def test_prometheus_scrape_parses_and_counts(self, live):
        server, client, manager, state, path = live
        sid = client.create_session("demo")
        client.view(sid)
        client.view(sid)
        text = client.metrics_text()
        families = parse_prometheus(text)
        assert "repro_requests_total" in families
        view_samples = [
            s
            for s in families["repro_requests_total"]["samples"]
            if s["labels"].get("route") == "GET /v1/sessions/{id}/view"
        ]
        assert view_samples and view_samples[0]["value"] == 2.0
        # histogram totals match the counter
        counts = [
            s
            for s in families["repro_request_duration_seconds"]["samples"]
            if s["name"].endswith("_count")
            and s["labels"].get("route") == "GET /v1/sessions/{id}/view"
        ]
        assert counts and counts[0]["value"] == 2.0
        # scrape-time gauges reflect the manager
        gauge = families["repro_sessions_in_memory"]["samples"][0]
        assert gauge["value"] == 1.0

    def test_content_type_is_prometheus_text(self, live):
        server, client, manager, state, path = live
        with urllib.request.urlopen(server.base_url + "/v1/metrics") as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in resp.headers["Content-Type"]

    def test_json_variant(self, live):
        server, client, manager, state, path = live
        client.health()
        payload = client.metrics()
        assert payload["enabled"] is True
        assert "repro_requests_total" in payload["families"]

    def test_solver_and_cache_metrics_populate(self, live):
        server, client, manager, state, path = live
        sid = client.create_session("demo")
        client.mark_cluster(sid, list(range(8)), label="a")
        client.view(sid)
        families = parse_prometheus(client.metrics_text())
        solve_count = [
            s
            for s in families["repro_solve_duration_seconds"]["samples"]
            if s["name"].endswith("_count")
        ][0]["value"]
        assert solve_count >= 1
        lookups = families["repro_solve_cache_lookups_total"]["samples"]
        assert sum(s["value"] for s in lookups) >= 1
        batch = [
            s
            for s in families["repro_feedback_batch_size"]["samples"]
            if s["name"].endswith("_count")
        ][0]["value"]
        assert batch == 1.0

    def test_disabled_still_answers_200(self, data):
        assert obs.active() is None
        manager = SessionManager({"demo": data})
        api = ServiceAPI(manager)
        status, payload = api.dispatch("GET", "/v1/metrics")
        assert status == 200
        assert isinstance(payload, TextResponse)
        assert "disabled" in payload
        status, payload = api.dispatch(
            "GET", "/v1/metrics", query={"format": "json"}
        )
        assert status == 200
        assert payload == {"enabled": False, "families": {}}


class TestStatsContract:
    """Satellite: /v1/stats always carries perf with an enabled marker."""

    def test_perf_field_present_and_marked_when_disabled(self, data):
        assert not perf.is_enabled()
        manager = SessionManager({"demo": data})
        status, payload = ServiceAPI(manager).dispatch("GET", "/v1/stats")
        assert status == 200
        assert payload["perf"]["enabled"] is False
        assert payload["perf"]["timings"] == {}

    def test_perf_field_carries_data_when_enabled(self, data):
        perf.enable()
        try:
            manager = SessionManager({"demo": data})
            manager.create("demo", session_id="s1")
            manager.view("s1")
            status, payload = ServiceAPI(manager).dispatch("GET", "/v1/stats")
        finally:
            perf.disable()
            perf.reset()
        assert payload["perf"]["enabled"] is True
        assert payload["perf"]["timings"]  # something was recorded


class TestDirectDispatch:
    def test_dispatch_mints_trace_id_without_transport(self, data, obs_log):
        state, path = obs_log
        manager = SessionManager({"demo": data})
        api = ServiceAPI(manager)
        status, _ = api.dispatch("GET", "/v1/health")
        assert status == 200
        assert _TRACE_RE.match(_events(path)[-1]["trace_id"])

    def test_envelope_records_escaped_exceptions(self, obs_log):
        state, path = obs_log
        with pytest.raises(RuntimeError):
            with obs.request_envelope("GET", "/v1/boom"):
                raise RuntimeError("handler bug")
        event = _events(path)[-1]
        assert event["status"] == 500
        assert event["error_kind"] == "internal_error"
        assert "handler bug" in event["error"]


class TestDisabledOverhead:
    """Pin the zero-overhead-by-default claim, with generous bounds."""

    _CALLS = 20_000

    def _per_call(self, fn) -> float:
        start = time.perf_counter()
        for _ in range(self._CALLS):
            fn()
        return (time.perf_counter() - start) / self._CALLS

    def test_disabled_hooks_cost_like_disabled_perf_add(self):
        assert obs.active() is None and not perf.is_enabled()
        baseline = self._per_call(lambda: perf.add("bench.counter"))
        hook = self._per_call(lambda: obs.cache_lookup(True))
        # Same cost class: one global read + None check.  The bound is
        # deliberately loose (10x + 2µs) so only a real regression —
        # locking, allocation, dict work on the disabled path — trips it.
        assert hook < baseline * 10 + 2e-6, (hook, baseline)

    def test_disabled_timer_returns_shared_noop(self):
        assert obs.active() is None and not perf.is_enabled()
        assert perf.timer("anything") is perf.timer("anything")

    def test_all_disabled_hooks_are_cheap_in_absolute_terms(self):
        assert obs.active() is None
        for hook in (
            lambda: obs.solve_completed(0.1, 3),
            lambda: obs.cache_lookup(False),
            lambda: obs.feedback_batch(4),
        ):
            assert self._per_call(hook) < 5e-6
