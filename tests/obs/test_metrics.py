"""Metrics registry: counters/gauges/histograms + exposition round-trip."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    histogram_quantile,
    parse_prometheus,
)


class TestFamilies:
    def test_counter_increments_and_is_monotone(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "help").default()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_distinct_and_cached(self):
        reg = MetricsRegistry()
        family = reg.counter("req_total", "", labelnames=("route",))
        a = family.labels(route="GET /a")
        b = family.labels(route="GET /b")
        assert a is not b
        assert family.labels(route="GET /a") is a
        a.inc()
        assert (a.value, b.value) == (1.0, 0.0)

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        family = reg.counter("x_total", "", labelnames=("route",))
        with pytest.raises(ValueError):
            family.labels(verb="GET")
        with pytest.raises(ValueError):
            family.default()

    def test_reregistration_returns_same_family(self):
        reg = MetricsRegistry()
        first = reg.counter("t_total", "help")
        again = reg.counter("t_total", "other help")
        assert again is first
        with pytest.raises(ValueError):
            reg.gauge("t_total")

    def test_gauge_set_inc_and_callback(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g").default()
        gauge.set(4.0)
        gauge.inc(1.0)
        assert gauge.value == 5.0
        gauge.set_function(lambda: 42.0)
        assert gauge.value == 42.0

    def test_broken_gauge_callback_yields_nan_not_raise(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g").default()
        gauge.set_function(lambda: 1 / 0)
        assert math.isnan(gauge.value)
        # and the render survives it
        assert "g" in reg.render_prometheus()


class TestHistogram:
    def test_single_observation_counts_once_per_cumulative_level(self):
        h = Histogram((1.0, 2.0, 5.0))
        h.observe(1.0)
        snap = h.snapshot()
        assert snap["buckets"] == [[1.0, 1], [2.0, 1], [5.0, 1]]
        assert snap["count"] == 1 and snap["sum"] == 1.0

    def test_cumulative_counts_and_overflow(self):
        h = Histogram((1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["buckets"] == [[1.0, 1], [2.0, 2], [5.0, 3]]
        assert snap["count"] == 4  # +Inf bucket == total count

    def test_threaded_observations_sum_exactly(self):
        h = Histogram(DEFAULT_LATENCY_BUCKETS)

        def work():
            for _ in range(500):
                h.observe(0.003)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap["count"] == 4000
        assert snap["buckets"][-1][1] == 4000

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram(())


class TestConfigurableBuckets:
    def test_histogram_family_accepts_custom_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "fsync_seconds", "Fsync.", buckets=(0.0001, 0.001, 0.01)
        ).default()
        hist.observe(0.0005)
        snap = hist.snapshot()
        assert [edge for edge, _ in snap["buckets"]] == [0.0001, 0.001, 0.01]
        assert snap["buckets"][1][1] == 1  # landed in the 1 ms bin

    def test_default_buckets_unchanged_when_not_overridden(self):
        reg = MetricsRegistry()
        hist = reg.histogram("dur_seconds", "Durations.").default()
        assert hist.buckets == tuple(DEFAULT_LATENCY_BUCKETS)

    def test_purpose_built_default_ladders(self):
        # fsync buckets resolve sub-ms flushes; solve buckets reach the
        # paper's 10 s solver cutoff and beyond
        from repro.obs.metrics import (
            DEFAULT_FSYNC_BUCKETS,
            DEFAULT_SOLVE_BUCKETS,
        )

        assert min(DEFAULT_FSYNC_BUCKETS) < 0.001
        assert max(DEFAULT_FSYNC_BUCKETS) <= 1.0
        assert max(DEFAULT_SOLVE_BUCKETS) >= 10.0

    def test_observability_state_honors_bucket_overrides(self):
        from repro.obs import Observability
        from repro.obs.metrics import DEFAULT_FSYNC_BUCKETS

        state = Observability(
            metrics=MetricsRegistry(),
            bucket_overrides={
                "repro_request_duration_seconds": (0.5, 1.0),
            },
        )
        child = state._request_duration.labels(route="GET /x")
        assert child.buckets == (0.5, 1.0)
        # non-overridden families keep their purpose-built defaults
        assert state._wal_append.buckets == tuple(
            sorted(b for b in DEFAULT_FSYNC_BUCKETS if b != float("inf"))
        )


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter(
            "req_total", "Requests.", labelnames=("route", "status")
        ).labels(route='GET /v1/sessions/{id}', status="200").inc(7)
        reg.gauge("live_sessions", "Live sessions.").default().set(3)
        hist = reg.histogram(
            "dur_seconds", "Durations.", buckets=(0.01, 0.1, 1.0)
        ).default()
        hist.observe(0.05)
        hist.observe(0.5)
        return reg

    def test_prometheus_text_shape(self):
        text = self._populated().render_prometheus()
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="GET /v1/sessions/{id}",status="200"} 7' in text
        assert "live_sessions 3" in text
        assert 'dur_seconds_bucket{le="0.01"} 0' in text
        assert 'dur_seconds_bucket{le="+Inf"} 2' in text
        assert "dur_seconds_count 2" in text
        assert text.endswith("\n")

    def test_parse_round_trip(self):
        reg = self._populated()
        families = parse_prometheus(reg.render_prometheus())
        assert families["req_total"]["type"] == "counter"
        sample = families["req_total"]["samples"][0]
        assert sample["labels"] == {
            "route": "GET /v1/sessions/{id}",
            "status": "200",
        }
        assert sample["value"] == 7.0
        # histogram samples are attributed to their family
        hist = families["dur_seconds"]
        names = {s["name"] for s in hist["samples"]}
        assert names == {"dur_seconds_bucket", "dur_seconds_sum", "dur_seconds_count"}
        inf = [
            s for s in hist["samples"]
            if s["labels"].get("le") == "+Inf"
        ]
        assert inf and inf[0]["value"] == 2.0

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        nasty = 'back\\slash "quote"\nnewline'
        reg.counter("c_total", "", labelnames=("k",)).labels(k=nasty).inc()
        families = parse_prometheus(reg.render_prometheus())
        assert families["c_total"]["samples"][0]["labels"]["k"] == nasty

    def test_json_render(self):
        payload = self._populated().render_json()
        assert payload["req_total"]["type"] == "counter"
        hist_sample = payload["dur_seconds"]["samples"][0]
        assert hist_sample["count"] == 2
        assert hist_sample["buckets"][-1] == [1.0, 2]


class TestQuantiles:
    def test_quantile_interpolates_within_bucket(self):
        # 10 observations, all in (0.1, 0.2]
        buckets = [(0.1, 0.0), (0.2, 10.0), (0.5, 10.0)]
        mid = histogram_quantile(buckets, 10, 0.5)
        assert 0.1 < mid <= 0.2
        assert histogram_quantile(buckets, 10, 0.99) <= 0.2

    def test_quantile_empty_is_nan(self):
        assert math.isnan(histogram_quantile([], 0, 0.5))

    def test_quantile_past_last_bucket_clamps_to_edge(self):
        buckets = [(0.1, 5.0)]  # 5 of 10 observations beyond last edge
        assert histogram_quantile(buckets, 10, 0.99) == 0.1

    def test_bucket_bounds_bracket_the_quantile(self):
        buckets = [(0.1, 0.0), (0.2, 10.0)]
        assert bucket_bounds(buckets, 10, 0.5) == (0.1, 0.2)
        lower, upper = bucket_bounds([(0.1, 5.0)], 10, 0.99)
        assert lower == 0.1 and upper == float("inf")
