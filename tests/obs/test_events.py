"""EventLog sink and the tolerant JSONL reader."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs.events import EventLog, read_events, rotated_paths


class TestEventLog:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"event": "request", "status": 200})
            log.emit({"event": "error", "status": 404})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "request"
        assert "ts" in first  # stamped automatically
        assert log.emitted == 2

    def test_explicit_ts_is_kept(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"ts": 123.0, "event": "request"})
        assert json.loads(path.read_text())["ts"] == 123.0

    def test_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"event": "request"})
        with EventLog(path) as log:
            log.emit({"event": "request"})
        assert len(list(read_events(path))) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"event": "request"})
        assert path.exists()

    def test_emit_after_close_drops_silently(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.emit({"event": "request"})  # must not raise
        assert log.emitted == 0

    def test_stream_target_is_not_closed(self):
        stream = io.StringIO()
        log = EventLog(stream)
        log.emit({"event": "request"})
        log.close()
        assert not stream.closed
        assert stream.getvalue().count("\n") == 1

    def test_concurrent_emits_never_interleave(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        payload = {"event": "request", "filler": "x" * 256}

        def work():
            for _ in range(200):
                log.emit(dict(payload))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        events = list(read_events(path))
        assert len(events) == 1600
        assert all(e["filler"] == payload["filler"] for e in events)


class TestRotation:
    def test_rotates_when_append_would_exceed_max_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=200) as log:
            for i in range(20):
                log.emit({"event": "request", "n": i, "pad": "x" * 40})
            assert log.rotations >= 2
            assert log.emitted == 20
        rotated = rotated_paths(path)
        assert [p.name for p in rotated] == [
            f"events.jsonl.{i + 1}" for i in range(len(rotated))
        ]
        # no rotated file ever exceeded the cap, and the live file exists
        for p in rotated:
            assert p.stat().st_size <= 200
        assert path.exists()

    def test_single_oversized_event_still_lands(self, tmp_path):
        # an event bigger than max_bytes is written whole into a fresh
        # file rather than dropped or split
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=64) as log:
            log.emit({"event": "request", "pad": "x" * 200})
            log.emit({"event": "request", "pad": "y" * 200})
        events = list(read_events(path))
        assert len(events) == 2

    def test_reader_spans_rotations_in_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=120) as log:
            for i in range(30):
                log.emit({"event": "request", "n": i, "pad": "x" * 30})
        events = list(read_events(path))
        assert [e["n"] for e in events] == list(range(30))

    def test_rotation_resumes_numbering_across_reopens(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for _ in range(2):
            with EventLog(path, max_bytes=100) as log:
                for i in range(10):
                    log.emit({"event": "request", "pad": "x" * 40})
        names = {p.name for p in rotated_paths(path)}
        # second process run continued after the first run's suffixes
        assert len(names) == len(rotated_paths(path))
        assert list(read_events(path))  # and the stream reads back whole

    def test_max_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            EventLog(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError, match="path-backed"):
            EventLog(io.StringIO(), max_bytes=100)

    def test_truncated_final_record_after_rotation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=120) as log:
            for i in range(10):
                log.emit({"event": "request", "n": i, "pad": "x" * 30})
        whole = len(list(read_events(path)))
        # simulate a crash mid-write on the *live* file
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"event": "request", "n": 99, "pa')
        events = list(read_events(path))
        assert len(events) == whole  # partial line skipped, rest intact
        assert [e["n"] for e in events] == list(range(10))


class TestReadEvents:
    def test_skips_blank_and_truncated_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"event": "request", "status": 200}\n'
            "\n"
            '{"event": "request", "stat'  # crash mid-write
        )
        events = list(read_events(path))
        assert len(events) == 1
        assert events[0]["status"] == 200

    def test_rotated_files_read_even_if_live_file_missing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        (tmp_path / "events.jsonl.1").write_text('{"event": "request"}\n')
        assert len(list(read_events(path))) == 1
