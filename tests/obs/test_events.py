"""EventLog sink and the tolerant JSONL reader."""

from __future__ import annotations

import io
import json
import threading

from repro.obs.events import EventLog, read_events


class TestEventLog:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"event": "request", "status": 200})
            log.emit({"event": "error", "status": 404})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "request"
        assert "ts" in first  # stamped automatically
        assert log.emitted == 2

    def test_explicit_ts_is_kept(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"ts": 123.0, "event": "request"})
        assert json.loads(path.read_text())["ts"] == 123.0

    def test_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"event": "request"})
        with EventLog(path) as log:
            log.emit({"event": "request"})
        assert len(list(read_events(path))) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        with EventLog(path) as log:
            log.emit({"event": "request"})
        assert path.exists()

    def test_emit_after_close_drops_silently(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.emit({"event": "request"})  # must not raise
        assert log.emitted == 0

    def test_stream_target_is_not_closed(self):
        stream = io.StringIO()
        log = EventLog(stream)
        log.emit({"event": "request"})
        log.close()
        assert not stream.closed
        assert stream.getvalue().count("\n") == 1

    def test_concurrent_emits_never_interleave(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        payload = {"event": "request", "filler": "x" * 256}

        def work():
            for _ in range(200):
                log.emit(dict(payload))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        events = list(read_events(path))
        assert len(events) == 1600
        assert all(e["filler"] == payload["filler"] for e in events)


class TestReadEvents:
    def test_skips_blank_and_truncated_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"event": "request", "status": 200}\n'
            "\n"
            '{"event": "request", "stat'  # crash mid-write
        )
        events = list(read_events(path))
        assert len(events) == 1
        assert events[0]["status"] == 200
