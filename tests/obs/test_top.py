"""The `repro top` dashboard: derivation, rendering, poll loop."""

from __future__ import annotations

import io
import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.top import Dashboard, run_top, sparkline


def _families(requests=0, slow=0, hits=0, misses=0, sessions=0):
    """A /v1/metrics families payload with the given cumulative totals."""
    registry = MetricsRegistry()
    latency = registry.histogram(
        "repro_request_duration_seconds", "Latency.",
        labelnames=("route", "status"), buckets=(0.1, 1.0, 10.0),
    )
    counter = registry.counter(
        "repro_requests_total", "Requests.", labelnames=("route", "status")
    )
    lookups = registry.counter(
        "repro_solve_cache_lookups_total", "Cache.", labelnames=("result",)
    )
    gauge = registry.gauge("repro_sessions_in_memory", "Sessions.")
    route = "GET /v1/sessions/{id}/view"
    for _ in range(requests):
        latency.labels(route=route, status="200").observe(0.05)
        counter.labels(route=route, status="200").inc()
    for _ in range(slow):
        latency.labels(route=route, status="200").observe(5.0)
        counter.labels(route=route, status="200").inc()
    if hits:
        lookups.labels(result="hit").inc(hits)
    if misses:
        lookups.labels(result="miss").inc(misses)
    gauge.default().set(sessions)
    return registry.render_json()


class TestSparkline:
    def test_scales_to_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty_and_flat_zero(self):
        assert sparkline([]) == ""
        assert sparkline([float("nan")]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"

    def test_width_keeps_newest(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestDashboard:
    def test_needs_two_scrapes_for_rates(self):
        board = Dashboard(color=False)
        board.add(_families(requests=10), mono=0.0)
        assert board.route_rows() == []
        assert math.isnan(board.cache_hit_rate())
        board.add(_families(requests=30, hits=6, misses=2), mono=10.0)
        rows = board.route_rows()
        assert len(rows) == 1
        assert rows[0]["route"] == "GET /v1/sessions/{id}/view"
        assert rows[0]["rate"] == pytest.approx(2.0)  # 20 reqs / 10 s
        assert rows[0]["p99"] <= 0.1  # every delta observation was fast
        assert board.cache_hit_rate() == pytest.approx(0.75)

    def test_sessions_reads_latest_gauge(self):
        board = Dashboard(color=False)
        assert math.isnan(board.sessions_in_memory())
        board.add(_families(sessions=4), mono=0.0)
        assert board.sessions_in_memory() == 4.0

    def test_render_plain_frame(self):
        board = Dashboard(color=False)
        health = {
            "status": "degraded",
            "slos": [{
                "name": "view-latency-p99", "status": "degraded",
                "short": {"measured": 2.5, "threshold": 2.0, "burn": 1.25},
                "long": {"measured": None, "threshold": 2.0, "burn": None},
            }],
        }
        board.add(_families(requests=5), health=health, mono=0.0)
        board.add(_families(requests=25, slow=1), health=health, mono=5.0)
        frame = board.render(url="http://127.0.0.1:8000")
        assert "repro top" in frame
        assert "health: degraded" in frame
        assert "burning: view-latency-p99" in frame
        assert "GET /v1/sessions/{id}/view" in frame
        assert "req/s" in frame
        assert "\x1b[" not in frame  # color disabled -> no ANSI codes

    def test_render_before_any_scrape(self):
        frame = Dashboard(color=False).render()
        assert "waiting for a second scrape" in frame


class TestRunTop:
    def test_bounded_iterations_with_injected_fetch(self):
        frames = iter([
            (_families(requests=5), {"status": "ready"}),
            (_families(requests=9), {"status": "ready"}),
        ])
        out = io.StringIO()
        code = run_top(
            "http://example", interval=0.0, iterations=2,
            stream=out, fetch=lambda: next(frames), color=False,
        )
        assert code == 0
        text = out.getvalue()
        assert text.count("repro top") == 2
        assert "health: ready" in text

    def test_fetch_error_exits_nonzero(self):
        def fetch():
            raise RuntimeError("server has observability disabled")

        out = io.StringIO()
        code = run_top(
            "http://example", iterations=1, stream=out, fetch=fetch,
            color=False,
        )
        assert code == 1
        assert "observability disabled" in out.getvalue()

    def test_keyboard_interrupt_is_clean_exit(self):
        def fetch():
            raise KeyboardInterrupt

        code = run_top(
            "http://example", iterations=5, stream=io.StringIO(),
            fetch=fetch, color=False,
        )
        assert code == 0
