"""Obs v2 through the service: history/profile endpoints, SLO health.

Backward-compat contracts pinned here: ``/v1/health`` stays exactly
``{"status": "ok"}`` unless the SLO engine is explicitly enabled, and
``/v1/metrics/history`` / ``/v1/profile`` answer 200 with a disabled
marker rather than 404 when their subsystems are off (scrapers and
dashboards must never flap on configuration).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient
from repro.service.manager import SessionManager
from repro.service.server import ReproServer


@pytest.fixture
def data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(80, 4))


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.disable()
    obs.stop_profiler()


def _api(data):
    return ServiceAPI(SessionManager({"demo": data}))


class TestHealthContract:
    def test_plain_obs_keeps_exact_ok_payload(self, data):
        obs.configure()
        assert _api(data).dispatch("GET", "/health") == (
            200, {"status": "ok"}
        )

    def test_slo_engine_extends_health(self, data):
        state = obs.configure(slos=True)
        api = _api(data)
        state.history.sample()
        status, payload = api.dispatch("GET", "/health")
        assert status == 200
        assert payload["status"] in ("ready", "degraded", "violating")
        names = {row["name"] for row in payload["slos"]}
        assert "view-latency-p99" in names
        json.dumps(payload)  # must stay JSON-serializable


class TestMetricsHistory:
    def test_disabled_marker_without_recorder(self, data):
        obs.configure()  # metrics on, history off
        status, payload = _api(data).dispatch("GET", "/metrics/history")
        assert status == 200
        assert payload == {"enabled": False, "samples": []}

    def test_enabled_serves_samples_and_derivation(self, data):
        state = obs.configure(history=True, history_interval=3600.0)
        api = _api(data)
        api.dispatch("GET", "/datasets")
        state.history.sample()
        api.dispatch("GET", "/datasets")
        state.history.sample()
        status, payload = api.dispatch("GET", "/metrics/history")
        assert status == 200
        assert payload["enabled"] is True
        assert payload["interval_seconds"] == 3600.0
        assert len(payload["samples"]) >= 2
        derived = payload["derived"]
        assert derived is not None
        assert any(
            key.startswith("repro_requests_total")
            for key in derived["counters"]
        )
        json.dumps(payload)

    def test_derive_can_be_skipped_and_window_trimmed(self, data):
        state = obs.configure(history=True, history_interval=3600.0)
        api = _api(data)
        state.history.sample()
        state.history.sample()
        _, payload = api.dispatch(
            "GET", "/metrics/history", query={"derive": "0"}
        )
        assert "derived" not in payload
        _, payload = api.dispatch(
            "GET", "/metrics/history", query={"seconds": "0.0001"}
        )
        assert payload["enabled"] is True
        assert len(payload["samples"]) >= 1  # newest sample always kept


class TestProfileEndpoint:
    def test_disabled_marker_in_both_formats(self, data):
        api = _api(data)
        status, payload = api.dispatch("GET", "/profile")
        assert status == 200
        assert "disabled" in str(payload)
        status, payload = api.dispatch(
            "GET", "/profile", query={"format": "json"}
        )
        assert payload["enabled"] is False

    def test_live_profiler_serves_collapsed_stacks(self, data):
        obs.start_profiler(interval=0.005)
        api = _api(data)
        deadline = time.perf_counter() + 5.0
        while (
            obs.profiler().samples == 0
            and time.perf_counter() < deadline
        ):
            api.dispatch("GET", "/datasets")
        status, payload = api.dispatch(
            "GET", "/profile", query={"format": "json"}
        )
        assert status == 200
        assert payload["enabled"] is True
        assert payload["samples"] >= 1
        status, text = api.dispatch("GET", "/profile")
        assert status == 200
        assert text.content_type.startswith("text/plain")


class TestOverHttp:
    def test_client_round_trip_history_health_profile(self, data):
        state = obs.configure(slos=True, history_interval=3600.0)
        obs.start_profiler(interval=0.01)
        manager = SessionManager({"demo": data})
        server = ReproServer(manager, port=0)
        server.start_background()
        try:
            client = ServiceClient(server.base_url)
            sid = client.create_session("demo")
            client.view(sid)
            state.history.sample()
            client.view(sid)
            state.history.sample()
            history = client.metrics_history()
            assert history["enabled"] is True
            assert len(history["samples"]) >= 2
            health = client.health()
            assert "slos" in health
            assert client.profile()["enabled"] is True
            text = client.profile_text()
            assert isinstance(text, str)
        finally:
            server.stop()

    def test_event_log_rotation_through_configure(self, data, tmp_path):
        path = tmp_path / "events.jsonl"
        state = obs.configure(
            event_log=str(path), event_log_max_bytes=400
        )
        manager = SessionManager({"demo": data})
        server = ReproServer(manager, port=0)
        server.start_background()
        try:
            client = ServiceClient(server.base_url)
            for _ in range(10):
                client.health()
        finally:
            server.stop()
        assert state.events.rotations >= 1
        events = list(obs.read_events(path))
        assert len(events) == 10


class TestSlowRequestExemplar:
    def test_slow_request_event_carries_profile_excerpt(self, data, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.configure(event_log=str(path), slow_ms=0.0)
        obs.start_profiler(interval=0.002)
        api = _api(data)
        # burn enough wall clock inside the request for the sampler to
        # land at least one tick on this thread
        deadline = time.perf_counter() + 5.0
        event = None
        while time.perf_counter() < deadline:
            api.dispatch("POST", "/sessions", {"dataset": "demo"})
            events = [
                e for e in obs.read_events(path) if e.get("profile")
            ]
            if events:
                event = events[-1]
                break
        assert event is not None, "no slow event captured a profile excerpt"
        assert event["slow"] is True
        rows = event["profile"]
        assert rows[0]["count"] >= 1
        assert ";" in rows[0]["stack"]
