"""Tests for the mixed-type preprocessing (ordinal/categorical extension)."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.preprocess import MixedEncoder, one_hot_encode, rank_gaussianize


class TestRankGaussianize:
    def test_monotone(self, rng):
        values = rng.standard_normal(500) * 7 + 3
        scores = rank_gaussianize(values)
        order = np.argsort(values)
        assert np.all(np.diff(scores[order]) >= 0)

    def test_output_standard_normal_like(self, rng):
        values = rng.exponential(5.0, 5000)  # heavily skewed input
        scores = rank_gaussianize(values)
        assert abs(scores.mean()) < 0.02
        assert abs(scores.std() - 1.0) < 0.05
        # Skewness removed.
        skew = np.mean(((scores - scores.mean()) / scores.std()) ** 3)
        assert abs(skew) < 0.05

    def test_ties_share_scores(self):
        scores = rank_gaussianize(np.array([1.0, 2.0, 2.0, 3.0]))
        assert scores[1] == scores[2]
        assert scores[0] < scores[1] < scores[3]

    def test_finite_extremes(self, rng):
        scores = rank_gaussianize(rng.standard_normal(10000))
        assert np.all(np.isfinite(scores))

    def test_rejects_2d(self, rng):
        with pytest.raises(DataShapeError):
            rank_gaussianize(rng.standard_normal((5, 2)))


class TestOneHotEncode:
    def test_levels_first_appearance_order(self):
        matrix, levels = one_hot_encode(np.array(["b", "a", "b", "c"]))
        assert levels == ["b", "a", "c"]
        assert matrix.shape == (4, 3)

    def test_drop_last_removes_reference_level(self):
        matrix, levels = one_hot_encode(
            np.array(["b", "a", "b", "c"]), drop_last=True
        )
        assert levels == ["b", "a"]
        assert matrix.shape == (4, 2)

    def test_full_one_hot_is_rank_deficient_dropped_is_not(self, rng):
        values = rng.choice(["x", "y", "z"], size=500)
        full, _ = one_hot_encode(values)
        dropped, _ = one_hot_encode(values, drop_last=True)
        assert np.linalg.matrix_rank(full - full.mean(0)) == 2
        assert np.linalg.matrix_rank(dropped - dropped.mean(0)) == 2
        assert dropped.shape[1] == 2  # rank == width: no degeneracy

    def test_columns_standardised(self, rng):
        values = rng.choice(["x", "y", "z"], size=2000, p=[0.5, 0.3, 0.2])
        matrix, _ = one_hot_encode(values)
        np.testing.assert_allclose(matrix.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(matrix.std(axis=0), 1.0, atol=1e-6)

    def test_indicator_semantics(self):
        matrix, levels = one_hot_encode(np.array(["a", "b", "a", "b"]))
        col_a = matrix[:, levels.index("a")]
        # 'a' rows get the positive value, 'b' rows the negative one.
        assert col_a[0] == col_a[2] > 0
        assert col_a[1] == col_a[3] < 0

    def test_single_level_rejected(self):
        with pytest.raises(DataShapeError):
            one_hot_encode(np.array(["a", "a", "a"]))


class TestMixedEncoder:
    @pytest.fixture
    def table(self, rng):
        return {
            "age": rng.uniform(18, 90, 300),
            "grade": rng.integers(1, 6, 300).astype(float),
            "colour": rng.choice(["red", "green", "blue"], 300),
        }

    def test_output_width(self, table):
        encoder = MixedEncoder(
            {"age": "numeric", "grade": "ordinal", "colour": "categorical"}
        )
        encoded = encoder.fit_transform(table)
        # Categorical: 3 levels -> 2 indicator columns (reference level
        # dropped to avoid the rank deficiency of full one-hot).
        assert encoded.shape == (300, 1 + 1 + 2)

    def test_feature_names(self, table):
        encoder = MixedEncoder(
            {"age": "numeric", "grade": "ordinal", "colour": "categorical"}
        )
        encoder.fit_transform(table)
        names = encoder.feature_names()
        assert names[0] == "age"
        assert names[1] == "grade"
        assert all(n.startswith("colour=") for n in names[2:])

    def test_source_of_feature(self, table):
        encoder = MixedEncoder(
            {"age": "numeric", "grade": "ordinal", "colour": "categorical"}
        )
        encoder.fit_transform(table)
        assert encoder.source_of_feature(0) == "age"
        assert encoder.source_of_feature(3) == "colour"
        with pytest.raises(DataShapeError):
            encoder.source_of_feature(99)

    def test_numeric_passthrough(self, table):
        encoder = MixedEncoder({"age": "numeric"})
        encoded = encoder.fit_transform({"age": table["age"]})
        np.testing.assert_array_equal(encoded[:, 0], table["age"])

    def test_missing_column_rejected(self, table):
        encoder = MixedEncoder({"age": "numeric", "missing": "numeric"})
        with pytest.raises(DataShapeError):
            encoder.fit_transform(table)

    def test_length_mismatch_rejected(self, rng):
        encoder = MixedEncoder({"a": "numeric", "b": "numeric"})
        with pytest.raises(DataShapeError):
            encoder.fit_transform(
                {"a": rng.standard_normal(10), "b": rng.standard_normal(11)}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataShapeError):
            MixedEncoder({"a": "fancy"})

    def test_empty_spec_rejected(self):
        with pytest.raises(DataShapeError):
            MixedEncoder({})

    def test_encoded_data_flows_through_model(self, table):
        """End-to-end: mixed data -> encoder -> MaxEnt loop."""
        from repro.core.background import BackgroundModel

        encoder = MixedEncoder(
            {"age": "numeric", "grade": "ordinal", "colour": "categorical"}
        )
        encoded = encoder.fit_transform(table)
        model = BackgroundModel(encoded, standardize=True)
        model.add_margin_constraints()
        report = model.fit()
        assert report.converged
        whitened = model.whiten()
        assert np.all(np.isfinite(whitened))
