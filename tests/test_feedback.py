"""Tests for the typed feedback vocabulary and the unified apply codepath."""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.core.session import ExplorationSession
from repro.errors import DataShapeError
from repro.feedback import (
    ClusterFeedback,
    CovarianceFeedback,
    MarginFeedback,
    ViewSelectionFeedback,
    feedback_batch_from_payload,
    feedback_from_dict,
    feedback_kinds,
)
from repro.io import load_session, save_session


class TestSerialization:
    @pytest.mark.parametrize(
        "feedback",
        [
            ClusterFeedback(rows=(0, 1, 2), label="blob"),
            ViewSelectionFeedback(rows=(5, 6), label=""),
            MarginFeedback(),
            CovarianceFeedback(label="cov"),
        ],
    )
    def test_roundtrip(self, feedback):
        assert feedback_from_dict(feedback.to_dict()) == feedback

    def test_kind_registry_covers_builtins(self):
        assert feedback_kinds() == ["cluster", "covariance", "margins", "view"]

    def test_legacy_kind_aliases(self):
        fb = feedback_from_dict({"kind": "2d", "rows": [1, 2]})
        assert isinstance(fb, ViewSelectionFeedback)
        fb = feedback_from_dict({"kind": "1-cluster"})
        assert isinstance(fb, CovarianceFeedback)

    def test_rows_normalised_from_any_iterable(self):
        fb = ClusterFeedback(rows=np.array([3, 1, 4]))
        assert fb.rows == (3, 1, 4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataShapeError):
            feedback_from_dict({"kind": "telepathy"})

    def test_unknown_field_rejected(self):
        with pytest.raises(DataShapeError):
            feedback_from_dict({"kind": "margins", "rows": [1]})

    def test_empty_rows_rejected(self):
        with pytest.raises(DataShapeError):
            ClusterFeedback(rows=())
        with pytest.raises(DataShapeError):
            feedback_from_dict({"kind": "view", "rows": []})

    def test_non_integer_rows_rejected(self):
        with pytest.raises(DataShapeError):
            ClusterFeedback(rows=(float("inf"),))

    def test_batch_parser_validates_everything_up_front(self):
        with pytest.raises(DataShapeError):
            feedback_batch_from_payload([])
        with pytest.raises(DataShapeError):
            feedback_batch_from_payload("not a list")
        with pytest.raises(DataShapeError):
            feedback_batch_from_payload(
                [{"kind": "cluster", "rows": [1]}, {"kind": "bogus"}]
            )


@pytest.fixture
def fit_counter(monkeypatch):
    """Count BackgroundModel.fit invocations (the solver hot path)."""
    calls = []
    original = BackgroundModel.fit

    def counting_fit(self, *args, **kwargs):
        calls.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(BackgroundModel, "fit", counting_fit)
    return calls


class TestApply:
    def test_apply_matches_legacy_wrapper(self, two_cluster_data):
        data, labels = two_cluster_data
        rows = tuple(int(r) for r in np.flatnonzero(labels == 0))

        typed = ExplorationSession(data, seed=0)
        typed.current_view()
        typed.apply(ClusterFeedback(rows=rows, label="left"))

        legacy = ExplorationSession(data, seed=0)
        legacy.current_view()
        with pytest.warns(DeprecationWarning):
            legacy.mark_cluster(rows, label="left")

        assert typed.feedback_groups == legacy.feedback_groups
        np.testing.assert_array_equal(
            typed.current_view().axes, legacy.current_view().axes
        )

    def test_auto_labels_match_legacy_scheme(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        labels = session.apply_many(
            [
                ClusterFeedback(rows=(0, 1, 2)),
                MarginFeedback(),
                CovarianceFeedback(),
            ]
        )
        assert labels[0].startswith("cluster[")
        assert labels[1] == "margins"
        assert labels[2] == "1-cluster"

    def test_feedback_log_tracks_and_undoes(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        fb = ClusterFeedback(rows=(0, 1, 2), label="trio")
        session.apply(fb)
        assert session.feedback_log == (fb,)
        assert session.undo_last_feedback() == "trio"
        assert session.feedback_log == ()

    def test_batch_applies_with_single_fit(self, two_cluster_data, fit_counter):
        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        rows = tuple(int(r) for r in np.flatnonzero(labels == 0))
        batch = [
            ClusterFeedback(rows=rows, label="left"),
            ViewSelectionFeedback(rows=rows, label="left-2d"),
            MarginFeedback(),
        ]
        applied = session.apply_many(batch)
        # The view-relative item forced exactly one fit (to resolve axes);
        # cluster/margin items never fit.
        assert len(fit_counter) == 1
        assert applied == ["left", "left-2d", "margins"]
        assert [label for label, _ in session.feedback_groups] == applied

    def test_batch_with_no_view_item_fits_nothing(
        self, two_cluster_data, fit_counter
    ):
        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.apply_many(
            [ClusterFeedback(rows=(0, 1)), MarginFeedback(), CovarianceFeedback()]
        )
        assert len(fit_counter) == 0
        session.current_view()
        assert len(fit_counter) == 1

    def test_batch_is_atomic_on_failure(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        n = data.shape[0]
        before_groups = session.feedback_groups
        with pytest.raises(Exception):
            session.apply_many(
                [
                    ClusterFeedback(rows=(0, 1, 2), label="ok"),
                    ClusterFeedback(rows=(n + 10,), label="out-of-range"),
                ]
            )
        assert session.feedback_groups == before_groups
        assert session.model.n_constraints == 0
        assert session.feedback_log == ()

    def test_non_feedback_rejected(self, two_cluster_data):
        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        with pytest.raises(TypeError):
            session.apply_many([{"kind": "cluster", "rows": [0]}])


class TestCheckpointRoundtrip:
    def test_feedback_log_survives_save_load(self, two_cluster_data, tmp_path):
        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        rows = tuple(int(r) for r in np.flatnonzero(labels == 0))
        session.apply_many(
            [
                ClusterFeedback(rows=rows, label="left"),
                ViewSelectionFeedback(rows=rows, label="left-2d"),
                MarginFeedback(),
            ]
        )
        path = tmp_path / "session.json"
        save_session(session, path)

        restored = load_session(data, path, seed=0)
        assert restored.feedback_log == session.feedback_log
        assert restored.feedback_groups == session.feedback_groups
        # Undo still unwinds the typed log in lockstep.
        assert restored.undo_last_feedback() == "margins"
        assert restored.feedback_log == session.feedback_log[:-1]

    def test_legacy_payload_without_feedback_log(
        self, two_cluster_data, tmp_path
    ):
        import json

        from repro.io import session_to_payload

        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.apply(ClusterFeedback(rows=(0, 1, 2), label="left"))
        payload = session_to_payload(session)
        del payload["feedback_log"]
        payload["format"] = 1  # simulate a pre-vocabulary file
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))

        restored = load_session(data, path, seed=0)
        assert restored.feedback_log == ()  # best effort: log not stored
        assert restored.undo_last_feedback() == "left"  # undo stack intact
