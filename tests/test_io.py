"""Tests for session and model-parameter serialization."""

import numpy as np
import pytest

from repro.core.background import BackgroundModel
from repro.core.constraint import Constraint, ConstraintKind
from repro.core.session import ExplorationSession
from repro.errors import DataShapeError
from repro.io import (
    constraint_from_dict,
    constraint_to_dict,
    data_fingerprint,
    load_model_parameters,
    load_session,
    save_model_parameters,
    save_session,
)


class TestFingerprint:
    def test_deterministic(self, gaussian_data):
        assert data_fingerprint(gaussian_data) == data_fingerprint(gaussian_data)

    def test_sensitive_to_values(self, gaussian_data):
        other = gaussian_data.copy()
        other[0, 0] += 1e-9
        assert data_fingerprint(gaussian_data) != data_fingerprint(other)

    def test_sensitive_to_shape(self, rng):
        flat = rng.standard_normal((4, 6))
        assert data_fingerprint(flat) != data_fingerprint(flat.reshape(6, 4))


class TestConstraintRoundtrip:
    def test_roundtrip(self):
        c = Constraint(
            ConstraintKind.QUADRATIC,
            np.array([3, 1, 4]),
            np.array([0.6, 0.8]),
            label="round/trip",
        )
        restored = constraint_from_dict(constraint_to_dict(c))
        assert restored.kind is c.kind
        np.testing.assert_array_equal(restored.rows, c.rows)
        np.testing.assert_array_equal(restored.w, c.w)
        assert restored.label == c.label

    def test_malformed_payload_rejected(self):
        with pytest.raises(DataShapeError):
            constraint_from_dict({"kind": "nope", "rows": [0], "w": [1.0]})


class TestSessionRoundtrip:
    def test_save_load_restores_constraints(self, two_cluster_data, tmp_path):
        data, labels = two_cluster_data
        session = ExplorationSession(data, objective="pca", seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="left")
        session.mark_cluster(np.flatnonzero(labels == 1), label="right")
        path = tmp_path / "session.json"
        save_session(session, path)

        restored = load_session(data, path, seed=0)
        assert restored.model.n_constraints == session.model.n_constraints
        assert restored.objective == "pca"
        # The restored belief state reproduces the same fit.
        session_view = session.current_view()
        restored_view = restored.current_view()
        np.testing.assert_allclose(
            np.abs(restored_view.scores), np.abs(session_view.scores), atol=1e-6
        )

    def test_wrong_data_rejected(self, two_cluster_data, rng, tmp_path):
        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        path = tmp_path / "session.json"
        save_session(session, path)
        with pytest.raises(DataShapeError):
            load_session(rng.standard_normal(data.shape), path)

    def test_standardize_flag_matters(self, two_cluster_data, tmp_path):
        data, _ = two_cluster_data
        session = ExplorationSession(data, standardize=True, seed=0)
        session.current_view()
        path = tmp_path / "session.json"
        save_session(session, path)
        # Saved from standardised data: restoring without the flag changes
        # the fingerprint and must fail.
        with pytest.raises(DataShapeError):
            load_session(data, path, standardize=False)
        restored = load_session(data, path, standardize=True)
        assert restored.model.n_rows == session.model.n_rows

    def test_unreadable_file_rejected(self, two_cluster_data, tmp_path):
        data, _ = two_cluster_data
        bad = tmp_path / "garbage.json"
        bad.write_text("{not json")
        with pytest.raises(DataShapeError):
            load_session(data, bad)

    def test_history_summary_persisted(self, two_cluster_data, tmp_path):
        import json

        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="blob-a")
        session.current_view()
        path = tmp_path / "session.json"
        save_session(session, path)
        payload = json.loads(path.read_text())
        assert payload["history"][0]["constraints_added"] == ["blob-a"]
        assert "top_score" in payload["history"][0]

    def test_shape_mismatch_reported_before_fingerprint(
        self, two_cluster_data, tmp_path
    ):
        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        path = tmp_path / "session.json"
        save_session(session, path)
        wrong_shape = data[: data.shape[0] // 2]
        with pytest.raises(DataShapeError, match="shape"):
            load_session(wrong_shape, path)

    def test_shape_stored_in_payload(self, two_cluster_data, tmp_path):
        import json

        data, _ = two_cluster_data
        session = ExplorationSession(data, seed=0)
        path = tmp_path / "session.json"
        save_session(session, path)
        payload = json.loads(path.read_text())
        assert payload["shape"] == list(data.shape)
        assert payload["fingerprint"]

    def test_undo_stack_round_trips(self, two_cluster_data, tmp_path):
        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="left")
        session.mark_cluster(np.flatnonzero(labels == 1), label="right")
        path = tmp_path / "session.json"
        save_session(session, path)

        restored = load_session(data, path, seed=0)
        assert restored.feedback_groups == session.feedback_groups
        assert restored.undo_last_feedback() == "right"
        assert restored.undo_last_feedback() == "left"
        assert restored.model.n_constraints == 0

    def test_legacy_payload_without_feedback_groups(
        self, two_cluster_data, tmp_path
    ):
        import json

        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="left")
        path = tmp_path / "session.json"
        save_session(session, path)
        payload = json.loads(path.read_text())
        del payload["feedback_groups"]  # simulate a pre-undo-stack file
        path.write_text(json.dumps(payload))

        restored = load_session(data, path, seed=0)
        # Best-effort grouping by label prefix recovers the one action.
        assert restored.undo_last_feedback() == "left"
        assert restored.model.n_constraints == 0

    def test_corrupt_feedback_groups_rejected(
        self, two_cluster_data, tmp_path
    ):
        import json

        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.current_view()
        session.mark_cluster(np.flatnonzero(labels == 0), label="left")
        path = tmp_path / "session.json"
        save_session(session, path)
        payload = json.loads(path.read_text())
        payload["feedback_groups"] = [["left", 999]]  # more than stored
        path.write_text(json.dumps(payload))
        with pytest.raises(DataShapeError):
            load_session(data, path, seed=0)

    def test_model_level_constraints_still_roundtrip(
        self, two_cluster_data, tmp_path
    ):
        # Constraints added via the model API (not session feedback) are
        # saveable and loadable; they are just not undoable.
        data, labels = two_cluster_data
        session = ExplorationSession(data, seed=0)
        session.model.add_cluster_constraint(
            np.flatnonzero(labels == 0), label="direct"
        )
        path = tmp_path / "session.json"
        save_session(session, path)
        restored = load_session(data, path, seed=0)
        assert restored.model.n_constraints == session.model.n_constraints
        assert restored.feedback_groups == ()
        assert restored.undo_last_feedback() is None


class TestModelParameterRoundtrip:
    def test_roundtrip(self, two_cluster_data, tmp_path):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.fit()
        path = tmp_path / "params.npz"
        save_model_parameters(model, path)

        fresh = BackgroundModel(data)
        fresh.add_cluster_constraint(np.flatnonzero(labels == 0))
        load_model_parameters(fresh, path)
        assert fresh.is_fitted
        np.testing.assert_allclose(fresh.whiten(), model.whiten(), atol=1e-10)

    def test_mismatched_constraints_rejected(self, two_cluster_data, tmp_path):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.add_cluster_constraint(np.flatnonzero(labels == 0))
        model.fit()
        path = tmp_path / "params.npz"
        save_model_parameters(model, path)

        fresh = BackgroundModel(data)
        fresh.add_cluster_constraint(np.flatnonzero(labels == 1))  # different
        with pytest.raises(DataShapeError):
            load_model_parameters(fresh, path)

    def test_mismatched_data_rejected(self, two_cluster_data, rng, tmp_path):
        data, labels = two_cluster_data
        model = BackgroundModel(data)
        model.fit()
        path = tmp_path / "params.npz"
        save_model_parameters(model, path)
        fresh = BackgroundModel(rng.standard_normal(data.shape))
        with pytest.raises(DataShapeError):
            load_model_parameters(fresh, path)
