"""Tests for the baseline methods."""

import numpy as np
import pytest

from repro.baselines.random_projection import best_of_random_views, random_view
from repro.baselines.randomization import ConstrainedRandomization
from repro.baselines.static_projection import (
    repeated_static_views,
    static_ica_view,
    static_pca_view,
)
from repro.errors import DataShapeError


class TestStaticViews:
    def test_static_pca_picks_dominant_variance(self, rng):
        data = rng.standard_normal((500, 3)) * np.array([5.0, 1.0, 1.0])
        view = static_pca_view(data)
        assert abs(view.axes[0][0]) > 0.95

    def test_static_ica_runs(self, rng):
        data = rng.standard_normal((500, 3))
        data[:250, 0] += 5.0
        view = static_ica_view(data, rng=np.random.default_rng(0))
        assert view.axes.shape == (2, 3)
        assert view.objective == "ica"

    def test_repeated_views_identical(self, rng):
        data = rng.standard_normal((100, 3))
        views = repeated_static_views(data, n_views=4)
        assert len(views) == 4
        assert all(v is views[0] for v in views)


class TestRandomViews:
    def test_axes_orthonormal(self):
        view = random_view(6, rng=np.random.default_rng(0))
        np.testing.assert_allclose(view.axes @ view.axes.T, np.eye(2), atol=1e-10)

    def test_dim_too_small_rejected(self):
        with pytest.raises(DataShapeError):
            random_view(1)

    def test_scores_computed_when_data_given(self, rng):
        data = rng.standard_normal((200, 4)) * np.array([4.0, 1, 1, 1])
        view = random_view(4, rng=np.random.default_rng(0), data=data)
        assert np.any(view.scores != 0.0)

    def test_best_of_random_beats_single(self, rng):
        data = rng.standard_normal((500, 5)) * np.array([6.0, 1, 1, 1, 1])
        single = random_view(5, rng=np.random.default_rng(1), data=data)
        best = best_of_random_views(
            data, n_candidates=100, rng=np.random.default_rng(1)
        )
        assert np.max(np.abs(best.scores)) >= np.max(np.abs(single.scores))

    def test_unknown_objective_rejected(self, rng):
        with pytest.raises(ValueError):
            best_of_random_views(rng.standard_normal((50, 3)), objective="x")


class TestConstrainedRandomization:
    def test_sample_preserves_group_marginals(self, rng):
        data = rng.standard_normal((100, 3))
        data[:50] += 5.0
        model = ConstrainedRandomization(data)
        model.add_group(range(50))
        sample = model.sample(rng=np.random.default_rng(0))
        # Group marginals preserved exactly (values permuted per column).
        for j in range(3):
            np.testing.assert_allclose(
                np.sort(sample[:50, j]), np.sort(data[:50, j])
            )

    def test_sample_destroys_within_group_correlation(self, rng):
        # Perfectly correlated columns become uncorrelated after
        # independent per-column permutation.
        t = rng.standard_normal(500)
        data = np.column_stack([t, t])
        model = ConstrainedRandomization(data)
        model.add_group(range(500))
        sample = model.sample(rng=np.random.default_rng(0))
        corr = np.corrcoef(sample, rowvar=False)[0, 1]
        assert abs(corr) < 0.2

    def test_overlapping_groups_refined(self, rng):
        data = rng.standard_normal((30, 2))
        model = ConstrainedRandomization(data)
        model.add_group(range(0, 20))
        model.add_group(range(10, 30))
        cells = model._partition()
        assert len(cells) == 3
        sizes = sorted(len(c) for c in cells)
        assert sizes == [10, 10, 10]

    def test_estimate_row_means_converges_to_group_mean(self, rng):
        data = rng.standard_normal((60, 2))
        data[:30] += 4.0
        model = ConstrainedRandomization(data)
        model.add_group(range(30))
        means = model.estimate_row_means(n_samples=200, rng=np.random.default_rng(1))
        np.testing.assert_allclose(
            means[:30].mean(axis=0), data[:30].mean(axis=0), atol=0.15
        )

    def test_empty_group_rejected(self, rng):
        model = ConstrainedRandomization(rng.standard_normal((10, 2)))
        with pytest.raises(DataShapeError):
            model.add_group([])

    def test_out_of_range_group_rejected(self, rng):
        model = ConstrainedRandomization(rng.standard_normal((10, 2)))
        with pytest.raises(DataShapeError):
            model.add_group([99])
