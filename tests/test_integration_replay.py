"""End-to-end integration: explore, persist, restore, continue.

A realistic analyst workflow across process boundaries: run part of a
session, save the knowledge state to disk, restore it into a fresh process
(simulated by fresh objects) and continue exploring — the restored session
must behave exactly like the uninterrupted one.
"""

import numpy as np
import pytest

from repro.core.session import ExplorationSession
from repro.datasets import three_d_clusters, x5
from repro.io import load_session, save_session


class TestReplayThreeD:
    @pytest.fixture
    def bundle(self):
        return three_d_clusters(seed=0)

    def test_interrupted_equals_uninterrupted(self, bundle, tmp_path):
        labels = bundle.labels
        blobs = [
            np.flatnonzero(labels == 0),
            np.flatnonzero(labels == 1),
            np.flatnonzero((labels == 2) | (labels == 3)),
        ]

        # Uninterrupted run.
        full = ExplorationSession(
            bundle.data, objective="pca", standardize=True, seed=0
        )
        full.current_view()
        for rows in blobs:
            full.mark_cluster(rows)
        final_full = full.current_view()

        # Interrupted run: stop after two markings, save, restore, finish.
        part = ExplorationSession(
            bundle.data, objective="pca", standardize=True, seed=0
        )
        part.current_view()
        part.mark_cluster(blobs[0])
        part.mark_cluster(blobs[1])
        path = tmp_path / "mid-session.json"
        save_session(part, path)

        resumed = load_session(bundle.data, path, standardize=True, seed=0)
        resumed.mark_cluster(blobs[2])
        final_resumed = resumed.current_view()

        # Same belief state -> same scores and same axis subspace.
        np.testing.assert_allclose(
            np.abs(final_resumed.scores), np.abs(final_full.scores), atol=1e-8
        )
        # Axes may flip sign; compare the projection subspace.
        cross = final_resumed.axes @ final_full.axes.T
        np.testing.assert_allclose(np.abs(np.linalg.det(cross)), 1.0, atol=1e-6)

    def test_restored_knowledge_matches(self, bundle, tmp_path):
        session = ExplorationSession(
            bundle.data, objective="pca", standardize=True, seed=0
        )
        session.current_view()
        session.mark_cluster(bundle.rows_with_label(0))
        session.current_view()
        before = session.model.knowledge_nats()
        path = tmp_path / "s.json"
        save_session(session, path)

        restored = load_session(bundle.data, path, standardize=True, seed=0)
        restored.current_view()
        assert restored.model.knowledge_nats() == pytest.approx(before, rel=1e-6)


class TestReplayX5:
    def test_objective_preserved(self, tmp_path):
        bundle = x5(n=400, seed=0)
        session = ExplorationSession(
            bundle.data, objective="ica", standardize=True, seed=0
        )
        session.current_view()
        session.mark_cluster(bundle.rows_with_label("A"))
        path = tmp_path / "x5.json"
        save_session(session, path)
        restored = load_session(bundle.data, path, standardize=True, seed=0)
        assert restored.objective == "ica"
        assert restored.model.n_constraints == session.model.n_constraints
