"""Tests for the selection model."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.ui.selection import (
    SelectionStore,
    select_by_label,
    select_ellipse,
    select_knn_blob,
    select_rectangle,
)


@pytest.fixture
def grid_points():
    """A 5x5 grid of projected points in [0, 4]^2."""
    xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
    return np.column_stack([xs.ravel(), ys.ravel()])


class TestSelectRectangle:
    def test_inclusive_bounds(self, grid_points):
        rows = select_rectangle(grid_points, (1.0, 2.0), (1.0, 2.0))
        assert rows.size == 4

    def test_swapped_bounds_normalised(self, grid_points):
        a = select_rectangle(grid_points, (2.0, 1.0), (2.0, 1.0))
        b = select_rectangle(grid_points, (1.0, 2.0), (1.0, 2.0))
        np.testing.assert_array_equal(a, b)

    def test_empty_selection(self, grid_points):
        rows = select_rectangle(grid_points, (10.0, 11.0), (10.0, 11.0))
        assert rows.size == 0

    def test_rejects_non_2d_projection(self):
        with pytest.raises(DataShapeError):
            select_rectangle(np.ones((5, 3)), (0, 1), (0, 1))


class TestSelectEllipse:
    def test_circle_membership(self, grid_points):
        rows = select_ellipse(grid_points, centre=(2.0, 2.0), radii=(1.1, 1.1))
        # centre + 4 direct neighbours.
        assert rows.size == 5

    def test_anisotropic_radii(self, grid_points):
        rows = select_ellipse(grid_points, centre=(2.0, 2.0), radii=(2.1, 0.5))
        pts = grid_points[rows]
        assert np.all(pts[:, 1] == 2.0)
        assert rows.size == 5

    def test_nonpositive_radius_rejected(self, grid_points):
        with pytest.raises(DataShapeError):
            select_ellipse(grid_points, (0, 0), (0.0, 1.0))


class TestSelectByLabel:
    def test_basic(self):
        labels = np.array(["a", "b", "a"])
        np.testing.assert_array_equal(select_by_label(labels, "a"), [0, 2])


class TestSelectKnnBlob:
    def test_selects_k_points(self, grid_points):
        rows = select_knn_blob(grid_points, seed_point=12, k=5)
        assert rows.size == 5
        assert 12 in rows

    def test_k_larger_than_n_capped(self, grid_points):
        rows = select_knn_blob(grid_points, seed_point=0, k=999)
        assert rows.size == grid_points.shape[0]

    def test_invalid_seed_rejected(self, grid_points):
        with pytest.raises(DataShapeError):
            select_knn_blob(grid_points, seed_point=-1, k=3)

    def test_invalid_k_rejected(self, grid_points):
        with pytest.raises(DataShapeError):
            select_knn_blob(grid_points, seed_point=0, k=0)


class TestSelectionStore:
    def test_save_load_roundtrip(self):
        store = SelectionStore()
        store.save("blob", [3, 1, 2])
        np.testing.assert_array_equal(store.load("blob"), [1, 2, 3])

    def test_load_returns_copy(self):
        store = SelectionStore()
        store.save("blob", [1, 2])
        loaded = store.load("blob")
        loaded[0] = 99
        np.testing.assert_array_equal(store.load("blob"), [1, 2])

    def test_missing_name_raises(self):
        with pytest.raises(KeyError):
            SelectionStore().load("nope")

    def test_empty_selection_rejected(self):
        with pytest.raises(DataShapeError):
            SelectionStore().save("empty", [])

    def test_remove_and_contains(self):
        store = SelectionStore()
        store.save("a", [0])
        assert "a" in store
        store.remove("a")
        assert "a" not in store
        assert len(store) == 0

    def test_names_insertion_order(self):
        store = SelectionStore()
        store.save("z", [0])
        store.save("a", [1])
        assert store.names() == ["z", "a"]
