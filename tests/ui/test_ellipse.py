"""Tests for the 95% confidence ellipses."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.ui.ellipse import confidence_ellipse


class TestConfidenceEllipse:
    def test_coverage_for_gaussian_cloud(self, rng):
        points = rng.multivariate_normal(
            [1.0, -2.0], [[2.0, 0.5], [0.5, 1.0]], size=5000
        )
        ellipse = confidence_ellipse(points, level=0.95)
        inside = ellipse.contains(points)
        assert float(np.mean(inside)) == pytest.approx(0.95, abs=0.02)

    def test_centre_is_sample_mean(self, rng):
        points = rng.standard_normal((500, 2)) + [3.0, 4.0]
        ellipse = confidence_ellipse(points)
        np.testing.assert_allclose(ellipse.centre, points.mean(axis=0))

    def test_axes_orthonormal(self, rng):
        points = rng.standard_normal((100, 2)) @ np.array([[2.0, 0.3], [0.0, 0.5]])
        ellipse = confidence_ellipse(points)
        np.testing.assert_allclose(
            ellipse.axes @ ellipse.axes.T, np.eye(2), atol=1e-10
        )

    def test_radii_sorted_descending(self, rng):
        points = rng.standard_normal((200, 2)) * np.array([5.0, 0.5])
        ellipse = confidence_ellipse(points)
        assert ellipse.radii[0] >= ellipse.radii[1]

    def test_level_changes_size(self, rng):
        points = rng.standard_normal((1000, 2))
        small = confidence_ellipse(points, level=0.5)
        big = confidence_ellipse(points, level=0.99)
        assert np.all(big.radii > small.radii)

    def test_boundary_points_on_contour(self, rng):
        points = rng.standard_normal((300, 2))
        ellipse = confidence_ellipse(points)
        boundary = ellipse.boundary(64)
        assert boundary.shape == (64, 2)
        # Boundary points are (numerically) on the unit contour: shrink a
        # hair inside -> contained; push a hair outside -> not.
        inner = ellipse.centre + 0.99 * (boundary - ellipse.centre)
        outer = ellipse.centre + 1.01 * (boundary - ellipse.centre)
        assert np.all(ellipse.contains(inner))
        assert not np.any(ellipse.contains(outer))

    def test_degenerate_line_cloud_safe(self, rng):
        # All points on a line: zero variance orthogonally.
        t = rng.standard_normal(100)
        points = np.column_stack([t, 2.0 * t])
        ellipse = confidence_ellipse(points)
        assert np.all(np.isfinite(ellipse.radii))
        assert ellipse.contains(points).mean() > 0.9

    def test_invalid_level_rejected(self, rng):
        with pytest.raises(DataShapeError):
            confidence_ellipse(rng.standard_normal((10, 2)), level=1.5)

    def test_too_few_points_rejected(self):
        with pytest.raises(DataShapeError):
            confidence_ellipse(np.ones((1, 2)))
