"""Tests for the statistics panel and pairplot ranking."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.ui.pairplot import build_pairplot
from repro.ui.statistics import attribute_separation, selection_statistics


class TestAttributeSeparation:
    def test_location_shift_detected(self, rng):
        data = rng.standard_normal((200, 3))
        data[:50, 1] += 10.0
        sep = attribute_separation(data, np.arange(50))
        assert np.argmax(sep) == 1
        assert sep[1] > 3.0

    def test_scale_difference_detected(self, rng):
        data = rng.standard_normal((400, 2))
        data[:100, 0] *= 20.0
        sep = attribute_separation(data, np.arange(100))
        assert sep[0] > sep[1]

    def test_empty_or_full_selection_is_zero(self, rng):
        data = rng.standard_normal((50, 2))
        np.testing.assert_array_equal(
            attribute_separation(data, np.arange(50)), [0.0, 0.0]
        )

    def test_no_difference_near_zero(self, rng):
        data = rng.standard_normal((2000, 2))
        sep = attribute_separation(data, np.arange(1000))
        assert np.all(sep < 0.2)


class TestSelectionStatistics:
    def test_panel_contents(self, rng):
        data = rng.standard_normal((100, 3))
        stats = selection_statistics(data, np.arange(30), ["a", "b", "c"])
        assert stats.n_selected == 30
        assert stats.n_total == 100
        assert [s.name for s in stats.full_summary] == ["a", "b", "c"]
        assert len(stats.selection_summary) == 3
        assert stats.separation.shape == (3,)

    def test_summary_values(self):
        data = np.array([[1.0], [2.0], [3.0], [4.0]])
        stats = selection_statistics(data, [0, 1])
        full = stats.full_summary[0]
        assert full.mean == pytest.approx(2.5)
        assert full.minimum == 1.0
        assert full.maximum == 4.0
        assert full.median == pytest.approx(2.5)
        sel = stats.selection_summary[0]
        assert sel.mean == pytest.approx(1.5)

    def test_empty_selection_rejected(self, rng):
        with pytest.raises(DataShapeError):
            selection_statistics(rng.standard_normal((10, 2)), [])

    def test_out_of_range_rejected(self, rng):
        with pytest.raises(DataShapeError):
            selection_statistics(rng.standard_normal((10, 2)), [99])


class TestBuildPairplot:
    def test_top_attributes_ranked(self, rng):
        data = rng.standard_normal((300, 6))
        data[:100, 4] += 8.0
        data[:100, 2] += 4.0
        model = build_pairplot(data, np.arange(100), max_attributes=3)
        assert model.attributes[0] == 4
        assert model.attributes[1] == 2
        assert len(model.attributes) == 3

    def test_panels_cover_offdiagonal(self, rng):
        data = rng.standard_normal((50, 4))
        model = build_pairplot(data, [0, 1, 2], max_attributes=3)
        assert len(model.panels) == 6  # 3x3 minus diagonal
        assert model.panels[(0, 1)].shape == (50, 2)

    def test_attribute_names_follow_ranking(self, rng):
        data = rng.standard_normal((100, 3))
        data[:30, 2] += 9.0
        model = build_pairplot(
            data, np.arange(30), feature_names=["u", "v", "w"], max_attributes=2
        )
        assert model.attribute_names[0] == "w"

    def test_max_attributes_capped_by_d(self, rng):
        data = rng.standard_normal((40, 2))
        model = build_pairplot(data, [0, 1], max_attributes=10)
        assert len(model.attributes) == 2

    def test_empty_selection_rejected(self, rng):
        with pytest.raises(DataShapeError):
            build_pairplot(rng.standard_normal((10, 2)), [])
