"""Integration tests for the headless SiderApp."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.ui.app import SiderApp
from repro.ui.state import Objective, PendingAction, UIState


class TestRenderLoop:
    def test_initial_frame_complete(self, two_cluster_data):
        data, _ = two_cluster_data
        app = SiderApp(data, seed=0)
        frame = app.render()
        assert frame.view.axes.shape == (2, 3)
        assert frame.scatterplot.points.shape == (100, 2)
        assert frame.scatterplot.ghost_points.shape == (100, 2)
        assert frame.scatterplot.segments.shape == (100, 2, 2)
        assert frame.pairplot is None      # nothing selected yet
        assert frame.statistics is None

    def test_selection_populates_panels(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        app.render()
        app.select_rows(np.flatnonzero(labels == 0))
        frame = app.render()
        assert frame.pairplot is not None
        assert frame.statistics is not None
        assert frame.statistics.n_selected == 60
        assert frame.scatterplot.selection_ellipse is not None

    def test_rectangle_selection_in_view_coordinates(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        frame = app.render()
        projected = frame.view.project(data)
        target = projected[np.flatnonzero(labels == 0)]
        pad = 0.5
        rows = app.select_rectangle(
            (target[:, 0].min() - pad, target[:, 0].max() + pad),
            (target[:, 1].min() - pad, target[:, 1].max() + pad),
        )
        # The rectangle around cluster 0 must recover mostly cluster 0.
        got = set(rows.tolist())
        want = set(np.flatnonzero(labels == 0).tolist())
        assert len(got & want) / len(want) > 0.95

    def test_full_interaction_cycle_reduces_score(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        frame0 = app.render()
        score0 = float(np.max(np.abs(frame0.view.scores)))
        for c in (0, 1):
            app.select_rows(np.flatnonzero(labels == c))
            app.add_cluster_constraint()
        app.update_background()
        frame1 = app.render()
        score1 = float(np.max(np.abs(frame1.view.scores)))
        assert score1 < 0.2 * score0

    def test_ghost_displacement_shrinks_after_constraints(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        frame0 = app.render()
        before = frame0.scatterplot.mean_displacement
        for c in (0, 1):
            app.select_rows(np.flatnonzero(labels == c))
            app.add_cluster_constraint()
        app.update_background()
        after = app.render().scatterplot.mean_displacement
        assert after < before

    def test_constraint_without_selection_rejected(self, two_cluster_data):
        data, _ = two_cluster_data
        app = SiderApp(data, seed=0)
        app.render()
        with pytest.raises(DataShapeError):
            app.add_cluster_constraint()

    def test_2d_constraint_flow(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        app.render()
        app.select_rows(np.flatnonzero(labels == 0))
        app.add_2d_constraint()
        app.update_background()
        assert app.session.model.n_constraints == 4

    def test_save_and_load_selection(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        app.render()
        rows = np.flatnonzero(labels == 1)
        app.select_rows(rows)
        app.save_selection("right")
        app.select_rows([0, 1])
        restored = app.load_selection("right")
        np.testing.assert_array_equal(restored, np.sort(rows))

    def test_toggle_objective(self, two_cluster_data):
        data, _ = two_cluster_data
        app = SiderApp(data, seed=0)
        assert app.toggle_objective() == "ica"
        frame = app.render()
        assert frame.view.objective == "ica"
        assert app.toggle_objective() == "pca"

    def test_action_log_records_commands(self, two_cluster_data):
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        app.render()
        app.select_rows(np.flatnonzero(labels == 0))
        app.add_cluster_constraint()
        app.update_background()
        log = " | ".join(app.state.action_log)
        assert "select" in log
        assert "add cluster constraint" in log
        assert "update background" in log


class TestUIState:
    def test_selection_validation(self):
        state = UIState()
        with pytest.raises(DataShapeError):
            state.set_selection(np.array([100]), n_rows=10)

    def test_clear_selection(self):
        state = UIState()
        state.set_selection(np.array([1, 2]), n_rows=10)
        state.clear_selection()
        assert state.selection.size == 0

    def test_refit_supersedes_view_recompute(self):
        state = UIState()
        state.mark_dirty(PendingAction.RECOMPUTE_VIEW)
        state.mark_dirty(PendingAction.REFIT)
        assert state.consume_pending() is PendingAction.REFIT
        assert state.pending is PendingAction.NONE

    def test_toggle_objective_flags_view(self):
        state = UIState()
        assert state.objective is Objective.PCA
        state.toggle_objective()
        assert state.objective is Objective.ICA
        assert state.pending is PendingAction.RECOMPUTE_VIEW
