"""Tests for the ASCII renderer."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.ui.render import render_scatterplot, render_score_bar
from repro.ui.app import SiderApp


@pytest.fixture
def rendered_frame(two_cluster_data):
    data, labels = two_cluster_data
    app = SiderApp(data, seed=0)
    app.render()
    app.select_rows(np.flatnonzero(labels == 0))
    return app.render()


class TestRenderScatterplot:
    def test_grid_dimensions(self, rendered_frame):
        text = render_scatterplot(rendered_frame.scatterplot, width=40, height=10)
        lines = text.splitlines()
        # frame top + 10 rows + frame bottom + 2 axis labels + legend.
        assert len(lines) == 15
        assert lines[0] == "+" + "-" * 40 + "+"
        assert all(len(line) == 42 for line in lines[:12])

    def test_contains_all_glyphs(self, rendered_frame):
        text = render_scatterplot(rendered_frame.scatterplot)
        assert "o" in text       # data
        assert "." in text       # ghosts
        assert "*" in text       # selection

    def test_ghosts_optional(self, rendered_frame):
        text = render_scatterplot(rendered_frame.scatterplot, show_ghosts=False)
        grid_part = "\n".join(text.splitlines()[1:-4])
        assert "." not in grid_part

    def test_axis_labels_present(self, rendered_frame):
        text = render_scatterplot(rendered_frame.scatterplot)
        assert "x: PCA1" in text
        assert "y: PCA2" in text

    def test_selection_count_in_legend(self, rendered_frame):
        text = render_scatterplot(rendered_frame.scatterplot)
        assert "selection (60)" in text

    def test_too_small_grid_rejected(self, rendered_frame):
        with pytest.raises(DataShapeError):
            render_scatterplot(rendered_frame.scatterplot, width=4, height=2)

    def test_separated_clusters_land_apart(self, two_cluster_data):
        # The two clusters must occupy different grid regions.
        data, labels = two_cluster_data
        app = SiderApp(data, seed=0)
        frame = app.render()
        text = render_scatterplot(frame.scatterplot, width=60, height=20,
                                  show_ghosts=False)
        rows_with_data = [
            i for i, line in enumerate(text.splitlines()[1:21]) if "o" in line
        ]
        # Data spans a nontrivial vertical range (clusters apart).
        assert max(rows_with_data) - min(rows_with_data) >= 5


class TestRenderScoreBar:
    def test_positive_and_negative_bars(self):
        text = render_score_bar(np.array([0.5, -0.25]))
        lines = text.splitlines()
        assert "#" in lines[0]
        assert "-" in lines[1]
        assert "+0.5000" in lines[0]

    def test_scaling_to_largest(self):
        text = render_score_bar(np.array([1.0, 0.5]), width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_scores_safe(self):
        text = render_score_bar(np.array([0.0, 0.0]))
        assert "score[0]" in text

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            render_score_bar(np.array([]))
