"""Direct tests for the scatterplot model builder."""

import numpy as np
import pytest

from repro.errors import DataShapeError
from repro.projection.view import Projection2D
from repro.ui.scatterplot import build_scatterplot


@pytest.fixture
def view():
    axes = np.zeros((2, 3))
    axes[0, 0] = 1.0
    axes[1, 1] = 1.0
    return Projection2D(
        axes=axes,
        scores=np.array([1.0, 0.5]),
        objective="pca",
        all_scores=np.array([1.0, 0.5, 0.0]),
    )


class TestBuildScatterplot:
    def test_points_and_ghosts_projected(self, view, rng):
        data = rng.standard_normal((40, 3))
        ghosts = rng.standard_normal((40, 3))
        model = build_scatterplot(view, data, ghosts)
        np.testing.assert_array_equal(model.points, data[:, :2])
        np.testing.assert_array_equal(model.ghost_points, ghosts[:, :2])

    def test_segments_connect_point_to_ghost(self, view, rng):
        data = rng.standard_normal((10, 3))
        ghosts = rng.standard_normal((10, 3))
        model = build_scatterplot(view, data, ghosts)
        np.testing.assert_array_equal(model.segments[:, 0, :], model.points)
        np.testing.assert_array_equal(model.segments[:, 1, :], model.ghost_points)

    def test_mean_displacement(self, view):
        data = np.zeros((5, 3))
        ghosts = np.zeros((5, 3))
        ghosts[:, 0] = 2.0  # displaced by 2 along the x axis
        model = build_scatterplot(view, data, ghosts)
        assert model.mean_displacement == pytest.approx(2.0)

    def test_ellipses_need_three_selected_points(self, view, rng):
        data = rng.standard_normal((20, 3))
        ghosts = rng.standard_normal((20, 3))
        two = build_scatterplot(view, data, ghosts, selection=[0, 1])
        assert two.selection_ellipse is None
        three = build_scatterplot(view, data, ghosts, selection=[0, 1, 2])
        assert three.selection_ellipse is not None
        assert three.ghost_ellipse is not None

    def test_selection_deduplicated(self, view, rng):
        data = rng.standard_normal((20, 3))
        model = build_scatterplot(view, data, data, selection=[3, 3, 1])
        np.testing.assert_array_equal(model.selection, [1, 3])

    def test_shape_mismatch_rejected(self, view, rng):
        with pytest.raises(DataShapeError):
            build_scatterplot(
                view, rng.standard_normal((10, 3)), rng.standard_normal((9, 3))
            )

    def test_selection_out_of_range_rejected(self, view, rng):
        data = rng.standard_normal((10, 3))
        with pytest.raises(DataShapeError):
            build_scatterplot(view, data, data, selection=[99])

    def test_axis_labels_carry_feature_names(self, view, rng):
        data = rng.standard_normal((10, 3))
        model = build_scatterplot(
            view, data, data, feature_names=["alpha", "beta", "gamma"]
        )
        assert "(alpha)" in model.x_label
        assert "(beta)" in model.y_label
