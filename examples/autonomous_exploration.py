"""Autonomous exploration: a policy plays the user, and the run replays.

Three things this example shows:

1. **A policy run** — :class:`SurpriseGreedy` explores the three-cluster
   synthetic dataset exactly like a user would: look at the most
   informative view, find the rows the background distribution considers
   most unlikely, mark the biggest group of them as a cluster, repeat
   until nothing surprising groups together any more.
2. **The knowledge curve** — every round's accumulated knowledge
   (KL from the prior, in nats) printed as a crude terminal plot; it is
   non-decreasing by construction.
3. **A trace replay** — the run is saved as a JSONL trace and replayed
   through a *fresh* session, landing on the bit-for-bit identical
   curve.  The same trace replays over a live ``/v1`` server too
   (``repro explore --replay run.jsonl --url http://...``).

Run with::

    PYTHONPATH=src python examples/autonomous_exploration.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ExplorationSession
from repro.datasets import three_d_clusters
from repro.explore import (
    InProcessDriver,
    in_process_driver_for,
    load_trace,
    make_policy,
    replay_trace,
    run_exploration,
    save_trace,
)


def knowledge_bar(value: float, best: float, width: int = 40) -> str:
    filled = int(round(width * (value / best))) if best > 0 else 0
    return "#" * filled + "." * (width - filled)


def main() -> None:
    bundle = three_d_clusters(seed=0)
    session = ExplorationSession(bundle.data, standardize=True, seed=0)
    driver = InProcessDriver(
        session,
        info={
            "dataset": "three-d",
            "standardize": True,
            "session_seed": 0,
            "warm_start": False,
        },
    )

    print(f"dataset: {bundle.name} {bundle.data.shape}")
    print("policy:  surprise (greedy high-surprise clustering)\n")
    result = run_exploration(
        make_policy("surprise"), driver, rounds=6, seed=0
    )

    curve = result.knowledge_curve()
    best = curve[-1]
    print("knowledge curve (nats):")
    print(f"  start    {curve[0]:8.2f}  {knowledge_bar(curve[0], best)}")
    for record in result.rounds:
        kinds = ",".join(type(fb).kind for fb in record.feedback) or "-"
        print(
            f"  round {record.index}  {record.knowledge_nats:8.2f}  "
            f"{knowledge_bar(record.knowledge_nats, best)}  [{kinds}]"
        )
    print(f"stopped by: {result.stopped_by}\n")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "run.jsonl"
        save_trace(result, trace_path)
        print(f"trace: {len(result.rounds)} rounds -> {trace_path.name}")

        trace = load_trace(trace_path)
        fresh = in_process_driver_for(trace, bundle.data)
        outcome = replay_trace(trace, fresh)
        print(f"replayed curve: {[round(k, 3) for k in outcome.actual_curve]}")
        print(f"recorded curve: {[round(k, 3) for k in outcome.expected_curve]}")
        print(f"bit-for-bit match: {outcome.matches}")


if __name__ == "__main__":
    main()
