"""Mixed-type data: the conclusion's categorical/ordinal extension.

The paper's framework is defined for real-valued data; its conclusion
suggests generalising to categorical and ordinal values.  This example
uses the straightforward route (repro.preprocess): rank-gaussianize
ordinal columns and one-hot encode categorical ones, then run the
unchanged MaxEnt loop.

The synthetic "survey" has a hidden segment structure: one respondent
segment is young, highly-satisfied and mobile-first — visible only as a
joint pattern across a numeric, an ordinal and a categorical column.
The exploration surfaces it, the analyst marks it, and the next view
moves on.  Views are rendered as ASCII scatterplots.

Objective choice: with one-hot columns the ICA objective is the wrong
tool — indicator columns are discrete and therefore non-Gaussian *by
construction*, so ICA permanently locks onto that unexplainable
discreteness.  The PCA objective ignores it (standardised indicators have
unit variance) and ranks *correlation* structure instead, which is exactly
where a cross-column segment lives.

Run with:  python examples/mixed_data_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.eval import jaccard_to_classes
from repro.preprocess import MixedEncoder
from repro.ui import SiderApp, render_scatterplot, render_score_bar


def make_survey(n: int = 900, seed: int = 0):
    """Synthetic survey table with a hidden 25% respondent segment."""
    rng = np.random.default_rng(seed)
    segment = rng.random(n) < 0.25

    age = np.where(
        segment, rng.normal(24.0, 3.0, n), rng.normal(47.0, 12.0, n)
    )
    satisfaction = np.where(
        segment,
        rng.choice([4, 5], n, p=[0.3, 0.7]),
        rng.choice([1, 2, 3, 4, 5], n, p=[0.15, 0.25, 0.3, 0.2, 0.1]),
    ).astype(float)
    device = np.where(
        segment,
        rng.choice(["mobile", "tablet"], n, p=[0.9, 0.1]),
        rng.choice(["desktop", "mobile", "tablet"], n, p=[0.6, 0.25, 0.15]),
    )
    spend = np.exp(rng.normal(3.0, 0.6, n))  # log-normal, segment-neutral
    table = {
        "age": age,
        "spend": spend,
        "satisfaction": satisfaction,
        "device": device,
    }
    labels = np.where(segment, "segment", "rest")
    return table, labels


def main() -> None:
    table, labels = make_survey()
    encoder = MixedEncoder(
        {
            "age": "numeric",
            "spend": "ordinal",          # heavy-tailed -> rank-gaussianize
            "satisfaction": "ordinal",
            "device": "categorical",
        }
    )
    encoded = encoder.fit_transform(table)
    names = encoder.feature_names()
    bundle = DatasetBundle(
        name="survey", data=encoded, labels=labels,
        feature_names=tuple(names),
    )
    print(f"encoded survey: {bundle.data.shape} from 4 source columns")
    print("features:", ", ".join(names))

    app = SiderApp(
        bundle.data, feature_names=names, objective="pca",
        standardize=True, seed=0,
    )
    frame = app.render()
    print("\nfirst view:")
    print(render_scatterplot(frame.scatterplot, width=64, height=16))
    print(render_score_bar(frame.view.all_scores[:4]))

    # Select the blob the view separates (geometric, labels unseen).
    projected = frame.view.project(app.session.data)
    centre = np.median(projected, axis=0)
    seed_point = int(np.argmax(np.linalg.norm(projected - centre, axis=1)))
    dist = np.linalg.norm(projected - projected[seed_point], axis=1)
    order = np.argsort(dist)
    gaps = np.diff(dist[order][10 : len(order) // 2])
    blob = np.sort(order[: 10 + int(np.argmax(gaps)) + 1])
    app.select_rows(blob)

    print(f"\nselected {blob.size} respondents; Jaccard to hidden groups:")
    for group, value in jaccard_to_classes(blob, labels).items():
        print(f"  {group:<8} {value:.3f}")

    app.add_cluster_constraint(label="young-mobile-satisfied")
    app.update_background()
    frame = app.render()
    print("\nafter marking the segment:")
    print(render_score_bar(frame.view.all_scores[:4]))
    print(
        "remaining top |score| "
        f"{max(abs(s) for s in frame.view.scores):.3f} — most of the joint "
        "age/satisfaction/device pattern is absorbed into the background "
        "(the residual comes from the part of the segment the lasso missed)."
    )


if __name__ == "__main__":
    main()
