"""Image Segmentation exploration: scale mismatch, clusters, outliers.

Reproduces the Fig. 9 use case on the surrogate UCI Image Segmentation
dataset (2310 regions x 19 attributes, 7 classes):

1. the raw-scale data vs the spherical prior — a gross mismatch, fixed by
   declaring the overall covariance known (1-cluster constraint);
2. the next (ICA) view shows >= 3 separated groups: 'sky', 'grass', and a
   central blob mixing the five man-made-surface classes;
3. after three cluster constraints the background matches the data and the
   following view surfaces the genuine outliers.

Run with:  python examples/segmentation_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import segmentation_surrogate
from repro.eval import jaccard_to_classes
from repro.ui import SiderApp


def main() -> None:
    bundle = segmentation_surrogate(seed=0)
    print(f"dataset: {bundle.n_rows} regions, {bundle.dim} attributes")

    app = SiderApp(
        bundle.data,
        feature_names=bundle.feature_names,
        objective="pca",
        standardize=False,   # the raw scales ARE the first insight
        seed=0,
    )
    frame = app.render()
    data_spread = float(np.mean(np.std(frame.scatterplot.points, axis=0)))
    ghost_spread = float(np.mean(np.std(frame.scatterplot.ghost_points, axis=0)))
    print(
        "\npanel a — initial view: background/data spread ratio "
        f"{max(ghost_spread, data_spread) / min(ghost_spread, data_spread):.0f}x "
        "(gross scale mismatch)"
    )

    app.add_one_cluster_constraint()
    app.toggle_objective()      # covariance constrained -> use ICA views
    app.update_background()
    frame = app.render()
    print(
        "panel b — after the 1-cluster constraint, top |ICA| scores: "
        + " ".join(f"{abs(s):.3f}" for s in frame.view.scores)
    )

    # Select the two extreme tight blobs and the central mass.
    projected = frame.view.project(app.session.data)
    centre = np.median(projected, axis=0)
    dist = np.linalg.norm(projected - centre, axis=1)

    def grow(seed_point: int) -> np.ndarray:
        d = np.linalg.norm(projected - projected[seed_point], axis=1)
        order = np.argsort(d)
        sorted_d = d[order]
        n = projected.shape[0]
        lo, hi = max(5, n // 100), int(0.8 * n)
        gaps = sorted_d[lo + 1 : hi] - sorted_d[lo : hi - 1]
        rel = gaps / np.maximum(sorted_d[lo : hi - 1], 1e-12)
        return np.sort(order[: lo + int(np.argmax(rel)) + 1])

    def dense_seed(masked_dist: np.ndarray) -> int:
        # A user lassos a *group*: take the farthest point that has at
        # least 10 close neighbours, not a stray outlier.
        scale = float(np.mean(np.std(projected, axis=0)))
        for candidate in np.argsort(masked_dist)[::-1][:200]:
            if masked_dist[candidate] == -np.inf:
                break
            tenth = np.sort(
                np.linalg.norm(projected - projected[candidate], axis=1)
            )[10]
            if tenth < 0.15 * scale:
                return int(candidate)
        return int(np.argmax(masked_dist))

    blob1 = grow(dense_seed(dist))
    masked = dist.copy()
    masked[blob1] = -np.inf
    blob2 = np.setdiff1d(grow(dense_seed(masked)), blob1)
    middle = np.setdiff1d(np.arange(bundle.n_rows), np.union1d(blob1, blob2))

    for name, blob in (("first extreme blob", blob1), ("second extreme blob", blob2)):
        best = next(iter(jaccard_to_classes(blob, bundle.labels).items()))
        print(f"  {name}: {blob.size} points, best match {best[0]} (J={best[1]:.3f})")
    middle_j = jaccard_to_classes(middle, bundle.labels)
    print(
        "  central blob: "
        + ", ".join(f"{k} {v:.2f}" for k, v in list(middle_j.items())[:5])
    )

    for rows, label in ((blob1, "blob-1"), (blob2, "blob-2"), (middle, "middle")):
        app.select_rows(rows)
        app.add_cluster_constraint(label=label)
    app.update_background()
    frame = app.render()
    print(
        "\npanel e — after three cluster constraints, top |ICA| scores: "
        + " ".join(f"{abs(s):.3f}" for s in frame.view.scores)
    )

    # Outlier check: the most extreme points of the whitened view.
    whitened = app.session.whitened()
    projw = whitened @ frame.view.axes.T
    dw = np.linalg.norm(projw - np.median(projw, axis=0), axis=1)
    extreme = np.argsort(dw)[::-1][:5]
    injected = set(int(i) for i in bundle.metadata["outlier_rows"])
    hits = sum(1 for i in extreme if int(i) in injected)
    print(
        f"panel f — of the 5 most extreme points in the next view, {hits} "
        "are injected outliers (the rest are stray unconstrained points)"
    )


if __name__ == "__main__":
    main()
