"""X̂5 walkthrough: the paper's running example with the ICA objective.

Reproduces the Fig. 4 / Table I storyline on the 5-D synthetic dataset:

* the first ICA view shows the four clusters living in dimensions 1-3;
* after cluster constraints for them, the next view switches to the three
  clusters of dimensions 4-5 — structure a static method would never
  surface because it is subordinate to the dominant variance;
* after marking those too, all ICA scores collapse: the background
  distribution has become a faithful model of the data.

Run with:  python examples/x5_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro import ExplorationSession
from repro.datasets import x5
from repro.feedback import ClusterFeedback


def print_score_row(stage: str, scores: np.ndarray) -> None:
    row = " ".join(f"{s:+.3f}" for s in scores)
    print(f"  {stage:<42} {row}")


def main() -> None:
    bundle = x5(seed=0)
    labels = bundle.labels
    labels45 = bundle.metadata["labels45"]
    print(f"dataset: {bundle.name}, shape {bundle.data.shape}")
    print("groupings: A-D in dims 1-3, E-G in dims 4-5 (75% coupled)")

    session = ExplorationSession(
        bundle.data, objective="ica", standardize=True, seed=0
    )

    print("\nICA scores per stage (the rows of Table I):")
    view0 = session.current_view()
    print_score_row("no constraints", view0.all_scores)

    for name in ("A", "B", "C", "D"):
        session.apply(ClusterFeedback(rows=np.flatnonzero(labels == name), label=f"cluster-{name}"))
    view1 = session.current_view()
    print_score_row("after 4 cluster constraints", view1.all_scores)

    for name in ("E", "F", "G"):
        session.apply(ClusterFeedback(rows=np.flatnonzero(labels45 == name), label=f"cluster-{name}"))
    view2 = session.current_view()
    print_score_row("after 3 more cluster constraints", view2.all_scores)

    print("\nwhere each stage's top axis points:")
    for stage, view in (("stage 0", view0), ("stage 1", view1), ("stage 2", view2)):
        axis = view.axes[0]
        load123 = float(np.sum(np.abs(axis[:3])))
        load45 = float(np.sum(np.abs(axis[3:])))
        print(f"  {stage}: |loading| dims1-3 = {load123:.2f}, dims4-5 = {load45:.2f}")

    print(
        "\nthe view moves from the dominant dims 1-3 structure to the "
        "subordinate dims 4-5 structure after feedback — the core claim "
        "of the paper."
    )


if __name__ == "__main__":
    main()
