"""Registering a custom projection-pursuit objective — no core edits.

The view objective is a plugin point: anything with a ``name``, a
``description``, ``find_directions(whitened, rng)`` and
``score(whitened, directions)`` can rank views.  Registering it makes it
usable everywhere an objective name is accepted — ``ExplorationSession``,
the ``repro explore`` CLI, and the ``/v1`` service API (it shows up in
``GET /v1/objectives`` and works for session creation and view requests).

Run with::

    PYTHONPATH=src python examples/custom_objective.py
"""

from __future__ import annotations

import numpy as np

from repro import ExplorationSession
from repro.datasets import three_d_clusters
from repro.projection import registry
from repro.service import ServiceClient, SessionManager, start_background


class SkewnessPursuit:
    """Rank the whitened axes by |skewness| — asymmetry as interestingness.

    Deliberately tiny: axis-aligned candidates only.  A serious objective
    would search direction space (see ``KurtosisObjective`` in
    ``repro/projection/registry.py`` for a fixed-point template).
    """

    name = "skewness"
    description = "axis-aligned directions ranked by |skewness|"

    def find_directions(
        self, whitened: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.eye(np.asarray(whitened).shape[1])

    def score(self, whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
        proj = np.asarray(whitened, dtype=np.float64) @ np.atleast_2d(
            directions
        ).T
        centred = proj - proj.mean(axis=0, keepdims=True)
        std = centred.std(axis=0, ddof=1)
        std[std == 0.0] = 1.0
        return np.mean((centred / std) ** 3, axis=0)


def main() -> None:
    registry.register(SkewnessPursuit())
    print("registered objectives:", ", ".join(registry.names()))

    # 1. Library: the custom name works like any built-in.
    bundle = three_d_clusters(seed=0)
    session = ExplorationSession(bundle.data, objective="skewness", seed=0)
    view = session.current_view()
    print("\nlibrary view under 'skewness':")
    print(view.describe(feature_names=list(bundle.feature_names)))

    # 2. Service: visible in /v1/objectives, usable end-to-end over HTTP.
    server = start_background(SessionManager({"three-d": bundle}))
    try:
        client = ServiceClient(server.base_url)
        names = [row["name"] for row in client.objectives()]
        print("\nGET /v1/objectives ->", ", ".join(names))

        sid = client.create_session("three-d", objective="skewness")
        payload = client.view(sid)
        print("service view objective:", payload["objective"])
        print("axis label:", payload["axis_labels"][0])
    finally:
        server.stop()


if __name__ == "__main__":
    main()
