"""Walkthrough: the multi-tenant session service, end to end.

Starts an in-process server on an ephemeral port, then drives the full
interactive loop through the HTTP client twice — the second session
replays the first one's feedback and is served from the solve cache.
Finally the session is checkpointed and resumed by a *fresh* manager,
simulating a server restart.

Run with::

    PYTHONPATH=src python examples/service_walkthrough.py
"""

import tempfile

import numpy as np

from repro.datasets import x5
from repro.service import (
    DirectoryStore,
    ServiceAPI,
    ServiceClient,
    SessionManager,
    start_background,
)


def main() -> None:
    bundle = x5(seed=0)
    cluster_a = [int(r) for r in np.flatnonzero(bundle.labels == "A")]
    store_dir = tempfile.mkdtemp(prefix="repro-sessions-")

    manager = SessionManager(
        {"x5": bundle.data}, store=DirectoryStore(store_dir)
    )
    server = start_background(ServiceAPI(manager))
    client = ServiceClient(server.base_url)
    print(f"server up on {server.base_url}, datasets: {client.datasets()}")

    # --- the interactive loop over HTTP --------------------------------
    sid = client.create_session("x5", standardize=True)
    view = client.view(sid)
    print(f"\nsession {sid}: first view (top |score| {view['top_score']:.3f})")
    print("  " + view["axis_labels"][0])

    client.mark_cluster(sid, cluster_a, label="cluster-A")
    view = client.view(sid)
    print(f"after marking cluster A: top |score| {view['top_score']:.3f} "
          f"(cache_hit={view['cache_hit']})")

    # --- a second analyst replays the same feedback: cache hit ---------
    sid2 = client.create_session("x5", standardize=True)
    client.mark_cluster(sid2, cluster_a, label="cluster-A")
    view2 = client.view(sid2)
    print(f"\nforked session {sid2}: cache_hit={view2['cache_hit']} "
          f"(no re-solve)")
    print("cache stats:", client.server_stats()["cache"])

    # --- checkpoint, restart, resume -----------------------------------
    client.checkpoint(sid)
    server.stop()
    print(f"\nserver stopped; checkpoints in {store_dir}")

    fresh = SessionManager({"x5": bundle.data}, store=DirectoryStore(store_dir))
    server = start_background(ServiceAPI(fresh))
    client = ServiceClient(server.base_url)
    resumed = client.view(sid)
    print(f"resumed {sid} in a fresh manager: top |score| "
          f"{resumed['top_score']:.3f}")
    print(f"undo after resume -> {client.undo(sid)!r}")
    server.stop()


if __name__ == "__main__":
    main()
