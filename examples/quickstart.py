"""Quickstart: the full interactive loop on the paper's 3-D example.

Reproduces the introduction walkthrough (Fig. 2): a first view shows three
clusters, the user marks them, the updated background matches, and the next
view reveals that one cluster actually splits in two along the third
dimension.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ExplorationSession
from repro.datasets import three_d_clusters
from repro.feedback import ClusterFeedback


def main() -> None:
    bundle = three_d_clusters(seed=0)
    print(f"dataset: {bundle.name}, shape {bundle.data.shape}")

    session = ExplorationSession(
        bundle.data, objective="pca", standardize=True, seed=0
    )

    # --- Iteration 1: what does the system show first? -------------------
    view = session.current_view()
    print("\nfirst view (most informative projection):")
    print(view.describe(feature_names=list(bundle.feature_names)))

    # A user would lasso the three visible blobs; we use the generator's
    # labels as a stand-in for the lasso (clusters 2 and 3 overlap in this
    # view, so the user sees them as ONE blob).
    labels = bundle.labels
    blobs = [
        np.flatnonzero(labels == 0),
        np.flatnonzero(labels == 1),
        np.flatnonzero((labels == 2) | (labels == 3)),
    ]
    for k, rows in enumerate(blobs):
        session.apply(ClusterFeedback(rows=rows, label=f"visible-blob-{k}"))
        print(f"marked blob {k} with {rows.size} points as a cluster")

    # --- Iteration 2: the belief state updated, what is new? -------------
    view2 = session.current_view()
    print("\nnext view (after updating the background distribution):")
    print(view2.describe(feature_names=list(bundle.feature_names)))
    print(
        "top axis X3 weight: "
        f"{max(abs(view2.axes[0][2]), abs(view2.axes[1][2])):.2f} "
        "-> the 'one' blob splits along X3"
    )

    # Mark the two sub-clusters the new view reveals.
    session.apply(ClusterFeedback(rows=np.flatnonzero(labels == 2), label="sub-cluster-2"))
    session.apply(ClusterFeedback(rows=np.flatnonzero(labels == 3), label="sub-cluster-3"))

    # --- Iteration 3: nothing left to see ---------------------------------
    view3 = session.current_view()
    print(
        "\nfinal top view scores: "
        + " ".join(f"{s:.2e}" for s in view3.scores)
    )
    print("fully explained:", session.is_explained(score_threshold=0.05))
    print("\niterations:", len(session.history))
    for record in session.history:
        added = ", ".join(record.constraints_added) or "(none)"
        print(
            f"  #{record.index}: top score "
            f"{max(abs(record.view.scores)):.3g}; feedback: {added}"
        )


if __name__ == "__main__":
    main()
