"""Walkthrough: the resilience layer, client side and server side.

Starts an in-process server with a tight admission bound, then shows
the five behaviours a production client leans on:

1. overload shedding (``503 overloaded`` + ``Retry-After``) and the
   client retrying through it;
2. request deadlines aborting solver work (``503 deadline_exceeded``);
3. exactly-once feedback via ``Idempotency-Key`` — a replayed batch is
   deduplicated, not double-applied;
4. the circuit breaker failing fast while the server is down, then
   probing its way closed again;
5. graceful drain via ``POST /v1/admin/drain`` and a successor resuming
   the checkpointed session.

Run with::

    PYTHONPATH=src python examples/resilient_client.py
"""

import tempfile

import numpy as np

from repro.datasets import three_d_clusters
from repro.resilience import AdmissionController, CircuitBreaker
from repro.service import (
    DirectoryStore,
    ServiceAPI,
    ServiceClient,
    SessionManager,
    start_background,
)
from repro.service.client import ServiceClientError


def main() -> None:
    bundle = three_d_clusters(seed=0)
    store_dir = tempfile.mkdtemp(prefix="repro-resilient-")

    manager = SessionManager(
        {"three-d": bundle.data}, store=DirectoryStore(store_dir)
    )
    api = ServiceAPI(
        manager,
        admission=AdmissionController(max_inflight=2, retry_after=0.05),
    )
    server = start_background(api)
    api.shutdown_hook = server.shutdown
    print(f"server up on {server.base_url} (max-inflight=2)")

    # --- 1. overload: hold both slots, watch a request get shed --------
    client = ServiceClient(server.base_url, retry_delay=0.05, max_retries=3)
    with api.admission.admit(), api.admission.admit():
        try:
            client.datasets()
        except ServiceClientError as exc:
            print(f"\nunder full load: {exc.status} kind="
                  f"{exc.payload.get('kind')} retry_after={exc.retry_after}")
    # Slots free again: the retrying client just succeeds.
    client.datasets()
    print(f"after load drops: served (attempts={client.last_attempts}, "
          f"counters={client.counters})")

    # --- 2. deadlines: a budget too small for a solve ------------------
    sid = client.create_session("three-d", session_id="walk", seed=0)
    client.mark_cluster(sid, rows=range(12), label="cluster-0")
    tight = ServiceClient(server.base_url, deadline_ms=0.001)
    try:
        tight.view(sid, objective="ica")
    except ServiceClientError as exc:
        print(f"\n0.001 ms budget: {exc.status} kind="
              f"{exc.payload.get('kind')} (not retried: "
              f"attempts={tight.last_attempts})")
    view = client.view(sid)  # no deadline: the solve completes
    print(f"roomy budget: view served, top |score| {view['top_score']:.3f}")

    # --- 3. exactly-once feedback --------------------------------------
    stats = client.apply_feedback(
        sid, [{"kind": "cluster", "rows": list(range(20, 30)),
               "label": "cluster-1"}],
        idempotency_key="demo-key",
    )
    replay = client.apply_feedback(
        sid, [{"kind": "cluster", "rows": list(range(20, 30)),
               "label": "cluster-1"}],
        idempotency_key="demo-key",
    )
    print(f"\nfeedback applied: {stats['applied']}; replayed with the same "
          f"key: duplicate={replay.get('duplicate')} "
          f"(total batches: {len(replay['feedback_log'])})")

    # --- 4. circuit breaker against a dead server ----------------------
    breaker = CircuitBreaker("demo", failure_threshold=2, cooldown=0.2)
    flaky = ServiceClient(
        "http://127.0.0.1:9",  # nothing listens here
        connect_retries=0, retry_delay=0.0, breaker=breaker,
    )
    for attempt in range(4):
        try:
            flaky.health()
        except ServiceClientError as exc:
            label = "breaker open, failed fast" if exc.breaker_open \
                else "connection refused"
            print(f"dead host attempt {attempt + 1}: {label}")
    print(f"breaker stats: {breaker.stats()}")

    # --- 5. graceful drain + successor ---------------------------------
    status = client._request("POST", "/admin/drain")
    print(f"\ndrain requested: {status}")
    import time
    while api.last_drain is None:
        time.sleep(0.01)
    print(f"drain report: checkpointed={api.last_drain['checkpointed']} "
          f"idle={api.last_drain['idle']}")

    successor = start_background(
        ServiceAPI(SessionManager(
            {"three-d": bundle.data}, store=DirectoryStore(store_dir)
        ))
    )
    client2 = ServiceClient(successor.base_url)
    resumed = client2.session("walk")
    print(f"successor resumed session 'walk' with "
          f"{len(resumed['feedback_log'])} feedback batches intact")
    successor.stop()


if __name__ == "__main__":
    main()
