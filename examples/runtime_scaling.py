"""Runtime scaling: regenerate (a trimmed) Table II on this machine.

Times the OPTIM phase of the MaxEnt solver and the FastICA run across a
grid of dataset sizes, printing the same rows as the paper's Table II.  Set
REPRO_FULL_GRID=1 to run the paper's full grid (n up to 8192, d up to 128 —
takes minutes).

Run with:  python examples/runtime_scaling.py
"""

from __future__ import annotations

from repro.experiments import table2_runtime


def main() -> None:
    result = table2_runtime.run(repeats=3)
    print(result.format_table())
    print()
    print("scaling shape on this machine:")
    print(
        f"  OPTIM max/min across n (fixed d,k): {result.optim_n_dependence():.2f}"
        "  (paper: ~1, independent of n)"
    )
    print(
        f"  OPTIM ~ d^{result.optim_d_exponent():.2f}"
        "  (paper: approaches d^3 once d^2 matrix work dominates)"
    )
    print(
        f"  ICA   ~ n^{result.ica_n_exponent():.2f}"
        "  (paper: ~n^1 at fixed d)"
    )


if __name__ == "__main__":
    main()
