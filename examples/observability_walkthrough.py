"""Walkthrough: observability across service → session → solver.

Enables ``repro.obs`` in-process, serves real traffic (including a few
deliberate client errors), then demonstrates the three faces of the
subsystem:

1. **tracing** — a client-supplied ``X-Repro-Trace-Id`` is adopted and
   echoed, and every request's event carries its span tree down to the
   solver;
2. **metrics** — ``GET /v1/metrics`` scraped in Prometheus text format
   and validated with the bundled parser;
3. **analysis** — the JSONL event log reduced to the same report the
   ``repro trace`` CLI prints.

Run with::

    PYTHONPATH=src python examples/observability_walkthrough.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.datasets import x5
from repro.obs import parse_prometheus
from repro.obs.analyze import analyze_log, format_analysis
from repro.service import (
    ServiceAPI,
    ServiceClient,
    SessionManager,
    start_background,
)
from repro.service.client import ServiceClientError


def main() -> None:
    log_path = Path(tempfile.mkdtemp(prefix="repro-obs-")) / "events.jsonl"

    # Everything below this call is traced; slow_ms=50 promotes any
    # request slower than 50 ms to full per-span detail in its event.
    obs.configure(event_log=log_path, slow_ms=50.0)

    bundle = x5(seed=0)
    manager = SessionManager({"x5": bundle.data})
    server = start_background(ServiceAPI(manager))
    client = ServiceClient(server.base_url)
    print(f"server up on {server.base_url}, events -> {log_path}")

    # --- traffic: the normal interactive loop --------------------------
    sid = client.create_session("x5", standardize=True)
    client.view(sid)
    cluster_a = [int(r) for r in np.flatnonzero(bundle.labels == "A")]
    client.mark_cluster(sid, cluster_a, label="cluster-A")
    client.view(sid)
    print(f"client trace id of the last request: {client.last_trace_id}")

    # --- traffic: deliberate errors become typed events ----------------
    for path in ("/sessions/no-such-session/view", "/nope"):
        try:
            client._request("GET", path)  # noqa: SLF001
        except ServiceClientError as exc:
            print(f"GET /v1{path} -> {exc.status} "
                  f"({exc.payload['error'][:40]}...)")

    # --- scrape /v1/metrics in Prometheus text format ------------------
    text = client.metrics_text()
    families = parse_prometheus(text)
    requests_total = sum(
        s["value"] for s in families["repro_requests_total"]["samples"]
    )
    print(f"\nscraped {len(families)} metric families, "
          f"{requests_total:.0f} requests counted so far; excerpt:")
    for line in text.splitlines():
        if line.startswith(("repro_requests_total", "repro_solver_sweeps")):
            print(f"  {line}")

    # --- analyze the event log (what `repro trace` prints) -------------
    server.stop()
    obs.disable()  # flushes and closes the event log
    print("\n" + format_analysis(analyze_log(log_path)))


if __name__ == "__main__":
    main()
