"""BNC exploration: driving the headless SIDER app on corpus data.

Reproduces the Fig. 7/8 use case on the surrogate British National Corpus:
1335 documents x 100 most-frequent-word counts, four genres.  The analyst
never sees the genre labels — they select on-screen blobs geometrically and
the labels are used only afterwards to score the selections (Jaccard), just
like the paper does.

Run with:  python examples/bnc_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import bnc_surrogate
from repro.eval import jaccard_to_classes
from repro.ui import SiderApp


def grow_blob(projected: np.ndarray, seed_point: int) -> np.ndarray:
    """Lasso stand-in: grow a neighbourhood to the largest density gap."""
    dist = np.linalg.norm(projected - projected[seed_point], axis=1)
    order = np.argsort(dist)
    sorted_dist = dist[order]
    n = projected.shape[0]
    lo, hi = max(5, n // 100), int(0.8 * n)
    gaps = sorted_dist[lo + 1 : hi] - sorted_dist[lo : hi - 1]
    rel = gaps / np.maximum(sorted_dist[lo : hi - 1], 1e-12)
    return np.sort(order[: lo + int(np.argmax(rel)) + 1])


def main() -> None:
    bundle = bnc_surrogate(seed=0)
    print(f"corpus: {bundle.n_rows} documents, {bundle.dim} word features")

    app = SiderApp(
        bundle.data,
        feature_names=bundle.feature_names,
        objective="pca",
        standardize=True,
        seed=0,
    )
    frame = app.render()
    print("\nround 0 — first view:")
    print(" ", frame.scatterplot.x_label)
    print(" ", frame.scatterplot.y_label)

    # Select the isolated blob (farthest dense point from the centre).
    projected = frame.view.project(app.session.data)
    centre = projected.mean(axis=0)
    seed_point = int(np.argmax(np.linalg.norm(projected - centre, axis=1)))
    blob = grow_blob(projected, seed_point)
    app.select_rows(blob)
    frame = app.render()

    print(f"\nselected {blob.size} points; Jaccard to genres:")
    for genre, value in jaccard_to_classes(blob, bundle.labels).items():
        print(f"  {genre:<28} {value:.3f}")
    print("top separating words:", ", ".join(frame.pairplot.attribute_names))

    # Mark it as a cluster, update, look again.
    app.add_cluster_constraint(label="conversations-blob")
    app.update_background()
    frame = app.render()
    print(
        "\nround 1 — after the cluster constraint, top view scores: "
        + " ".join(f"{s:.2f}" for s in frame.view.scores)
    )

    # Second selection: the tight formal-register blob.
    projected = frame.view.project(app.session.data)
    remaining = np.setdiff1d(np.arange(projected.shape[0]), blob)
    axis_coord = projected[:, 0]
    candidates = []
    for seed_point in (
        int(remaining[np.argmin(axis_coord[remaining])]),
        int(remaining[np.argmax(axis_coord[remaining])]),
    ):
        candidate = np.setdiff1d(grow_blob(projected, seed_point), blob)
        if candidate.size >= 10:
            tightness = float(np.mean(np.std(projected[candidate], axis=0)))
            candidates.append((tightness, candidate))
    candidates.sort(key=lambda item: item[0])
    blob2 = candidates[0][1]
    app.select_rows(blob2)
    print(f"\nselected {blob2.size} more points; Jaccard to genres:")
    for genre, value in jaccard_to_classes(blob2, bundle.labels).items():
        print(f"  {genre:<28} {value:.3f}")

    app.add_cluster_constraint(label="academic-news-blob")
    app.update_background()
    frame = app.render()
    print(
        "\nround 2 — top view scores now: "
        + " ".join(f"{s:.2f}" for s in frame.view.scores)
    )
    print(
        "two cluster constraints explain the corpus's most-frequent-word "
        "variation, as in the paper's Fig. 8."
    )


if __name__ == "__main__":
    main()
