"""Flow cytometry: the forward-looking application named in the paper.

The paper's conclusion reports that SIDER scales to flow-cytometry samples
of tens of thousands of rows and that its projections "reveal structure in
the data potentially interesting to the application specialist".  This
example runs the loop on a synthetic immunophenotyping panel:

1. the first views show the dominant cell populations (T cells,
   monocytes, ...);
2. the analyst marks them as clusters;
3. after the dominant populations are absorbed into the background, the
   remaining views surface the *rare* planted population (~1 % NKT-like
   cells) — structure a static projection never ranks first.

Run with:  python examples/cytometry_exploration.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ExplorationSession
from repro.datasets import cytometry_surrogate, downsample
from repro.eval import jaccard_to_classes
from repro.feedback import ClusterFeedback


def main() -> None:
    bundle = cytometry_surrogate(n_events=20000, seed=0)
    counts = bundle.metadata["population_counts"]
    print(f"panel: {bundle.n_rows} events x {bundle.dim} channels")
    print("populations:", {k: v for k, v in counts.items()})

    # Interactive practice (Sec. IV of the paper): downsample large files
    # first.  Selections found on the sample lift back to the full data.
    sample = downsample(bundle, 5000, rng=np.random.default_rng(0), stratify=True)
    print(f"\nexploring a stratified sample of {sample.n_rows} events")

    session = ExplorationSession(
        sample.data, objective="ica", standardize=True, seed=0
    )
    start = time.perf_counter()
    view = session.current_view()
    print(
        f"first view in {time.perf_counter() - start:.2f}s; "
        "top |scores| " + " ".join(f"{abs(s):.3f}" for s in view.scores)
    )

    # Mark the dominant populations (the analyst recognises them from
    # their marker signature; we script that with labels).  Debris is
    # gated out first in any real cytometry workflow, so it is marked too.
    dominant = (
        "t-helper", "t-cytotoxic", "b-cells", "nk-cells", "monocytes", "debris",
    )
    for name in dominant:
        session.apply(ClusterFeedback(rows=sample.rows_with_label(name), label=name))
    start = time.perf_counter()
    view = session.current_view()
    print(
        f"\nafter marking {len(dominant)} dominant populations "
        f"(refit + view in {time.perf_counter() - start:.2f}s):"
    )
    print("top |scores| " + " ".join(f"{abs(s):.3f}" for s in view.scores))

    # What stands out now?  Rows that deviate most from the belief state —
    # largest whitened norm, the per-row "surprise" the ghost-point
    # displacement visualises.  On screen these are the points farthest
    # from their gray ghosts; the analyst selects that fringe.
    whitened = session.whitened()
    surprise = np.linalg.norm(whitened, axis=1)
    blob = np.argsort(surprise)[::-1][:60]
    table = jaccard_to_classes(blob, sample.labels)
    best = next(iter(table.items()))
    print(
        f"\nmost deviating blob of the new view: best match {best[0]!r} "
        f"(Jaccard {best[1]:.2f}) — the planted ~1% population is "
        f"{bundle.metadata['rare_population']!r}"
    )

    # The marks were made on the sample; lift them back to the full data.
    from repro.datasets import lift_selection

    lifted = lift_selection(sample, blob)
    print(
        f"selection lifts to {lifted.size} rows of the full "
        f"{bundle.n_rows}-event file"
    )


if __name__ == "__main__":
    main()
