"""Walkthrough: the obs v2 operations loop — history, SLOs, profiler, top.

Runs a live server with the full observability stack on, drives traffic
at it, and then walks the four surfaces an operator actually uses:

1. **metrics history** — ``GET /v1/metrics/history`` returns the ring
   buffer the in-process recorder filled during the run, with rates and
   windowed latency quantiles derived server-side;
2. **SLOs** — ``GET /v1/health`` grades the run against the paper's
   interactivity budget; the same samples are then re-graded against a
   deliberately impossible budget to show what ``violating`` looks like
   (this is what ``repro slo check`` exits nonzero on);
3. **continuous profiling** — the ~100 Hz sampling profiler's collapsed
   stacks (flamegraph input) fetched from ``GET /v1/profile``;
4. **the dashboard** — one plain-text ``repro top`` frame rendered from
   two scrapes, plus a shard-merge demo: two registries merged into the
   fleet-wide view ``repro top`` would show behind a load balancer.

Run with::

    PYTHONPATH=src python examples/ops_dashboard.py
"""

from __future__ import annotations

import time

from repro import obs
from repro.datasets import x5
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import default_slos, evaluate_samples
from repro.obs.top import Dashboard
from repro.service import (
    ServiceAPI,
    ServiceClient,
    SessionManager,
    start_background,
)


def drive_traffic(client: ServiceClient, rounds: int = 6) -> None:
    # Twin sessions walk identical belief states, so the second one's
    # solves land in the shared solve cache — the cache-hit SLO needs
    # real hits to grade.
    sids = [client.create_session("x5", standardize=True) for _ in range(2)]
    for i in range(rounds):
        for sid in sids:
            client.view(sid)
            client.mark_cluster(sid, [i, i + 1, i + 2], label=f"blob-{i}")
    for sid in sids:
        client.view(sid)
        client.delete_session(sid)


def main() -> None:
    # slos=True switches on the whole v2 stack: the history recorder
    # (0.2 s cadence here so a short example fills the buffer), the SLO
    # engine behind /v1/health, and the extended endpoints.
    state = obs.configure(slos=True, history_interval=0.2)
    obs.start_profiler(interval=0.01)  # 100 Hz, like `repro serve --profile`

    bundle = x5(seed=0)
    server = start_background(ServiceAPI(SessionManager({"x5": bundle.data})))
    client = ServiceClient(server.base_url)
    print(f"server up on {server.base_url} (obs v2 + profiler on)")

    drive_traffic(client)
    time.sleep(0.5)  # let the recorder take post-traffic samples

    # --- 1. the metrics time-series ------------------------------------
    history = client.metrics_history()
    samples = history["samples"]
    derived = history["derived"]
    print(f"\nhistory: {len(samples)} samples at "
          f"{history['interval_seconds']}s cadence; derived over "
          f"{derived['window_seconds']:.1f}s window:")
    busy = sorted(
        derived["counters"].items(),
        key=lambda kv: kv[1]["rate"], reverse=True,
    )
    for key, stats in busy[:3]:
        print(f"  {key}: {stats['rate']:.1f}/s "
              f"(+{stats['increase']:.0f})")
    for key, stats in sorted(derived["histograms"].items()):
        if stats["count"]:
            print(f"  {key}: p99 {stats['p99'] * 1e3:.1f} ms "
                  f"over {stats['count']:.0f} obs")

    # --- 2. SLOs: healthy, then a forced breach ------------------------
    health = client.health()
    print(f"\nhealth: {health['status']}")
    for row in health["slos"]:
        long = row["long"]
        print(f"  {row['name']:<18} {row['status']:<9} "
              f"burn={long['burn']:.2f}")

    # Re-grade the same recorded samples against a 1 ms latency budget —
    # the exact check `repro slo check --view-p99-budget 0.001` runs.
    broken = evaluate_samples(
        state.history.window(), default_slos(view_p99_budget=0.001)
    )
    names = [r["name"] for r in broken["slos"] if r["status"] == "violating"]
    print(f"  ...with a 1 ms budget the report flips to "
          f"'{broken['status']}' ({', '.join(names)})")

    # --- 3. continuous profiling ---------------------------------------
    profile = client.profile()
    print(f"\nprofiler: {profile['samples']} samples, "
          f"{profile['unique_stacks']} unique stacks; hottest:")
    for line in client.profile_text().splitlines()[:3]:
        stack, _, count = line.rpartition(" ")
        leaf = stack.split(";")[-1]
        print(f"  {count:>4}x ...;{leaf}")

    # --- 4. one `repro top` frame, then the shard-merge view -----------
    dash = Dashboard(color=False)
    dash.add(client.metrics()["families"], client.health())
    drive_traffic(client, rounds=2)
    dash.add(client.metrics()["families"], client.health())
    print("\n" + dash.render(url=server.base_url))

    # Behind a load balancer each shard serves its own /v1/metrics; the
    # snapshots merge commutatively into the fleet-wide registry:
    # counters and histograms *sum*, gauges keep a per-source label so
    # point-in-time values are never averaged away.
    fleet = MetricsRegistry()
    for shard, requests, sessions in (("a", 3, 2), ("b", 5, 7)):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_requests_total", "requests", labelnames=("route",)
        )
        counter.labels(route="GET /v1/health").inc(requests)
        gauge = registry.gauge("repro_sessions_in_memory", "live sessions")
        gauge.default().set(sessions)
        fleet.merge(registry.to_snapshot(source=f"shard-{shard}"))
    merged = fleet.render_json()
    total = sum(
        s["value"] for s in merged["repro_requests_total"]["samples"]
    )
    gauges = {
        dict(s["labels"])["source"]: s["value"]
        for s in merged["repro_sessions_in_memory"]["samples"]
    }
    print(f"shard merge: {total:.0f} requests fleet-wide (counters sum), "
          f"sessions per shard: {gauges} (gauges stay labeled)")

    server.stop()
    obs.stop_profiler()
    obs.disable()


if __name__ == "__main__":
    main()
