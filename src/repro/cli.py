"""Command-line interface: run experiments and inspect datasets.

Usage (after install)::

    python -m repro list                       # what can be run
    python -m repro experiment table1         # regenerate one table/figure
    python -m repro experiment all            # regenerate everything
    python -m repro dataset x5                 # describe a dataset
    python -m repro objectives                 # registered view objectives
    python -m repro explore x5 --rounds 2      # scripted exploration demo
    python -m repro explore --policy surprise --dataset three-d \\
        --rounds 5 --trace t.jsonl             # autonomous exploration
    python -m repro explore --replay t.jsonl   # verify a recorded trace
    python -m repro serve --port 8000          # multi-tenant session service
    python -m repro serve --store sqlite:sessions.db --fsync batch  # durable
    python -m repro serve --obs --obs-log events.jsonl  # ... with tracing
    python -m repro store verify sqlite:sessions.db     # integrity sweep
    python -m repro store inspect sqlite:sessions.db    # sessions + log tails
    python -m repro store compact sqlite:sessions.db    # fold logs offline
    python -m repro loadgen --sessions 8       # policy-driven load generator
    python -m repro loadgen --obs              # ... + server-side metrics
    python -m repro trace events.jsonl         # analyze a request-event log
    python -m repro bench --quick              # vectorized-core benchmarks
    python -m repro slo check --url http://127.0.0.1:8000  # gate SLOs (CI)
    python -m repro top --url http://127.0.0.1:8000        # live dashboard

The CLI is a thin veneer over :mod:`repro.experiments` and
:mod:`repro.datasets`; everything it prints is available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

import numpy as np

from repro.core.session import ExplorationSession
from repro.datasets import (
    bnc_surrogate,
    cytometry_surrogate,
    segmentation_surrogate,
    three_d_clusters,
    x5,
)
from repro.experiments import (
    fig1_loop,
    fig2_synthetic3d,
    fig3_x5_structure,
    fig5_convergence,
    fig6_whitening,
    fig7_bnc_first_view,
    fig8_bnc_iterations,
    fig9_segmentation,
    table1_ica_scores,
    table2_runtime,
)
from repro.explore.policies import policy_names
from repro.feedback import ClusterFeedback
from repro.projection import registry

#: Experiment registry: name -> callable returning an object with
#: ``format_table()``.
EXPERIMENTS: dict[str, Callable[[], object]] = {
    "fig1": lambda: fig1_loop.run(),
    "fig2": lambda: fig2_synthetic3d.run(),
    "fig3": lambda: fig3_x5_structure.run(),
    "table1": lambda: table1_ica_scores.run(),
    "fig5": lambda: fig5_convergence.run(),
    "fig6": lambda: fig6_whitening.run(),
    "table2": lambda: table2_runtime.run(),
    "fig7": lambda: fig7_bnc_first_view.run()[0],
    "fig8": lambda: fig8_bnc_iterations.run(),
    "fig9": lambda: fig9_segmentation.run(),
}

#: Dataset registry: name -> zero-argument constructor.
DATASETS: dict[str, Callable[[], object]] = {
    "three-d": lambda: three_d_clusters(seed=0),
    "x5": lambda: x5(seed=0),
    "bnc": lambda: bnc_surrogate(seed=0),
    "segmentation": lambda: segmentation_surrogate(seed=0),
    "cytometry": lambda: cytometry_surrogate(seed=0),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIDER reproduction: experiments, datasets, exploration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and datasets")

    exp = sub.add_parser("experiment", help="run an experiment harness")
    exp.add_argument(
        "name", choices=sorted(EXPERIMENTS) + ["all"], help="which experiment"
    )

    data = sub.add_parser("dataset", help="describe a dataset")
    data.add_argument("name", choices=sorted(DATASETS))

    sub.add_parser("objectives", help="list registered view objectives")

    explore = sub.add_parser(
        "explore",
        help="scripted exploration demo / autonomous policy runs",
    )
    explore.add_argument("name", nargs="?", choices=sorted(DATASETS))
    explore.add_argument(
        "--dataset",
        choices=sorted(DATASETS),
        default=None,
        help="dataset to explore (alternative to the positional name)",
    )
    explore.add_argument("--rounds", type=int, default=2)
    # Choices come from the objective registry, so objectives registered by
    # user code (e.g. via a sitecustomize or plugin import) show up here.
    explore.add_argument(
        "--objective", choices=registry.names(), default="pca"
    )
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument(
        "--policy",
        choices=policy_names(),
        default=None,
        help="run autonomously with this exploration policy",
    )
    explore.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record the run as a replayable JSONL trace",
    )
    explore.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="replay a recorded trace and verify its knowledge curve",
    )
    explore.add_argument(
        "--url",
        default=None,
        help="replay against a running service instead of in-process",
    )
    explore.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="NATS",
        help="absolute per-point slack when verifying a replayed knowledge "
        "curve (0 = bit-for-bit; use a small value when replaying "
        "warm-start traces against a server)",
    )
    explore.add_argument(
        "--warm-start",
        action="store_true",
        help="seed each refit from the previous solve (incremental path)",
    )
    explore.add_argument(
        "--plateau-nats",
        type=float,
        default=None,
        metavar="NATS",
        help="also stop after 2 rounds gaining less than NATS of knowledge",
    )
    explore.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="also stop once the run exceeds this wall-clock budget",
    )

    loadgen = sub.add_parser(
        "loadgen", help="drive concurrent policy sessions against a service"
    )
    loadgen.add_argument(
        "--url",
        default=None,
        help="service base URL (default: start a temporary in-process server)",
    )
    loadgen.add_argument("--sessions", type=int, default=8)
    loadgen.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread-pool size (default: min(sessions, 8))",
    )
    loadgen.add_argument(
        "--policy",
        action="append",
        choices=policy_names(),
        default=None,
        help="policy name; repeat to mix (round-robin over sessions)",
    )
    loadgen.add_argument(
        "--dataset",
        action="append",
        choices=sorted(DATASETS),
        default=None,
        help="dataset name; repeat to mix (default: all served datasets)",
    )
    loadgen.add_argument("--rounds", type=int, default=3)
    loadgen.add_argument(
        "--objective", choices=registry.names(), default="pca"
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--output",
        default="BENCH_loadgen.json",
        metavar="PATH",
        help="where to write the JSON report",
    )
    loadgen.add_argument(
        "--obs",
        action="store_true",
        help="enable observability (on the temporary server, or scrape an "
        "external one) and cross-check server-side /v1/metrics latency "
        "histograms against the client-side percentiles",
    )
    loadgen.add_argument(
        "--obs-log",
        default=None,
        metavar="PATH",
        help="with --obs and a temporary server: write the structured "
        "JSONL request-event log here (implies --obs)",
    )
    loadgen.add_argument(
        "--scrape-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="with --obs: scrape /v1/metrics this often during the run "
        "and record the series in the report (0 disables; default 0.5)",
    )
    loadgen.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="send X-Repro-Deadline-Ms on every request; shed and "
        "deadline-exceeded responses land in the report's resilience "
        "counters",
    )
    loadgen.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="client-side fault injection, e.g. "
        "'client.request:error:p=0.05' (grammar: point:kind[:k=v...]); "
        "exercises retries and the circuit breaker",
    )
    loadgen.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="seed for --chaos fault draws (reproducible fault trains)",
    )
    loadgen.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        metavar="N",
        help="without --url: run the temporary server sharded over N "
        "worker processes (sticky session routing over a shared "
        "temporary sqlite store)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the vectorized-kernel benchmark suites, write BENCH_*.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (seconds, not minutes)",
    )
    bench.add_argument(
        "--suite",
        default="all",
        choices=("all", "core_solver", "projection", "store", "obs",
                 "resilience", "service"),
        help="which kernel suite to run (default: all)",
    )
    bench.add_argument(
        "--output-dir",
        default=".",
        metavar="DIR",
        help="where to write BENCH_<suite>.json artifacts",
    )
    bench.add_argument(
        "--check",
        default=None,
        metavar="PATH",
        help="fail if vectorized timings regress past the baselines file "
        "(e.g. benchmarks/baselines.json)",
    )
    bench.add_argument(
        "--refresh-existing",
        action="store_true",
        help="also re-run the pytest benchmark smoke suites to refresh "
        "their BENCH_*.json artifacts",
    )
    bench.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="run the HTTP session service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the service over N worker processes behind a sticky "
        "session router (default: 1 = single process); pair with --store "
        "for rebalancing of a dead worker's sessions onto survivors",
    )
    serve.add_argument(
        "--l2-cache",
        default=None,
        metavar="PATH",
        help="SQLite file for the shared cross-process solve-cache tier "
        "(default with --workers > 1: a temporary file all workers "
        "share; single-process: no L2)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help="session store URL: sqlite:PATH (durable write-ahead log), "
        "wal:PATH (JSON checkpoints + JSONL log), dir:PATH (checkpoints "
        "only), memory: (default)",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        help="checkpoint sessions as JSON files here (shorthand for "
        "--store dir:PATH)",
    )
    serve.add_argument(
        "--fsync",
        default="batch",
        choices=("always", "batch", "off"),
        help="durability of write-ahead appends on sqlite:/wal: stores "
        "(default: batch)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="in-memory sessions before LRU eviction",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="expire sessions idle longer than this many seconds",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=128,
        help="solve-cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--obs",
        action="store_true",
        help="enable request tracing and the /v1/metrics endpoint",
    )
    serve.add_argument(
        "--obs-log",
        default=None,
        metavar="PATH",
        help="write structured request events to this JSONL file "
        "(implies --obs)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=500.0,
        metavar="MS",
        help="requests slower than this carry full span detail in the "
        "event log",
    )
    serve.add_argument(
        "--obs-rotate-mb",
        type=float,
        default=None,
        metavar="MB",
        help="rotate the --obs-log event file once it reaches this size "
        "(numeric .N suffixes; repro trace spans rotations)",
    )
    serve.add_argument(
        "--history-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="with --obs: metrics time-series recording cadence for "
        "/v1/metrics/history (default: 1s)",
    )
    serve.add_argument(
        "--history-capacity",
        type=int,
        default=600,
        metavar="SAMPLES",
        help="with --obs: ring-buffer retention in samples (default: 600)",
    )
    serve.add_argument(
        "--view-p99-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --obs: p99 view-latency SLO ceiling (default: the "
        "paper's interactivity budget)",
    )
    serve.add_argument(
        "--profile",
        action="store_true",
        help="start the sampling stack profiler (collapsed stacks at "
        "/v1/profile; slow requests carry a profile excerpt)",
    )
    serve.add_argument(
        "--profile-hz",
        type=float,
        default=100.0,
        metavar="HZ",
        help="profiler sampling rate (default: 100)",
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline applied when the client sends no "
        "X-Repro-Deadline-Ms header; expired requests answer 503 "
        "deadline_exceeded (default: none)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission-control concurrency limit; excess requests are "
        "shed with 503 overloaded + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--drain-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="graceful-drain budget on SIGTERM or POST /v1/admin/drain: "
        "how long to wait for in-flight requests before checkpointing "
        "and exiting (default: 10)",
    )

    store_cmd = sub.add_parser(
        "store",
        help="inspect, verify, or compact a session store",
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    inspect = store_sub.add_parser(
        "inspect", help="summarise sessions, checkpoints, and log tails"
    )
    verify = store_sub.add_parser(
        "verify",
        help="integrity sweep: checkpoints parse, log tails are contiguous "
        "with valid checksums (exit 1 on any damage)",
    )
    verify.add_argument(
        "--policy",
        choices=("fail", "truncate"),
        default="fail",
        help="fail: any damage is an error (default); truncate: report "
        "what recovery would drop instead",
    )
    compact = store_sub.add_parser(
        "compact",
        help="fold feedback-log tails into fresh checkpoints offline",
    )
    compact.add_argument(
        "--session",
        default=None,
        metavar="ID",
        help="compact just this session (default: every session with a "
        "log tail)",
    )
    for store_action in (inspect, verify, compact):
        store_action.add_argument(
            "url",
            metavar="URL",
            help="store URL: sqlite:PATH, wal:PATH, or dir:PATH",
        )
        store_action.add_argument(
            "--json",
            action="store_true",
            help="print the full report as JSON",
        )

    trace = sub.add_parser(
        "trace",
        help="analyze a structured request-event log (REPRO_OBS_LOG)",
    )
    trace.add_argument(
        "log", metavar="PATH", help="JSONL event log written by the service"
    )
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many slowest requests to list (default: 10)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON instead of the table",
    )

    slo = sub.add_parser(
        "slo",
        help="evaluate service-level objectives over retained metrics",
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_sub.add_parser(
        "check",
        help="evaluate SLOs against a live server or a saved history; "
        "exit 1 when violated (CI gate)",
    )
    slo_check.add_argument(
        "--url",
        default=None,
        help="fetch /v1/metrics/history from this running service",
    )
    slo_check.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="evaluate a saved history instead: a /v1/metrics/history "
        "JSON dump, a bare sample list, or a BENCH_loadgen.json with a "
        "recorded obs series",
    )
    slo_check.add_argument(
        "--objective",
        action="append",
        default=None,
        metavar="NAME",
        help="gate only this objective (repeatable; unknown names fail); "
        "named objectives with no data also fail",
    )
    slo_check.add_argument(
        "--view-p99-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the p99 view-latency ceiling (default: the "
        "paper's interactivity budget)",
    )
    slo_check.add_argument(
        "--error-rate",
        type=float,
        default=0.01,
        metavar="RATIO",
        help="5xx-per-request ceiling (default: 0.01)",
    )
    slo_check.add_argument(
        "--cache-hit-floor",
        type=float,
        default=0.10,
        metavar="RATIO",
        help="windowed solve-cache hit-rate floor (default: 0.10)",
    )
    slo_check.add_argument(
        "--short-window", type=float, default=60.0, metavar="SECONDS"
    )
    slo_check.add_argument(
        "--long-window", type=float, default=300.0, metavar="SECONDS"
    )
    slo_check.add_argument(
        "--strict",
        action="store_true",
        help="also exit 1 on degraded (short-window) breaches",
    )
    slo_check.add_argument(
        "--json",
        action="store_true",
        help="print the full SLO report as JSON",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over /v1/metrics + /v1/health",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8000",
        help="service base URL (default: http://127.0.0.1:8000)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll/refresh interval (default: 2s)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    return parser


def cmd_list() -> int:
    print("experiments:", ", ".join(sorted(EXPERIMENTS)), "(or: all)")
    print("datasets:   ", ", ".join(sorted(DATASETS)))
    print("objectives: ", ", ".join(registry.names()))
    return 0


def cmd_objectives() -> int:
    width = max(len(row["name"]) for row in registry.describe())
    for row in registry.describe():
        print(f"{row['name']:<{width}}  {row['description']}")
    return 0


def cmd_experiment(name: str) -> int:
    names = sorted(EXPERIMENTS) if name == "all" else [name]
    for item in names:
        result = EXPERIMENTS[item]()
        print(result.format_table())  # type: ignore[attr-defined]
        print()
    return 0


def cmd_dataset(name: str) -> int:
    bundle = DATASETS[name]()
    print(f"name:     {bundle.name}")
    print(f"shape:    {bundle.data.shape}")
    print(f"features: {', '.join(bundle.feature_names[:10])}"
          + (" ..." if bundle.dim > 10 else ""))
    if bundle.labels is not None:
        classes = bundle.class_names()
        counts = {c: int(np.sum(bundle.labels == c)) for c in classes}
        print(f"classes:  {counts}")
    keys = [k for k in bundle.metadata if k != "seed"]
    if keys:
        print(f"metadata: {', '.join(keys)}")
    return 0


def cmd_explore(name: str, rounds: int, objective: str, seed: int) -> int:
    bundle = DATASETS[name]()
    if bundle.labels is None:
        print("dataset has no labels to script the feedback with", file=sys.stderr)
        return 1
    session = ExplorationSession(
        bundle.data, objective=objective, standardize=True, seed=seed
    )
    print(f"exploring {bundle.name} ({bundle.data.shape}) with {objective}")
    classes = bundle.class_names()
    for round_index in range(rounds):
        view = session.current_view()
        top = float(np.max(np.abs(view.scores)))
        print(f"round {round_index}: top |score| {top:.4f}")
        print("  " + view.axis_label(0, feature_names=list(bundle.feature_names)))
        if round_index < len(classes):
            rows = bundle.rows_with_label(classes[round_index])
            session.apply(
                ClusterFeedback(
                    rows=rows,
                    label=str(classes[round_index]),
                )
            )
            print(
                f"  marked class {classes[round_index]!r} "
                f"({rows.size} points) as a cluster"
            )
    final = session.current_view()
    print(f"final top |score| {float(np.max(np.abs(final.scores))):.4f}")
    return 0


def cmd_explore_policy(
    dataset: str,
    policy_name: str,
    rounds: int,
    objective: str,
    seed: int,
    trace_path: str | None,
    warm_start: bool,
    plateau_nats: float | None,
    max_seconds: float | None,
) -> int:
    """Autonomous exploration: a policy plays the user, headlessly."""
    from repro.explore import (
        InProcessDriver,
        KnowledgeGainPlateau,
        WallClockBudget,
        make_policy,
        run_exploration,
        save_trace,
    )

    bundle = DATASETS[dataset]()
    session = ExplorationSession(
        bundle.data,
        objective=objective,
        standardize=True,
        seed=seed,
        warm_start=warm_start,
    )
    driver = InProcessDriver(
        session,
        info={
            "dataset": dataset,
            "standardize": True,
            "session_seed": seed,
            "warm_start": warm_start,
        },
    )
    stopping = []
    if plateau_nats is not None:
        stopping.append(KnowledgeGainPlateau(min_gain_nats=plateau_nats))
    if max_seconds is not None:
        stopping.append(WallClockBudget(max_seconds=max_seconds))
    print(
        f"exploring {bundle.name} ({bundle.data.shape}) with "
        f"policy {policy_name!r}, objective {objective!r}, seed {seed}"
    )
    result = run_exploration(
        make_policy(policy_name),
        driver,
        rounds=rounds,
        stopping=stopping,
        seed=seed,
    )
    for record in result.rounds:
        kinds = ", ".join(type(fb).kind for fb in record.feedback) or "(none)"
        print(
            f"round {record.index}: objective {record.objective}, "
            f"top |score| {record.top_score:.4f}, feedback {kinds}, "
            f"knowledge {record.knowledge_nats:.3f} nats"
        )
    curve = result.knowledge_curve()
    print(f"knowledge curve (nats): {[round(k, 3) for k in curve]}")
    print(f"stopped by: {result.stopped_by}")
    if trace_path:
        save_trace(result, trace_path)
        print(f"trace written to {trace_path}")
    return 0


def cmd_explore_replay(
    trace_path: str, url: str | None, tolerance: float = 0.0
) -> int:
    """Replay a recorded trace and verify the knowledge curve matches."""
    from repro.explore import (
        in_process_driver_for,
        load_trace,
        remote_driver_for,
        replay_trace,
    )

    trace = load_trace(trace_path)
    dataset = trace.session_info.get("dataset")
    if url is not None:
        from repro.service import ServiceClient

        driver = remote_driver_for(trace, ServiceClient(url))
        where = url
    else:
        if dataset not in DATASETS:
            print(
                f"trace names unknown dataset {dataset!r}; "
                f"known: {sorted(DATASETS)}",
                file=sys.stderr,
            )
            return 1
        driver = in_process_driver_for(trace, DATASETS[dataset]().data)
        where = "in-process"
    result = replay_trace(trace, driver, tolerance=tolerance)
    print(f"replaying {trace_path} ({len(trace.rounds)} rounds, {where})")
    print(f"recorded curve: {[round(k, 3) for k in result.expected_curve]}")
    print(f"replayed curve: {[round(k, 3) for k in result.actual_curve]}")
    if result.matches:
        print("replay matches: identical feedback labels and knowledge curve")
        return 0
    print(f"replay MISMATCH: {result.mismatches}", file=sys.stderr)
    return 1


def cmd_loadgen(
    url: str | None,
    sessions: int,
    workers: int | None,
    policies: list[str] | None,
    datasets: list[str] | None,
    rounds: int,
    objective: str,
    seed: int,
    output: str,
    obs_enabled: bool = False,
    obs_log: str | None = None,
    scrape_interval: float = 0.5,
    deadline_ms: float | None = None,
    chaos_spec: str | None = None,
    chaos_seed: int | None = None,
    serve_workers: int = 1,
) -> int:
    """Policy-driven concurrent workload against a (possibly temp) server."""
    from repro.explore import (
        LoadGenConfig,
        format_report,
        run_loadgen,
        write_report,
    )

    obs_enabled = obs_enabled or obs_log is not None
    configured_obs = False
    if obs_enabled and url is None:
        # The temporary server runs in this process, so observability can
        # be switched on right here; against an external URL the server
        # operator controls it and loadgen only scrapes.
        from repro import obs as obs_module

        obs_module.configure(event_log=obs_log)
        configured_obs = True
    elif obs_log is not None:
        print(
            "--obs-log only applies to the temporary in-process server; "
            "an external server writes its own event log",
            file=sys.stderr,
        )
    server = None
    router = None
    if url is None and serve_workers > 1:
        import os
        import tempfile

        from repro.service import ReproServer
        from repro.service.router import ProcessWorker, Router, WorkerPool
        from repro.service.worker import WorkerConfig

        runtime_dir = tempfile.mkdtemp(prefix="repro-loadgen-shard-")
        store_url = f"sqlite:{os.path.join(runtime_dir, 'store.db')}"
        l2_path = os.path.join(runtime_dir, "solve-cache.db")

        def _factory(worker_id: int) -> ProcessWorker:
            return ProcessWorker(
                WorkerConfig(
                    worker_id=worker_id,
                    socket_path=os.path.join(
                        runtime_dir, f"worker-{worker_id}.sock"
                    ),
                    store_url=store_url,
                    l2_cache_path=l2_path,
                    obs=obs_enabled,
                )
            )

        print(f"starting temporary sharded service ({serve_workers} workers) ...")
        router = Router(
            WorkerPool(serve_workers, _factory),
            shared_store=True,
            dataset_names=sorted(DATASETS),
        )
        server = ReproServer(router, port=0).start_background()
        url = server.base_url
        print(f"started temporary sharded service on {url}")
    elif url is None:
        from repro.service import SessionManager, start_background

        server = start_background(SessionManager(DATASETS))
        url = server.base_url
        print(f"started temporary service on {url}")
    try:
        config = LoadGenConfig(
            url=url,
            sessions=sessions,
            workers=workers,
            policies=tuple(policies or ("objective-sweep",)),
            datasets=tuple(datasets) if datasets else None,
            rounds=rounds,
            objective=objective,
            seed=seed,
            obs=obs_enabled,
            scrape_interval=scrape_interval,
            deadline_ms=deadline_ms,
            chaos=chaos_spec,
            chaos_seed=chaos_seed,
        )
        print(
            f"loadgen: {config.sessions} session(s) x {config.rounds} "
            f"round(s), {config.resolved_workers()} worker(s), "
            f"policies {list(config.policies)}"
        )
        if chaos_spec:
            print(f"chaos: {chaos_spec}")
        report = run_loadgen(config)
    finally:
        if server is not None:
            server.stop()
        if router is not None:
            router.close()
        if configured_obs:
            from repro import obs as obs_module

            obs_module.disable()
    print(format_report(report))
    path = write_report(report, output)
    print(f"report written to {path}")
    if obs_log is not None and configured_obs:
        print(f"event log written to {obs_log} (analyze: repro trace {obs_log})")
    return 0 if report.totals["sessions_failed"] == 0 else 1


def cmd_bench(
    quick: bool,
    output_dir: str,
    check: str | None,
    refresh: bool,
    seed: int,
    suite: str = "all",
) -> int:
    """Run the vectorized-kernel benchmark suites; optionally gate on baselines."""
    from repro.bench import (
        SUITES,
        check_baselines,
        format_payload,
        refresh_existing,
        write_payload,
    )

    names = list(SUITES) if suite == "all" else [suite]
    failures: list[str] = []
    for name in names:
        payload = SUITES[name](quick=quick, seed=seed)
        print(format_payload(payload))
        path = write_payload(payload, output_dir)
        print(f"bench artifact: {path}")
        if check is not None:
            failures.extend(check_baselines(payload, check))

    status = 0
    if refresh:
        print("refreshing pytest benchmark artifacts ...")
        status = refresh_existing(output_dir)
    if check is not None:
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"baselines ok ({check})")
    return status


def cmd_serve(
    host: str,
    port: int,
    store_dir: str | None,
    max_sessions: int,
    ttl: float | None,
    cache_size: int,
    obs_enabled: bool = False,
    obs_log: str | None = None,
    slow_ms: float = 500.0,
    store_url: str | None = None,
    fsync: str = "batch",
    obs_rotate_mb: float | None = None,
    history_interval: float = 1.0,
    history_capacity: int = 600,
    view_p99_budget: float | None = None,
    profile: bool = False,
    profile_hz: float = 100.0,
    default_deadline_ms: float | None = None,
    max_inflight: int | None = None,
    drain_budget: float | None = None,
    workers: int = 1,
    l2_cache: str | None = None,
) -> int:
    import os
    import signal
    import threading

    from repro.resilience import (
        AdmissionController,
        run_drain,
    )
    from repro.resilience import chaos as chaos_module
    from repro.resilience.drain import DEFAULT_DRAIN_BUDGET
    from repro.service import (
        ReproServer,
        ServiceAPI,
        SessionManager,
        SolveCache,
        serve,
    )
    from repro.service.cache import L2SolveCache
    from repro.service.store import StoreError

    if drain_budget is None:
        drain_budget = DEFAULT_DRAIN_BUDGET

    if store_url is not None and store_dir is not None:
        print("--store and --store-dir are mutually exclusive", file=sys.stderr)
        return 2
    if store_url is None and store_dir is not None:
        store_url = f"dir:{store_dir}"
    if workers < 1:
        print(f"--workers must be >= 1, got {workers}", file=sys.stderr)
        return 2
    if workers > 1:
        return _cmd_serve_sharded(
            host=host,
            port=port,
            workers=workers,
            store_url=store_url,
            fsync=fsync,
            max_sessions=max_sessions,
            ttl=ttl,
            cache_size=cache_size,
            l2_cache=l2_cache,
            obs_enabled=obs_enabled,
            obs_log=obs_log,
            slow_ms=slow_ms,
            default_deadline_ms=default_deadline_ms,
            max_inflight=max_inflight,
            drain_budget=drain_budget,
        )
    store = None
    if store_url is not None:
        from repro.store import store_from_url

        try:
            store = store_from_url(store_url, fsync=fsync)
        except StoreError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    if obs_enabled or obs_log is not None:
        from repro import obs as obs_module
        from repro.obs.slo import default_slos

        slos = default_slos(**(
            {"view_p99_budget": view_p99_budget}
            if view_p99_budget is not None else {}
        ))
        obs_module.configure(
            event_log=obs_log,
            slow_ms=slow_ms,
            event_log_max_bytes=(
                int(obs_rotate_mb * 1024 * 1024)
                if obs_rotate_mb and obs_log else None
            ),
            slos=slos,
            history_interval=history_interval,
            history_capacity=history_capacity,
        )
    if profile:
        from repro import obs as obs_module

        obs_module.start_profiler(interval=1.0 / profile_hz)
    chaos_registry = chaos_module.configure_from_env(os.environ)
    cache = None
    if cache_size > 0:
        l2 = L2SolveCache(l2_cache) if l2_cache else None
        cache = SolveCache(max_entries=cache_size, l2=l2)
    manager = SessionManager(
        DATASETS,
        store=store,
        cache=cache,
        max_sessions=max_sessions,
        ttl_seconds=ttl,
    )
    api = ServiceAPI(
        manager,
        admission=AdmissionController(max_inflight=max_inflight),
        default_deadline_ms=default_deadline_ms,
        drain_budget=drain_budget,
    )
    server = ReproServer(api, host=host, port=port, quiet=False)
    # POST /v1/admin/drain stops the serve loop once the drain finishes.
    api.shutdown_hook = server.shutdown
    actual_port = server.server_address[1]
    print(f"repro service on http://{host}:{actual_port}")
    print("routes: /v1/... (unversioned paths kept as legacy aliases)")
    print(f"datasets:   {', '.join(manager.dataset_names())}")
    print(f"objectives: {', '.join(registry.names())}")
    if store is not None:
        durability = f", fsync={fsync}" if manager.durable else ""
        print(f"store: {store_url}{durability}")
    if obs_enabled or obs_log is not None:
        print(
            "observability: tracing on, metrics at /v1/metrics, history at "
            "/v1/metrics/history, SLOs in /v1/health"
            + (f", events -> {obs_log}" if obs_log else "")
        )
    if profile:
        print(
            f"profiler: sampling at {profile_hz:g} Hz, collapsed stacks "
            "at /v1/profile"
        )
    if max_inflight is not None or default_deadline_ms is not None:
        print(
            "resilience: "
            f"max-inflight={max_inflight if max_inflight else 'unbounded'}, "
            f"default-deadline-ms={default_deadline_ms or 'none'}, "
            f"drain-budget={drain_budget:g}s"
        )
    if chaos_registry is not None:
        print(
            "CHAOS INJECTION ACTIVE (REPRO_CHAOS): "
            + "; ".join(str(f.to_dict()) for f in chaos_registry.faults)
        )

    def checkpoint_on_shutdown() -> None:
        if manager.store is not None:
            print(f"checkpointed {manager.checkpoint_all()} session(s)")

    def drain_in_background() -> None:
        report = run_drain(
            api.admission,
            manager,
            budget_seconds=drain_budget,
            shutdown=server.shutdown,
        )
        print(
            f"drained: {report['checkpointed']} session(s) checkpointed, "
            f"{report['abandoned_inflight']} request(s) abandoned, "
            f"{report['elapsed_seconds']:.2f}s elapsed"
        )

    def handle_sigterm(signum, frame) -> None:
        # Graceful drain: stop admitting, let in-flight requests finish
        # inside the budget, checkpoint, then stop the serve loop.  Runs
        # on its own thread — server.shutdown() would deadlock if called
        # from a signal handler interrupting serve_forever's poll loop.
        print(f"SIGTERM: draining (budget {drain_budget:g}s) ...")
        threading.Thread(
            target=drain_in_background, name="repro-sigterm-drain",
            daemon=True,
        ).start()

    try:
        previous = signal.signal(signal.SIGTERM, handle_sigterm)
    except ValueError:
        previous = None  # not the main thread (embedded use); no handler
    try:
        serve(server, on_shutdown=checkpoint_on_shutdown)
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    return 0


def _cmd_serve_sharded(
    host: str,
    port: int,
    workers: int,
    store_url: str | None,
    fsync: str,
    max_sessions: int,
    ttl: float | None,
    cache_size: int,
    l2_cache: str | None,
    obs_enabled: bool,
    obs_log: str | None,
    slow_ms: float,
    default_deadline_ms: float | None,
    max_inflight: int | None,
    drain_budget: float,
) -> int:
    """``repro serve --workers N``: router front-end + worker processes."""
    import os
    import signal
    import tempfile
    import threading

    from repro.resilience.admission import AdmissionController
    from repro.service import ReproServer, serve
    from repro.service.router import ProcessWorker, Router, WorkerPool
    from repro.service.store import StoreError
    from repro.service.worker import WorkerConfig

    if store_url is not None:
        # Validate the URL here, where the error message is readable —
        # workers opening a broken store would only report "never ready".
        from repro.store import store_from_url

        try:
            store_from_url(store_url, fsync=fsync).close()
        except StoreError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    shared_store = store_url is not None
    runtime_dir = tempfile.mkdtemp(prefix="repro-shard-")
    if cache_size > 0 and l2_cache is None:
        l2_cache = os.path.join(runtime_dir, "solve-cache.db")

    if obs_enabled or obs_log is not None:
        # Router-side observability: shed counters and the merge source
        # label; each worker configures its own registry (WorkerConfig).
        from repro import obs as obs_module

        obs_module.configure(slow_ms=slow_ms)

    def factory(worker_id: int) -> ProcessWorker:
        return ProcessWorker(
            WorkerConfig(
                worker_id=worker_id,
                socket_path=os.path.join(
                    runtime_dir, f"worker-{worker_id}.sock"
                ),
                store_url=store_url,
                fsync=fsync,
                cache_size=cache_size,
                l2_cache_path=l2_cache if cache_size > 0 else None,
                max_sessions=max_sessions,
                ttl_seconds=ttl,
                default_deadline_ms=default_deadline_ms,
                obs=obs_enabled or obs_log is not None,
                obs_log=(
                    f"{obs_log}.worker{worker_id}" if obs_log else None
                ),
                slow_ms=slow_ms,
            )
        )

    print(f"starting {workers} worker process(es) ...")
    try:
        pool = WorkerPool(workers, factory)
    except Exception as exc:  # noqa: BLE001 — report and exit cleanly
        print(f"failed to start worker pool: {exc}", file=sys.stderr)
        return 2
    router = Router(
        pool,
        shared_store=shared_store,
        admission=AdmissionController(max_inflight=max_inflight),
        drain_budget=drain_budget,
        dataset_names=sorted(DATASETS),
    )
    server = ReproServer(router, host=host, port=port, quiet=False)
    # POST /v1/admin/drain stops the serve loop once the fleet drains.
    router.shutdown_hook = server.shutdown
    actual_port = server.server_address[1]
    print(f"repro sharded service on http://{host}:{actual_port}")
    print(
        f"workers: {workers} (sticky session routing, "
        + (
            "rebalance + recovery on worker death"
            if shared_store
            else "static ring — no shared store, sessions die with "
            "their worker"
        )
        + ")"
    )
    if store_url is not None:
        print(f"store: {store_url} (shared, fsync={fsync})")
    if cache_size > 0 and l2_cache:
        print(
            f"solve cache: L1 {cache_size} entries/worker + shared L2 "
            f"at {l2_cache}"
        )

    def drain_in_background() -> None:
        report = router.drain(drain_budget)
        print(
            f"drained: {report['checkpointed']} session(s) checkpointed "
            f"across {len(report['workers'])} worker(s), "
            f"{report['abandoned_inflight']} request(s) abandoned, "
            f"{report['elapsed_seconds']:.2f}s elapsed"
        )
        server.shutdown()

    def handle_sigterm(signum, frame) -> None:
        print(f"SIGTERM: draining fleet (budget {drain_budget:g}s) ...")
        threading.Thread(
            target=drain_in_background, name="repro-sigterm-drain",
            daemon=True,
        ).start()

    try:
        previous = signal.signal(signal.SIGTERM, handle_sigterm)
    except ValueError:
        previous = None  # not the main thread (embedded use)
    try:
        serve(server, on_shutdown=router.close)
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    return 0


def cmd_store(
    action: str,
    url: str,
    as_json: bool = False,
    policy: str = "fail",
    session: str | None = None,
) -> int:
    """``repro store inspect|verify|compact`` — offline store tooling."""
    import json

    from repro.service.store import SessionNotFoundError, StoreError
    from repro.store import (
        FeedbackLogStore,
        compact_offline,
        store_from_url,
        verify_store,
    )

    try:
        store = store_from_url(url)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if action == "inspect":
        sessions = {}
        for sid in store.list_ids():
            try:
                payload = store.get(sid)
                info = {
                    "checkpointed": True,
                    "dataset": payload.get("dataset"),
                    "checkpoint_wal_seq": int(payload.get("wal_seq", 0)),
                }
            except SessionNotFoundError:
                info = {"checkpointed": False}
            except StoreError as exc:
                info = {"checkpointed": False, "error": str(exc)}
            if isinstance(store, FeedbackLogStore):
                tail, damage = store.feedback_tail(
                    sid, after_seq=info.get("checkpoint_wal_seq", 0)
                )
                info["tail_records"] = len(tail)
                info["last_seq"] = store.last_seq(sid)
                if damage:
                    info["damage"] = damage
            sessions[sid] = info
        report = {
            "url": url,
            "backend": type(store).__name__,
            "durable": isinstance(store, FeedbackLogStore),
            "sessions": sessions,
        }
        if as_json:
            print(json.dumps(report, indent=2))
        else:
            print(f"{url} ({report['backend']}, "
                  f"{'durable' if report['durable'] else 'checkpoint-only'})")
            if not sessions:
                print("no sessions")
            for sid, info in sessions.items():
                parts = [f"dataset={info.get('dataset')}"]
                if "tail_records" in info:
                    parts.append(
                        f"wal_seq={info.get('checkpoint_wal_seq', 0)}"
                        f" tail={info['tail_records']}"
                    )
                if "damage" in info:
                    parts.append(f"DAMAGE: {info['damage']}")
                if "error" in info:
                    parts.append(f"ERROR: {info['error']}")
                print(f"  {sid}: " + " ".join(parts))
        return 0

    if action == "verify":
        report = verify_store(store, policy=policy)
        if as_json:
            print(json.dumps(report, indent=2))
        else:
            for sid, info in report["sessions"].items():
                line = f"  {sid}: {info['tail_records']} tail record(s)"
                for warning in info["warnings"]:
                    line += f"\n    WARNING {warning}"
                print(line)
            for sid, why in report["errors"].items():
                print(f"  {sid}: CORRUPT — {why}")
            print("store OK" if report["ok"] else "store has damage")
        return 0 if report["ok"] else 1

    # compact
    if not isinstance(store, FeedbackLogStore):
        print(
            f"{url} has no feedback log to compact (checkpoint-only store)",
            file=sys.stderr,
        )
        return 2
    ids = [session] if session else store.list_ids()
    results = {}
    status = 0
    for sid in ids:
        try:
            payload = store.get(sid)
            dataset = payload.get("dataset")
            if dataset not in DATASETS:
                raise StoreError(
                    f"checkpoint names unknown dataset {dataset!r}"
                )
            results[sid] = compact_offline(
                store,
                sid,
                DATASETS[dataset]().data,
                standardize=bool(payload.get("standardize", False)),
                seed=payload.get("seed", 0),
            )
        except (StoreError, SessionNotFoundError) as exc:
            results[sid] = {"error": str(exc)}
            status = 1
    if as_json:
        print(json.dumps(results, indent=2))
    else:
        for sid, info in results.items():
            if "error" in info:
                print(f"  {sid}: FAILED — {info['error']}")
            else:
                print(
                    f"  {sid}: replayed {info['replayed']}, pruned "
                    f"{info['pruned']}, wal_seq -> {info['wal_seq']}"
                )
    return status


def cmd_trace(log: str, top: int, as_json: bool) -> int:
    """Analyze a JSONL request-event log (``repro trace events.jsonl``)."""
    import json

    from repro.obs.analyze import analyze_log, format_analysis

    try:
        report = analyze_log(log, top=top)
    except OSError as exc:
        print(f"cannot read {log}: {exc}", file=sys.stderr)
        return 1
    if as_json:
        print(json.dumps(report, indent=2))
    else:
        print(format_analysis(report))
    return 0


def _load_history_samples(path: str) -> list[dict] | None:
    """Samples from a saved history file (several accepted shapes).

    Accepts a ``/v1/metrics/history`` dump (``{"samples": [...]}``), a
    bare sample list, or a ``BENCH_loadgen.json`` report carrying a
    recorded ``obs.series``.  Returns ``None`` when no samples are found.
    """
    import json

    with open(path, encoding="utf-8") as stream:
        payload = json.load(stream)
    if isinstance(payload, list):
        return payload
    if isinstance(payload, dict):
        if isinstance(payload.get("samples"), list):
            return payload["samples"]
        series = (payload.get("obs") or {}).get("series") or {}
        if isinstance(series.get("samples"), list):
            return series["samples"]
    return None


def cmd_slo_check(
    url: str | None,
    history: str | None,
    objectives: list[str] | None,
    view_p99_budget: float | None,
    error_rate: float,
    cache_hit_floor: float,
    short_window: float,
    long_window: float,
    strict: bool,
    as_json: bool,
) -> int:
    """``repro slo check`` — evaluate objectives, exit nonzero on breach.

    Exit codes: 0 objectives met, 1 violated (or degraded with
    ``--strict``, or an explicitly named objective has no data),
    2 usage/data errors (no source, unreachable server, empty history).
    """
    import json

    from repro.obs.slo import (
        INTERACTIVITY_BUDGET_SECONDS,
        default_slos,
        evaluate_samples,
    )

    if (url is None) == (history is None):
        print("slo check needs exactly one of --url or --history",
              file=sys.stderr)
        return 2
    if url is not None:
        from repro.service import ServiceClient

        payload = ServiceClient(url).metrics_history()
        if not payload.get("enabled"):
            print(
                f"{url} has no metrics history — start the server with "
                "`repro serve --obs`",
                file=sys.stderr,
            )
            return 2
        samples = payload.get("samples", [])
        source = url
    else:
        try:
            samples = _load_history_samples(history)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {history}: {exc}", file=sys.stderr)
            return 2
        if samples is None:
            print(
                f"{history} carries no metrics samples (expected a "
                "/v1/metrics/history dump, a sample list, or a loadgen "
                "report with an obs series)",
                file=sys.stderr,
            )
            return 2
        source = history
    if len(samples) < 2:
        print(
            f"{source}: {len(samples)} sample(s) retained — need at least "
            "2 to evaluate a window",
            file=sys.stderr,
        )
        return 2

    slos = default_slos(
        view_p99_budget=(
            view_p99_budget if view_p99_budget is not None
            else INTERACTIVITY_BUDGET_SECONDS
        ),
        error_rate_ceiling=error_rate,
        cache_hit_floor=cache_hit_floor,
    )
    if objectives:
        known = {slo.name for slo in slos}
        unknown = [name for name in objectives if name not in known]
        if unknown:
            print(
                f"unknown objective(s) {unknown}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        slos = tuple(slo for slo in slos if slo.name in objectives)
    report = evaluate_samples(
        samples, slos, short_window=short_window, long_window=long_window
    )
    if as_json:
        print(json.dumps(report, indent=2))
    else:
        print(f"slo check ({source}, {report['samples']} samples)")
        for row in report["slos"]:
            short = row["short"]
            measured = short["measured"]
            burn = short["burn"]
            print(
                f"  {row['name']:<20} {row['status']:<10} "
                f"measured={'-' if measured is None else f'{measured:.4g}'} "
                f"threshold={short['threshold']:g} "
                f"burn={'-' if burn is None else f'{burn:.2f}'}"
            )
    failed = [r["name"] for r in report["slos"] if r["status"] == "violating"]
    if strict:
        failed += [r["name"] for r in report["slos"]
                   if r["status"] == "degraded"]
    if objectives:
        # A named objective we cannot measure is a failed gate, not a pass.
        failed += [r["name"] for r in report["slos"]
                   if r["status"] == "no_data"]
    if failed:
        print(f"SLO FAILED: {', '.join(sorted(set(failed)))}",
              file=sys.stderr)
        return 1
    print(f"slo ok ({report['status']})")
    return 0


def cmd_top(url: str, interval: float, iterations: int | None) -> int:
    """``repro top`` — live ops dashboard over a running service."""
    from repro.obs.top import run_top
    from repro.service.client import ServiceClientError

    try:
        return run_top(url, interval=interval, iterations=iterations)
    except ServiceClientError as exc:
        print(f"cannot reach {url}: {exc}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the console script."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "experiment":
        return cmd_experiment(args.name)
    if args.command == "dataset":
        return cmd_dataset(args.name)
    if args.command == "objectives":
        return cmd_objectives()
    if args.command == "explore":
        if args.replay is not None:
            return cmd_explore_replay(args.replay, args.url, args.tolerance)
        dataset = args.dataset or args.name
        if dataset is None:
            print(
                "explore needs a dataset (positional name or --dataset)",
                file=sys.stderr,
            )
            return 2
        if args.policy is not None:
            return cmd_explore_policy(
                dataset,
                args.policy,
                args.rounds,
                args.objective,
                args.seed,
                args.trace,
                args.warm_start,
                args.plateau_nats,
                args.max_seconds,
            )
        return cmd_explore(dataset, args.rounds, args.objective, args.seed)
    if args.command == "loadgen":
        return cmd_loadgen(
            args.url,
            args.sessions,
            args.workers,
            args.policy,
            args.dataset,
            args.rounds,
            args.objective,
            args.seed,
            args.output,
            args.obs,
            args.obs_log,
            args.scrape_interval,
            args.deadline_ms,
            args.chaos,
            args.chaos_seed,
            args.serve_workers,
        )
    if args.command == "bench":
        return cmd_bench(
            args.quick,
            args.output_dir,
            args.check,
            args.refresh_existing,
            args.seed,
            args.suite,
        )
    if args.command == "serve":
        return cmd_serve(
            args.host,
            args.port,
            args.store_dir,
            args.max_sessions,
            args.ttl,
            args.cache_size,
            args.obs,
            args.obs_log,
            args.slow_ms,
            args.store,
            args.fsync,
            args.obs_rotate_mb,
            args.history_interval,
            args.history_capacity,
            args.view_p99_budget,
            args.profile,
            args.profile_hz,
            args.default_deadline_ms,
            args.max_inflight,
            args.drain_budget,
            args.workers,
            args.l2_cache,
        )
    if args.command == "store":
        return cmd_store(
            args.store_command,
            args.url,
            as_json=args.json,
            policy=getattr(args, "policy", "fail"),
            session=getattr(args, "session", None),
        )
    if args.command == "trace":
        return cmd_trace(args.log, args.top, args.json)
    if args.command == "slo":
        return cmd_slo_check(
            args.url,
            args.history,
            args.objective,
            args.view_p99_budget,
            args.error_rate,
            args.cache_hit_floor,
            args.short_window,
            args.long_window,
            args.strict,
            args.json,
        )
    if args.command == "top":
        return cmd_top(args.url, args.interval, args.iterations)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
