"""Lightweight perf instrumentation: nested timers and counters.

The hot paths of the solver, whitening/sampling, and the service are
instrumented with :func:`timer` blocks and :func:`add` counters.  The
registry is **disabled by default** and costs one attribute check per
instrumented call site when off — no locks are taken, no timestamps are
read, and ``timer()`` hands back a shared no-op context manager, so the
solver's per-sweep overhead stays effectively zero.

When enabled (programmatically via :func:`enable` or by setting the
``REPRO_PERF=1`` environment variable before import), every ``timer``
block records its call count and accumulated wall-clock seconds under a
slash-separated path that reflects runtime nesting: a ``"optim"`` timer
entered while a ``"solve"`` timer is open on the same thread records as
``"solve/optim"``.  Aggregation is guarded by a lock so concurrent
service threads can share one registry; the nesting stack itself is
thread-local.

Usage::

    from repro import perf

    perf.enable()
    with perf.timer("solve"):
        with perf.timer("init"):
            ...                       # recorded as "solve/init"
        perf.add("sweeps", 12)
    print(perf.snapshot())
    perf.reset()

``snapshot()`` returns plain dicts (JSON-ready); the service's
``GET /v1/stats`` route embeds it under ``"perf"`` together with an
``"enabled"`` marker.

When :mod:`repro.obs` is enabled it installs a span bridge at
:data:`trace_sink`: timer blocks on the *process-wide* registry then
also report ``(path, start, duration)`` into whatever request trace is
active in the calling context, whether or not the registry itself is
recording — so the existing instrumentation points double as per-request
spans with no extra call sites.  Timers are exception-safe either way:
the nesting stack is popped on the ``with`` block's exit even when the
body raises, so a failing solve can never corrupt the paths recorded by
later requests on the same thread.
"""

from __future__ import annotations

import os
import threading
import time

#: Span sink installed by :func:`repro.obs.configure` while tracing is
#: enabled; ``None`` otherwise.  Must expose ``span(path, started,
#: elapsed, failed)`` and ``count(name, value)``.  Only the process-wide
#: :data:`registry` feeds it — private registries built by tests stay
#: silent.
trace_sink = None


class _NullTimer:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    """One live timing block; records on exit under the nested path."""

    __slots__ = ("registry", "name", "started")

    def __init__(self, registry: "PerfRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self.started = 0.0

    def __enter__(self) -> "_Timer":
        stack = self.registry._stack()
        stack.append(self.name)
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self.started
        reg = self.registry
        stack = reg._stack()
        try:
            path = "/".join(stack)
        finally:
            # The pop must survive anything above it: a frame left behind
            # would prefix every later path on this thread.
            if stack:
                stack.pop()
        if reg.enabled:
            reg._record_timing(path, elapsed)
        sink = trace_sink
        if sink is not None and reg is registry:
            sink.span(path, self.started, elapsed, exc_type is not None)
        return None


class PerfRegistry:
    """Thread-safe store of nested timings and named counters.

    One module-level instance (:data:`registry`) backs the convenience
    functions below; independent registries can be created for tests.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._local = threading.local()
        # path -> [calls, total_seconds]
        self._timings: dict[str, list] = {}
        self._counters: dict[str, float] = {}

    # -- state ----------------------------------------------------------

    def enable(self) -> None:
        """Turn recording on (instrumented sites start paying for real)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; accumulated data is kept until reset()."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all accumulated timings and counters."""
        with self._lock:
            self._timings.clear()
            self._counters.clear()

    # -- recording ------------------------------------------------------

    def timer(self, name: str):
        """Context manager timing a block under the current nesting path.

        Live when the registry records *or* (process-wide registry only)
        a trace sink is installed; the shared no-op otherwise.
        """
        if not self.enabled and (
            trace_sink is None or self is not registry
        ):
            return _NULL_TIMER
        return _Timer(self, name)

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value`` (no-op while disabled)."""
        sink = trace_sink
        if sink is not None and self is registry:
            sink.count(name, value)
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record_timing(self, path: str, elapsed: float) -> None:
        with self._lock:
            entry = self._timings.get(path)
            if entry is None:
                self._timings[path] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy: ``{"timings": {...}, "counters": {...}}``.

        Each timing entry is ``{"calls": int, "seconds": float}``; paths
        are sorted for stable output.
        """
        with self._lock:
            timings = {
                path: {"calls": int(calls), "seconds": float(seconds)}
                for path, (calls, seconds) in sorted(self._timings.items())
            }
            counters = dict(sorted(self._counters.items()))
        return {"timings": timings, "counters": counters}


#: The process-wide registry used by the convenience functions.
registry = PerfRegistry(enabled=os.environ.get("REPRO_PERF", "") == "1")


def enable() -> None:
    """Enable the process-wide registry."""
    registry.enable()


def disable() -> None:
    """Disable the process-wide registry."""
    registry.disable()


def is_enabled() -> bool:
    """Whether the process-wide registry is currently recording."""
    return registry.enabled


def reset() -> None:
    """Clear the process-wide registry."""
    registry.reset()


def timer(name: str):
    """Time a block on the process-wide registry (no-op when disabled)."""
    return registry.timer(name)


def add(name: str, value: float = 1) -> None:
    """Bump a counter on the process-wide registry (no-op when disabled)."""
    registry.add(name, value)


def snapshot() -> dict:
    """Snapshot of the process-wide registry."""
    return registry.snapshot()
