"""Numerical substrate: Woodbury updates, eigen utilities, root finding.

These are the low-level building blocks of the MaxEnt solver.  They are kept
separate from :mod:`repro.core` so that they can be tested (and reasoned
about) in isolation.  Each kernel exists in a scalar (one matrix) and a
batched (``(C, d, d)`` stack) form; the solver hot paths only use the
batched forms.
"""

from repro.linalg.eig import (
    inverse_sqrt_psd,
    inverse_sqrt_psd_batched,
    sqrt_psd,
    sqrt_psd_batched,
    symmetric_eig,
    symmetric_eig_batched,
)
from repro.linalg.rootfind import find_monotone_root
from repro.linalg.woodbury import (
    woodbury_rank1_downdate,
    woodbury_rank1_inverse,
    woodbury_rank1_inverse_batched,
)

__all__ = [
    "woodbury_rank1_downdate",
    "woodbury_rank1_inverse",
    "woodbury_rank1_inverse_batched",
    "symmetric_eig",
    "symmetric_eig_batched",
    "sqrt_psd",
    "sqrt_psd_batched",
    "inverse_sqrt_psd",
    "inverse_sqrt_psd_batched",
    "find_monotone_root",
]
