"""Numerical substrate: Woodbury updates, eigen utilities, root finding.

These are the low-level building blocks of the MaxEnt solver.  They are kept
separate from :mod:`repro.core` so that they can be tested (and reasoned
about) in isolation.
"""

from repro.linalg.woodbury import woodbury_rank1_downdate, woodbury_rank1_inverse
from repro.linalg.eig import (
    inverse_sqrt_psd,
    sqrt_psd,
    symmetric_eig,
)
from repro.linalg.rootfind import find_monotone_root

__all__ = [
    "woodbury_rank1_downdate",
    "woodbury_rank1_inverse",
    "symmetric_eig",
    "sqrt_psd",
    "inverse_sqrt_psd",
    "find_monotone_root",
]
