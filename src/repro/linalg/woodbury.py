"""Rank-1 inverse updates via the Sherman–Morrison / Woodbury identity.

The MaxEnt solver repeatedly applies quadratic constraints, each of which is a
rank-1 update to the inverse covariance matrix of one or more equivalence
classes.  Recomputing the covariance by full matrix inversion would cost
O(d^3) per update; the Sherman–Morrison identity brings this down to O(d^2),
which is the speed-up the paper relies on (Sec. II-A).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError

#: Denominators smaller than this (in absolute value) indicate the update
#: would make the covariance singular or indefinite.
_DENOM_EPS = 1e-300


def woodbury_rank1_inverse(
    sigma: np.ndarray, w: np.ndarray, lam: float
) -> np.ndarray:
    """Return ``(sigma^-1 + lam * w w^T)^-1`` without inverting anything.

    By the Sherman–Morrison identity::

        (A^-1 + lam w w^T)^-1 = A - lam (A w)(A w)^T / (1 + lam w^T A w)

    Parameters
    ----------
    sigma:
        Current covariance matrix ``A`` (d x d, symmetric PSD).
    w:
        Direction of the rank-1 update (length d).
    lam:
        Multiplier change.  ``lam > 0`` shrinks variance along ``w``;
        ``lam < 0`` inflates it (valid only while the denominator stays
        positive).

    Returns
    -------
    numpy.ndarray
        The updated covariance matrix (a new array; ``sigma`` is untouched).

    Raises
    ------
    ConvergenceError
        If the update would make the covariance singular or indefinite
        (denominator ``1 + lam w^T A w <= 0``).
    """
    g = sigma @ w
    denom = 1.0 + lam * float(w @ g)
    if denom <= _DENOM_EPS:
        raise ConvergenceError(
            "rank-1 covariance update is not positive definite "
            f"(denominator {denom:.3e} <= 0); lambda step too large"
        )
    updated = sigma - (lam / denom) * np.outer(g, g)
    # Enforce exact symmetry: repeated rank-1 updates otherwise accumulate
    # asymmetric floating point noise that later breaks eigendecompositions.
    return 0.5 * (updated + updated.T)


def woodbury_rank1_inverse_batched(
    sigmas: np.ndarray, w: np.ndarray, lam: float
) -> np.ndarray:
    """Batched Sherman–Morrison over a ``(C, d, d)`` covariance stack.

    Computes ``(sigma_c^-1 + lam * w w^T)^-1`` for every matrix in the
    stack with two matmuls and one outer product — the vectorized form of
    calling :func:`woodbury_rank1_inverse` per class, and the O(C d^2)
    kernel behind every quadratic constraint update.

    Raises
    ------
    ConvergenceError
        If *any* class's update would make its covariance singular or
        indefinite.  Raised before anything is written, so the stack is
        never left partially updated.
    """
    g = sigmas @ w                               # (C, d) projected columns
    denoms = 1.0 + lam * (g @ w)                 # (C,)
    bad = denoms <= _DENOM_EPS
    if np.any(bad):
        worst = float(np.min(denoms))
        raise ConvergenceError(
            "rank-1 covariance update is not positive definite "
            f"(denominator {worst:.3e} <= 0); lambda step too large"
        )
    updated = sigmas - (lam / denoms)[:, None, None] * (
        g[:, :, None] * g[:, None, :]
    )
    # Same exact-symmetry enforcement as the scalar routine.
    return 0.5 * (updated + np.swapaxes(updated, -1, -2))


def woodbury_rank1_downdate(
    sigma: np.ndarray, w: np.ndarray, lam: float
) -> np.ndarray:
    """Return ``(sigma^-1 - lam * w w^T)^-1``; convenience wrapper.

    Equivalent to :func:`woodbury_rank1_inverse` with ``-lam``.  Provided for
    readability at call sites that undo a previous update.
    """
    return woodbury_rank1_inverse(sigma, w, -lam)
