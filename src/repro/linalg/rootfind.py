"""Bracketed root finding for monotone 1-D functions.

The quadratic-constraint update of the MaxEnt solver reduces to solving
``phi(lam) = 0`` where ``phi`` is strictly monotone on an open half-line
(Sec. II-A.1, Eq. 10).  SciPy's Brent method does the heavy lifting once the
root is bracketed; the work here is robust bracket expansion against a
possibly one-sided domain, e.g. ``lam > lower`` with ``phi -> +inf`` at the
lower end.
"""

from __future__ import annotations

import math
from typing import Callable

from scipy.optimize import brentq

from repro.errors import RootFindError

#: Hard cap on bracket expansion iterations.  Steps double each round, so a
#: root at any realistic scale is bracketed long before this triggers.
_MAX_EXPANSIONS = 200


def find_monotone_root(
    func: Callable[[float], float],
    lower: float = -math.inf,
    upper: float = math.inf,
    start: float = 0.0,
    initial_step: float = 1.0,
    tolerance: float = 1e-12,
) -> float:
    """Find the root of a monotone function on an open interval.

    The function is probed outwards from ``start`` on both sides
    simultaneously, doubling the step each round; when moving towards a
    finite open bound the step bisects towards the bound instead, so the
    probes converge to the bound from inside without ever touching it.  Once
    two probes of opposite sign are seen, Brent's method polishes the root.

    Parameters
    ----------
    func:
        Monotone (increasing or decreasing) callable, finite on the open
        interval ``(lower, upper)``.  The end points are never evaluated.
    lower, upper:
        Open interval bounds; either may be infinite.
    start:
        Point inside the interval to start bracketing from.  If it falls
        outside it is nudged inside.
    initial_step:
        First bracket expansion step.
    tolerance:
        Absolute x-tolerance passed to Brent's method.

    Returns
    -------
    float
        A point where ``func`` crosses zero.

    Raises
    ------
    RootFindError
        If no sign change can be bracketed (typically: the target value is
        unreachable inside the interval).
    """
    if not lower < upper:
        raise RootFindError(f"empty interval: ({lower}, {upper})")

    x0 = _clip_into_open_interval(start, lower, upper, initial_step)
    f0 = func(x0)
    if f0 == 0.0:
        return x0

    step = initial_step
    right, f_right = x0, f0
    left, f_left = x0, f0
    for _ in range(_MAX_EXPANSIONS):
        # Expand right.
        nxt = right + step
        if nxt >= upper:
            nxt = 0.5 * (right + upper)
        if nxt > right:
            f_nxt = func(nxt)
            if f_nxt == 0.0:
                return nxt
            # Compare signs directly: a product of a subnormal and a
            # normal value can underflow to -0.0 and hide the crossing.
            if (f_nxt > 0.0) != (f_right > 0.0):
                return float(brentq(func, right, nxt, xtol=tolerance))
            right, f_right = nxt, f_nxt

        # Expand left.
        nxt = left - step
        if nxt <= lower:
            nxt = 0.5 * (left + lower)
        if nxt < left:
            f_nxt = func(nxt)
            if f_nxt == 0.0:
                return nxt
            if (f_nxt > 0.0) != (f_left > 0.0):
                return float(brentq(func, nxt, left, xtol=tolerance))
            left, f_left = nxt, f_nxt

        step *= 2.0

    raise RootFindError(
        "could not bracket a sign change after "
        f"{_MAX_EXPANSIONS} expansions (bracket [{left!r}, {right!r}], "
        f"values [{f_left!r}, {f_right!r}])"
    )


def _clip_into_open_interval(
    x: float, lower: float, upper: float, margin: float
) -> float:
    """Move ``x`` strictly inside ``(lower, upper)`` if necessary."""
    if lower < x < upper:
        return x
    if math.isinf(lower) and math.isinf(upper):
        return 0.0
    if math.isinf(upper):
        return lower + margin
    if math.isinf(lower):
        return upper - margin
    return 0.5 * (lower + upper)
