"""Symmetric eigendecomposition helpers for PSD matrices.

The whitening transformation of the paper (Eq. 14) needs the symmetric
inverse square root of each per-row covariance matrix.  Covariances produced
by the MaxEnt solver can be (numerically) singular — e.g. a cluster
constraint on fewer points than dimensions pins whole subspaces to zero
variance (Sec. II-A.2) — so every routine here clamps eigenvalues.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

#: Relative eigenvalue floor: eigenvalues below ``_EIG_FLOOR * max(eig, 1)``
#: are treated as this floor when inverting, which regularises directions of
#: (near-)zero variance instead of producing infinities.
_EIG_FLOOR = 1e-12


def symmetric_eig(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecompose a symmetric matrix, clamping tiny negative noise.

    Returns
    -------
    (eigenvalues, eigenvectors):
        ``eigenvalues`` ascending (length d), ``eigenvectors`` with columns
        matching, such that ``matrix ≈ V diag(vals) V^T``.  Negative
        eigenvalues caused by floating point noise are clamped to zero.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DataShapeError(f"expected a square matrix, got shape {matrix.shape}")
    vals, vecs = np.linalg.eigh(0.5 * (matrix + matrix.T))
    vals = np.maximum(vals, 0.0)
    return vals, vecs


def symmetric_eig_batched(
    matrices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`symmetric_eig` over a ``(C, d, d)`` stack.

    One LAPACK-dispatched ``np.linalg.eigh`` call replaces C Python-level
    decompositions — the per-class loop this module used to force on the
    whitening/sampling pipeline.

    Returns
    -------
    (eigenvalues, eigenvectors):
        Shapes ``(C, d)`` (ascending per matrix, clamped at zero) and
        ``(C, d, d)`` with eigenvectors in columns.
    """
    if matrices.ndim != 3 or matrices.shape[-1] != matrices.shape[-2]:
        raise DataShapeError(
            f"expected a (C, d, d) stack of square matrices, got {matrices.shape}"
        )
    sym = 0.5 * (matrices + np.swapaxes(matrices, -1, -2))
    vals, vecs = np.linalg.eigh(sym)
    return np.maximum(vals, 0.0), vecs


def sqrt_psd(matrix: np.ndarray) -> np.ndarray:
    """Symmetric PSD square root: returns S with ``S @ S = matrix``."""
    vals, vecs = symmetric_eig(matrix)
    return (vecs * np.sqrt(vals)) @ vecs.T


def inverse_sqrt_psd(matrix: np.ndarray, floor: float | None = None) -> np.ndarray:
    """Symmetric inverse square root of a PSD matrix with eigenvalue clamping.

    This is the per-row whitening matrix of Eq. 14: with
    ``Sigma = U S U^T`` it returns ``U S^{-1/2} U^T``, except that
    eigenvalues below the floor are clamped so that zero-variance directions
    map to a large-but-finite scaling instead of infinity.

    Parameters
    ----------
    matrix:
        Covariance matrix (symmetric PSD).
    floor:
        Absolute eigenvalue floor.  Defaults to
        ``_EIG_FLOOR * max(largest eigenvalue, 1)``.
    """
    vals, vecs = symmetric_eig(matrix)
    if floor is None:
        floor = _EIG_FLOOR * max(float(vals[-1]) if vals.size else 1.0, 1.0)
    clamped = np.maximum(vals, floor)
    return (vecs / np.sqrt(clamped)) @ vecs.T


def sqrt_psd_batched(
    matrices: np.ndarray,
    eig: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Batched :func:`sqrt_psd`: ``(C, d, d)`` stack of symmetric roots.

    Pass ``eig`` (a :func:`symmetric_eig_batched` result for the same
    stack) to reuse one decomposition between this and
    :func:`inverse_sqrt_psd_batched` — the whitening/sampling pair needs
    both roots of the same sigma stack.
    """
    vals, vecs = eig if eig is not None else symmetric_eig_batched(matrices)
    return (vecs * np.sqrt(vals)[:, None, :]) @ np.swapaxes(vecs, -1, -2)


def inverse_sqrt_psd_batched(
    matrices: np.ndarray,
    floor: float | None = None,
    eig: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Batched :func:`inverse_sqrt_psd` with the same per-matrix clamping.

    Each matrix gets its own relative eigenvalue floor (matching the
    scalar routine applied matrix-by-matrix), unless an absolute ``floor``
    is given, which then applies to the whole stack.  ``eig`` reuses a
    precomputed :func:`symmetric_eig_batched` result for the stack.
    """
    vals, vecs = eig if eig is not None else symmetric_eig_batched(matrices)
    if floor is None:
        floors = _EIG_FLOOR * np.maximum(vals[:, -1], 1.0)
    else:
        floors = np.full(matrices.shape[0], float(floor))
    clamped = np.maximum(vals, floors[:, None])
    return (vecs / np.sqrt(clamped)[:, None, :]) @ np.swapaxes(vecs, -1, -2)
