"""Crash recovery: checkpoint + write-ahead-log tail → live session.

The recovery contract is *at-least-checkpoint, exactly-acknowledged*:
every feedback batch whose ``apply_many`` was acknowledged before a
crash is present after recovery, and the recovered session's views are
bit-identical to an uninterrupted run — because all knowledge flows
through typed serialisable :class:`~repro.feedback.Feedback` and the
session's refits are deterministic.

The sequence of steps for one session:

1. read the latest checkpoint (:meth:`SessionStore.get`), which carries
   the sequence number ``wal_seq`` it folded in;
2. read the log tail with ``seq > wal_seq`` and validate it — sequence
   continuity (no gaps: a gap means records vanished) and per-record
   checksums (bit rot);
3. apply the **corrupt-tail policy** to any damage: ``truncate`` keeps
   the valid prefix and reports what was dropped (the pragmatic default
   for an interactive tool — old knowledge beats no knowledge), ``fail``
   raises :class:`StoreError` so the operator decides;
4. rebuild the session from the checkpoint payload and replay the
   surviving records through the same ``apply_many`` / ``undo`` codepath
   a live server uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.feedback import feedback_from_dict
from repro.io import session_from_payload
from repro.service.store import SessionStore, StoreError
from repro.store.wal import FeedbackLogStore, WalRecord, resolve_aborts

__all__ = [
    "RECOVERY_POLICIES",
    "RecoveredState",
    "load_session_state",
    "recover_session",
    "replay_records",
    "validate_recovery_policy",
    "verify_store",
]

#: ``truncate`` — drop the damaged suffix, recover the valid prefix, and
#: report what was lost; ``fail`` — raise on any damage.
RECOVERY_POLICIES = ("truncate", "fail")


def validate_recovery_policy(policy: str) -> str:
    """Return the policy unchanged, or raise :class:`StoreError`."""
    if policy not in RECOVERY_POLICIES:
        raise StoreError(
            f"unknown recovery policy {policy!r}; expected one of "
            f"{RECOVERY_POLICIES}"
        )
    return policy


@dataclass
class RecoveredState:
    """Everything recovery learned about one session, pre-replay.

    ``records`` is the replayable tail (aborts already resolved, damage
    policy already applied); ``wal_seq`` is the highest sequence number
    covered by checkpoint + tail, i.e. what the next append will follow;
    ``warnings`` describes anything the ``truncate`` policy dropped.
    """

    session_id: str
    payload: dict
    records: list[WalRecord] = field(default_factory=list)
    wal_seq: int = 0
    warnings: list[str] = field(default_factory=list)

    @property
    def replayed_batches(self) -> int:
        return len(self.records)


def _validated_tail(
    store: FeedbackLogStore,
    session_id: str,
    after_seq: int,
    policy: str,
) -> tuple[list[WalRecord], int, list[str]]:
    """Read and validate one session's log tail under ``policy``.

    Returns ``(replayable_records, last_seq_covered, warnings)``.
    Continuity and checksums are checked on the *raw* tail (abort
    markers consume sequence numbers too); aborts are resolved after.
    """
    records, damage = store.feedback_tail(session_id, after_seq=after_seq)
    warnings: list[str] = []

    def _flinch(problem: str, keep: int) -> list[WalRecord]:
        if policy == "fail":
            raise StoreError(
                f"corrupt WAL tail for session {session_id!r}: {problem}"
            )
        dropped = len(records) - keep
        detail = (
            f"truncated {dropped} trailing record(s)"
            if dropped
            else "recovered the valid prefix"
        )
        warnings.append(f"session {session_id!r}: {problem}; {detail}")
        return records[:keep]

    if damage is not None:
        records = _flinch(damage, keep=len(records))

    expected = after_seq + 1
    for index, record in enumerate(records):
        if record.seq != expected:
            records = _flinch(
                f"sequence gap at #{expected} (found #{record.seq})",
                keep=index,
            )
            break
        if not record.verify():
            records = _flinch(
                f"checksum mismatch at record #{record.seq}", keep=index
            )
            break
        expected = record.seq + 1

    last_covered = records[-1].seq if records else after_seq
    return resolve_aborts(records), last_covered, warnings


def load_session_state(
    store: SessionStore,
    session_id: str,
    policy: str = "truncate",
) -> RecoveredState:
    """Checkpoint + validated tail for one session (no replay yet).

    Works for plain stores too: a store without a feedback log recovers
    to exactly its checkpoint.
    """
    validate_recovery_policy(policy)
    payload = store.get(session_id)
    checkpoint_seq = int(payload.get("wal_seq", 0))
    if not isinstance(store, FeedbackLogStore):
        return RecoveredState(
            session_id=session_id, payload=payload, wal_seq=checkpoint_seq
        )
    records, last_covered, warnings = _validated_tail(
        store, session_id, after_seq=checkpoint_seq, policy=policy
    )
    return RecoveredState(
        session_id=session_id,
        payload=payload,
        records=records,
        wal_seq=last_covered,
        warnings=warnings,
    )


def replay_records(session, records: list[WalRecord]) -> int:
    """Replay log records onto a live session; returns batches applied.

    Uses the exact codepaths a live server uses — ``apply_many`` for
    ``feedback`` records, ``undo_last_feedback`` for ``undo`` — so the
    recovered knowledge state is bit-identical to the original.
    """
    applied = 0
    for record in records:
        if record.kind == "feedback":
            session.apply_many(
                [feedback_from_dict(item) for item in record.items]
            )
            applied += 1
        elif record.kind == "undo":
            session.undo_last_feedback()
            applied += 1
        else:  # pragma: no cover - resolve_aborts strips everything else
            raise StoreError(
                f"cannot replay WAL record kind {record.kind!r}"
            )
    return applied


def recover_session(
    store: SessionStore,
    session_id: str,
    data: np.ndarray,
    *,
    standardize: bool = True,
    seed: int | None = None,
    policy: str = "truncate",
) -> tuple[object, RecoveredState]:
    """Full recovery: load state, rebuild the session, replay the tail.

    ``data`` / ``standardize`` / ``seed`` mirror
    :func:`repro.io.session_from_payload` — the checkpoint pins the data
    fingerprint, so handing recovery the wrong dataset fails loudly.
    Returns ``(session, state)``.
    """
    state = load_session_state(store, session_id, policy=policy)
    session = session_from_payload(
        data,
        state.payload.get("session", {}),
        standardize=standardize,
        seed=seed,
    )
    replay_records(session, state.records)
    return session, state


def verify_store(store: SessionStore, policy: str = "fail") -> dict:
    """Integrity sweep over every session; the core of ``repro store verify``.

    Checks that each checkpoint parses and that each log tail is
    contiguous with verified checksums.  With the default ``fail``
    policy any damage raises; with ``truncate`` the report lists what
    recovery would drop.  Returns a summary dict::

        {"sessions": {sid: {"tail_records": n, "wal_seq": n,
                            "warnings": [...]}},
         "ok": bool, "errors": {sid: "why"}}
    """
    validate_recovery_policy(policy)
    report: dict = {"sessions": {}, "errors": {}, "ok": True}
    for session_id in store.list_ids():
        try:
            state = load_session_state(store, session_id, policy=policy)
        except StoreError as exc:
            report["errors"][session_id] = str(exc)
            report["ok"] = False
            continue
        report["sessions"][session_id] = {
            "tail_records": state.replayed_batches,
            "wal_seq": state.wal_seq,
            "warnings": state.warnings,
        }
        if state.warnings:
            report["ok"] = False
    return report
