"""Log compaction: fold a long feedback tail into a fresh checkpoint.

A write-ahead log grows without bound and recovery time grows with it —
every record in the tail is one ``apply_many`` replay.  Compaction
restores O(1) recovery by writing a checkpoint that *includes* the tail
(the live in-memory session already has it applied) and pruning the
folded records, atomically where the backend allows
(:meth:`~repro.store.wal.FeedbackLogStore.checkpoint_and_prune`).

The policy here is deliberately simple — compact when the tail exceeds
``max_tail_records`` — because the cost model is simple: replay cost is
linear in records, checkpoint cost is roughly constant.  The threshold
is checked by :class:`~repro.service.manager.SessionManager` after each
logged append; ``repro store compact`` runs the same fold offline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.store import SessionStore, StoreError
from repro.store.recovery import recover_session
from repro.store.wal import FeedbackLogStore

__all__ = ["CompactionPolicy", "compact_offline", "should_compact"]


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold the log.  ``max_tail_records <= 0`` disables."""

    max_tail_records: int = 64

    @property
    def enabled(self) -> bool:
        return self.max_tail_records > 0


def should_compact(policy: CompactionPolicy, tail_records: int) -> bool:
    """True when the session's tail has outgrown the policy."""
    return policy.enabled and tail_records >= policy.max_tail_records


def compact_offline(
    store: SessionStore,
    session_id: str,
    data,
    *,
    standardize: bool = True,
    seed: int | None = None,
    payload_extra: dict | None = None,
) -> dict:
    """Fold one session's log offline (no server running).

    Recovers the session from checkpoint + tail, re-serialises it as a
    fresh checkpoint whose ``wal_seq`` covers the tail, and prunes the
    folded records.  ``payload_extra`` carries the checkpoint wrapper
    fields (dataset name, standardize, seed) the service normally adds.
    Returns ``{"replayed": n, "pruned": n, "wal_seq": n}``.
    """
    from repro.io import session_to_payload

    if not isinstance(store, FeedbackLogStore):
        raise StoreError(
            "store has no feedback log to compact; only WAL-backed stores "
            "(sqlite:, wal:) support compaction"
        )
    session, state = recover_session(
        store,
        session_id,
        data,
        standardize=standardize,
        seed=seed,
        policy="fail",
    )
    payload = dict(state.payload)
    if payload_extra:
        payload.update(payload_extra)
    payload["session"] = session_to_payload(session)
    payload["wal_seq"] = state.wal_seq
    pruned = store.checkpoint_and_prune(session_id, payload, state.wal_seq)
    return {
        "replayed": state.replayed_batches,
        "pruned": pruned,
        "wal_seq": state.wal_seq,
    }
