"""`SQLiteStore`: checkpoints + write-ahead feedback log in one database.

One file holds everything the durable tier needs — the latest checkpoint
per session and the feedback records appended since that checkpoint — so
state is shareable across server restarts and (later) across worker
processes.  Concretely:

* **WAL-mode SQLite** with a busy timeout: many readers plus one writer
  at a time, safe across threads *and* processes (each thread gets its
  own connection; cross-process writers serialise on the database lock);
* **fsync policy** maps onto ``PRAGMA synchronous``: ``always`` →
  ``FULL`` (every commit hits the platter), ``batch`` → ``NORMAL``
  (SQLite syncs at WAL checkpoints — a process crash loses nothing, a
  power cut can lose the last unsynced commits), ``off`` → ``OFF``;
* **schema versioning** via ``PRAGMA user_version`` with a migration
  table stub, so a future schema change upgrades old databases in place
  instead of refusing them;
* **transactional compaction** — :meth:`checkpoint_and_prune` folds the
  log into a fresh checkpoint and drops the folded records in one
  transaction, so a crash mid-compaction can never lose feedback.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path

from repro.service.store import (
    SessionNotFoundError,
    SessionStore,
    StoreError,
    validate_session_id,
)
from repro.store.wal import (
    FeedbackLogStore,
    WalRecord,
    record_checksum,
    validate_fsync_policy,
)

__all__ = ["SCHEMA_VERSION", "SQLiteStore"]

#: Current schema version (``PRAGMA user_version``).  Bump together with
#: an entry in :data:`_MIGRATIONS` that upgrades ``N-1 -> N`` in place.
SCHEMA_VERSION = 1

# Statements run one by one inside the schema transaction
# (``executescript`` would implicitly commit and break its atomicity).
_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS checkpoints (
        session_id TEXT PRIMARY KEY,
        payload    TEXT NOT NULL,
        wal_seq    INTEGER NOT NULL DEFAULT 0,
        updated_at REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS wal (
        session_id TEXT NOT NULL,
        seq        INTEGER NOT NULL,
        kind       TEXT NOT NULL DEFAULT 'feedback',
        items      TEXT NOT NULL,
        ref        INTEGER,
        checksum   TEXT NOT NULL,
        created_at REAL NOT NULL,
        PRIMARY KEY (session_id, seq)
    )
    """,
)

#: Migration stub: ``{from_version: callable(conn)}`` steps applied in
#: order until ``user_version`` reaches :data:`SCHEMA_VERSION`.  Empty
#: while there is only one schema version; the machinery is exercised by
#: the tests so adding the first real migration is a one-liner.
_MIGRATIONS: dict[int, callable] = {}

_SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "off": "OFF"}


class SQLiteStore(SessionStore, FeedbackLogStore):
    """Durable session store backed by one SQLite database file.

    Parameters
    ----------
    path:
        Database file (created, along with parent directories, on first
        use).  In-memory databases are rejected: they cannot provide the
        durability this class exists for.
    fsync:
        ``always`` / ``batch`` / ``off`` — see the module docstring.
    busy_timeout_ms:
        How long a connection waits on the database lock before raising,
        honoured for every concurrent writer (threads and processes).
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        busy_timeout_ms: int = 5000,
    ) -> None:
        text = str(path)
        if text == ":memory:" or text.startswith("file::memory:"):
            raise StoreError(
                "SQLiteStore needs a database file; an in-memory database "
                "cannot survive the crash this store protects against"
            )
        self.path = Path(text)
        self.fsync = validate_fsync_policy(fsync)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        # Opening one connection eagerly creates/migrates the schema, so
        # construction fails loudly on an unusable database.
        self._conn()

    # ------------------------------------------------------------------
    # Connections and schema
    # ------------------------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        """This thread's connection (one per thread; SQLite requirement).

        Keyed on PID as well as thread: a connection inherited across
        ``fork()`` shares the parent's file descriptor and lock state,
        and using — or even closing — it from the child can corrupt the
        parent's session.  On a PID change the stale handle is dropped
        without ``close()`` and a fresh connection opened.  (Workers of
        the sharded service are ``spawn``\\ ed and never hit this path;
        the guard covers user code that forks around a live store.)
        """
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            if getattr(self._local, "pid", None) == pid:
                return conn
            self._local.conn = None  # forked: drop, never close
        try:
            conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout_ms / 1000.0,
                isolation_level=None,  # autocommit; explicit BEGIN below
            )
            conn.execute(f"PRAGMA busy_timeout = {self.busy_timeout_ms}")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute(
                f"PRAGMA synchronous = {_SYNCHRONOUS[self.fsync]}"
            )
            self._ensure_schema(conn)
        except sqlite3.Error as exc:
            raise StoreError(
                f"cannot open session database {self.path}: {exc}"
            ) from exc
        self._local.conn = conn
        self._local.pid = pid
        return conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version == SCHEMA_VERSION:
            return
        if version > SCHEMA_VERSION:
            raise StoreError(
                f"database {self.path} has schema version {version}, newer "
                f"than this code understands ({SCHEMA_VERSION}); refusing "
                "to touch it"
            )
        conn.execute("BEGIN IMMEDIATE")
        try:
            # Re-check under the write lock: another process may have
            # created/migrated the schema while we waited.
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                for statement in _SCHEMA:
                    conn.execute(statement)
            else:
                while version < SCHEMA_VERSION:
                    step = _MIGRATIONS.get(version)
                    if step is None:
                        raise StoreError(
                            f"no migration from schema version {version} "
                            f"in {self.path}"
                        )
                    step(conn)
                    version += 1
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def close(self) -> None:
        """Close this thread's connection (other threads' stay open)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            if getattr(self._local, "pid", None) == os.getpid():
                conn.close()
            # else: inherited across fork — dropping the reference is the
            # only safe disposal (closing would release the parent's locks)
            self._local.conn = None

    def _execute(self, sql: str, params: tuple = ()):
        try:
            return self._conn().execute(sql, params)
        except sqlite3.Error as exc:
            raise StoreError(f"store query failed on {self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    # SessionStore: checkpoints
    # ------------------------------------------------------------------

    def put(self, session_id: str, payload: dict) -> None:
        validate_session_id(session_id)
        encoded = self._encode(payload)
        self._execute(
            "INSERT INTO checkpoints (session_id, payload, wal_seq, updated_at) "
            "VALUES (?, ?, ?, ?) ON CONFLICT(session_id) DO UPDATE SET "
            "payload = excluded.payload, wal_seq = excluded.wal_seq, "
            "updated_at = excluded.updated_at",
            (session_id, encoded, int(payload.get("wal_seq", 0)), time.time()),
        )

    @staticmethod
    def _encode(payload: dict) -> str:
        try:
            return json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"payload is not JSON-serialisable: {exc}") from exc

    def get(self, session_id: str) -> dict:
        validate_session_id(session_id)
        row = self._execute(
            "SELECT payload FROM checkpoints WHERE session_id = ?",
            (session_id,),
        ).fetchone()
        if row is None:
            raise SessionNotFoundError(
                f"no stored session {session_id!r} in {self.path}"
            )
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt checkpoint for {session_id!r} in {self.path}: {exc}"
            ) from exc

    def delete(self, session_id: str) -> None:
        validate_session_id(session_id)
        conn = self._conn()
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "DELETE FROM checkpoints WHERE session_id = ?", (session_id,)
            )
            conn.execute("DELETE FROM wal WHERE session_id = ?", (session_id,))
            conn.execute("COMMIT")
        except sqlite3.Error as exc:
            conn.execute("ROLLBACK")
            raise StoreError(
                f"cannot delete session {session_id!r} from {self.path}: {exc}"
            ) from exc

    def list_ids(self) -> list[str]:
        rows = self._execute(
            "SELECT session_id FROM checkpoints "
            "UNION SELECT session_id FROM wal ORDER BY session_id"
        ).fetchall()
        return [row[0] for row in rows]

    def __contains__(self, session_id: str) -> bool:
        try:
            validate_session_id(session_id)
        except StoreError:
            return False
        row = self._execute(
            "SELECT 1 FROM checkpoints WHERE session_id = ? LIMIT 1",
            (session_id,),
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # FeedbackLogStore: the write-ahead log
    # ------------------------------------------------------------------

    def append_feedback(
        self,
        session_id: str,
        items: list[dict],
        kind: str = "feedback",
        ref: int | None = None,
        key: str | None = None,
    ) -> WalRecord:
        validate_session_id(session_id)
        items = list(items)
        # The idempotency key rides inside the items JSON column, so the
        # schema needs no migration and keyless rows stay byte-identical.
        body = {"items": items}
        if key is not None:
            body["key"] = key
        encoded = self._encode(body)
        conn = self._conn()
        try:
            # BEGIN IMMEDIATE takes the write lock up front, so the
            # MAX(seq) read and the insert are one atomic step even with
            # concurrent writers in other threads or processes.
            conn.execute("BEGIN IMMEDIATE")
            # The floor is MAX(log, checkpoint.wal_seq): compaction deletes
            # folded records, and sequence numbers must stay monotonic past
            # the fold or the folded-in batches' numbers would be reissued
            # below the checkpoint's wal_seq — invisible to recovery.
            row = conn.execute(
                "SELECT MAX("
                " COALESCE((SELECT MAX(seq) FROM wal WHERE session_id = ?1), 0),"
                " COALESCE((SELECT wal_seq FROM checkpoints"
                "           WHERE session_id = ?1), 0))",
                (session_id,),
            ).fetchone()
            seq = int(row[0]) + 1
            record = WalRecord.make(session_id, seq, kind, items, ref, key)
            conn.execute(
                "INSERT INTO wal "
                "(session_id, seq, kind, items, ref, checksum, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    session_id,
                    seq,
                    kind,
                    encoded,
                    ref,
                    record.checksum,
                    time.time(),
                ),
            )
            conn.execute("COMMIT")
        except sqlite3.Error as exc:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise StoreError(
                f"cannot append feedback for {session_id!r} to "
                f"{self.path}: {exc}"
            ) from exc
        return record

    def rollback_feedback(self, session_id: str, seq: int) -> None:
        """Remove the annulled record outright (transactional backend)."""
        self._execute(
            "DELETE FROM wal WHERE session_id = ? AND seq = ?",
            (session_id, int(seq)),
        )

    def feedback_tail(
        self, session_id: str, after_seq: int = 0
    ) -> tuple[list[WalRecord], str | None]:
        validate_session_id(session_id)
        rows = self._execute(
            "SELECT seq, kind, items, ref, checksum FROM wal "
            "WHERE session_id = ? AND seq > ? ORDER BY seq",
            (session_id, int(after_seq)),
        ).fetchall()
        records: list[WalRecord] = []
        for seq, kind, encoded, ref, checksum in rows:
            try:
                body = json.loads(encoded)
                items = body["items"]
            except (json.JSONDecodeError, KeyError, TypeError):
                return records, (
                    f"unreadable WAL record {session_id!r}#{seq} in "
                    f"{self.path}"
                )
            records.append(
                WalRecord(
                    session_id=session_id,
                    seq=int(seq),
                    kind=str(kind),
                    items=list(items),
                    ref=ref if ref is None else int(ref),
                    checksum=str(checksum),
                    key=body.get("key"),
                )
            )
        return records, None

    def last_seq(self, session_id: str) -> int:
        row = self._execute(
            "SELECT MAX("
            " COALESCE((SELECT MAX(seq) FROM wal WHERE session_id = ?1), 0),"
            " COALESCE((SELECT wal_seq FROM checkpoints"
            "           WHERE session_id = ?1), 0))",
            (session_id,),
        ).fetchone()
        return int(row[0])

    def prune_feedback(self, session_id: str, up_to_seq: int) -> int:
        cursor = self._execute(
            "DELETE FROM wal WHERE session_id = ? AND seq <= ?",
            (session_id, int(up_to_seq)),
        )
        return int(cursor.rowcount)

    def checkpoint_and_prune(
        self, session_id: str, payload: dict, up_to_seq: int
    ) -> int:
        """Fold the log into a fresh checkpoint in ONE transaction."""
        validate_session_id(session_id)
        encoded = self._encode(payload)
        conn = self._conn()
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT INTO checkpoints "
                "(session_id, payload, wal_seq, updated_at) "
                "VALUES (?, ?, ?, ?) ON CONFLICT(session_id) DO UPDATE SET "
                "payload = excluded.payload, wal_seq = excluded.wal_seq, "
                "updated_at = excluded.updated_at",
                (
                    session_id,
                    encoded,
                    int(payload.get("wal_seq", 0)),
                    time.time(),
                ),
            )
            cursor = conn.execute(
                "DELETE FROM wal WHERE session_id = ? AND seq <= ?",
                (session_id, int(up_to_seq)),
            )
            dropped = int(cursor.rowcount)
            conn.execute("COMMIT")
        except sqlite3.Error as exc:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise StoreError(
                f"cannot compact session {session_id!r} in {self.path}: {exc}"
            ) from exc
        return dropped

    # ------------------------------------------------------------------
    # Introspection (CLI `repro store inspect`)
    # ------------------------------------------------------------------

    def schema_version(self) -> int:
        """The database's ``PRAGMA user_version``."""
        return int(self._execute("PRAGMA user_version").fetchone()[0])

    def describe(self) -> dict:
        """Shape summary: sessions, tail lengths, schema version."""
        sessions = {}
        for sid in self.list_ids():
            row = self._execute(
                "SELECT wal_seq, LENGTH(payload) FROM checkpoints "
                "WHERE session_id = ?",
                (sid,),
            ).fetchone()
            tail = self._execute(
                "SELECT COUNT(*) FROM wal WHERE session_id = ?", (sid,)
            ).fetchone()[0]
            sessions[sid] = {
                "checkpointed": row is not None,
                "checkpoint_bytes": int(row[1]) if row is not None else 0,
                "checkpoint_wal_seq": int(row[0]) if row is not None else 0,
                "tail_records": int(tail),
                "last_seq": self.last_seq(sid),
            }
        return {
            "backend": "sqlite",
            "path": str(self.path),
            "fsync": self.fsync,
            "schema_version": self.schema_version(),
            "sessions": sessions,
        }


# record_checksum re-exported for checksum verification convenience.
_ = record_checksum
