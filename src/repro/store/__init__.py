"""`repro.store`: the durable session tier — WAL, SQLite, recovery.

:mod:`repro.service.store` defines the in-process session stores
(:class:`MemoryStore`, :class:`DirectoryStore`); this package adds the
*durable* tier on top: an append-only write-ahead log of feedback
batches (:mod:`repro.store.wal`), a single-file SQLite backend holding
checkpoints and log together (:mod:`repro.store.sqlite`), crash
recovery by checkpoint + replay (:mod:`repro.store.recovery`), and log
compaction (:mod:`repro.store.compaction`).

:func:`store_from_url` maps the CLI's ``--store`` URL syntax onto
concrete stores::

    memory:              MemoryStore        (no durability; default)
    dir:PATH             DirectoryStore     (checkpoint files only)
    wal:PATH             WalDirectoryStore  (checkpoint files + JSONL WAL)
    sqlite:PATH          SQLiteStore        (one database, transactional)
"""

from __future__ import annotations

from pathlib import Path

from repro.service.store import (
    DirectoryStore,
    MemoryStore,
    SessionStore,
    StoreError,
)
from repro.store.compaction import (
    CompactionPolicy,
    compact_offline,
    should_compact,
)
from repro.store.recovery import (
    RECOVERY_POLICIES,
    RecoveredState,
    load_session_state,
    recover_session,
    replay_records,
    validate_recovery_policy,
    verify_store,
)
from repro.store.sqlite import SQLiteStore
from repro.store.wal import (
    FSYNC_POLICIES,
    FeedbackLogStore,
    JsonlWal,
    WalDirectoryStore,
    WalRecord,
    record_checksum,
    validate_fsync_policy,
)

__all__ = [
    "FSYNC_POLICIES",
    "RECOVERY_POLICIES",
    "CompactionPolicy",
    "FeedbackLogStore",
    "JsonlWal",
    "RecoveredState",
    "SQLiteStore",
    "WalDirectoryStore",
    "WalRecord",
    "compact_offline",
    "load_session_state",
    "record_checksum",
    "recover_session",
    "replay_records",
    "should_compact",
    "store_from_url",
    "validate_fsync_policy",
    "validate_recovery_policy",
    "verify_store",
]


def store_from_url(url: str, fsync: str = "batch") -> SessionStore:
    """Build a session store from a ``scheme:path`` URL.

    See the module docstring for the scheme table.  A bare path (no
    scheme) is rejected with a hint rather than guessed at.
    """
    if url == "memory:" or url == "memory":
        return MemoryStore()
    scheme, sep, path = url.partition(":")
    if not sep or not path:
        raise StoreError(
            f"bad store URL {url!r}; expected memory:, dir:PATH, wal:PATH "
            "or sqlite:PATH"
        )
    if scheme == "dir":
        return DirectoryStore(Path(path))
    if scheme == "wal":
        return WalDirectoryStore(Path(path), fsync=fsync)
    if scheme == "sqlite":
        return SQLiteStore(Path(path), fsync=fsync)
    raise StoreError(
        f"unknown store scheme {scheme!r} in {url!r}; expected memory:, "
        "dir:, wal: or sqlite:"
    )
