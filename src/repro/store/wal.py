"""Append-only write-ahead log of typed feedback batches.

The durable tier's core idea: every mutation of a session's knowledge
state (one :meth:`~repro.core.session.ExplorationSession.apply_many`
batch, or one undo) is appended to a log *before* the in-memory apply
commits.  Recovery is then "load the latest checkpoint and replay the
log tail" — bit-for-bit, because all feedback is typed and serialisable
and the session's refits are deterministic.

This module defines the pieces every durable backend shares:

* :class:`WalRecord` — one logged batch: session id, per-session
  monotonic sequence number, kind (``feedback`` / ``undo`` / ``abort``),
  the serialized feedback items, and a content checksum;
* :class:`FeedbackLogStore` — the capability interface a
  :class:`~repro.service.store.SessionStore` grows to become a durable
  store (append / tail / rollback / prune / transactional
  checkpoint-and-prune).  :class:`~repro.store.sqlite.SQLiteStore` keeps
  the log in a database table; :class:`WalDirectoryStore` here pairs the
  JSON-file checkpoints of :class:`~repro.service.store.DirectoryStore`
  with a shared JSONL log file;
* :class:`JsonlWal` — the append-only JSONL file itself, with a
  configurable fsync policy (``always`` / ``batch`` / ``off``) and
  partial-tail repair on open.

Record kinds
------------
``feedback``   a batch of feedback dicts, replayed through ``apply_many``
``undo``       one undo action, replayed through ``undo_last_feedback``
``abort``      annuls the record named by ``ref`` — written when the
               in-memory apply failed *after* its write-ahead record was
               already durable, so recovery must not replay it
``prune``      (JSONL backend only) a sequence-floor marker left behind by
               compaction, so sequence numbers stay monotonic across folds
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.store import (
    DirectoryStore,
    StoreError,
    _fsync_dir,
    validate_session_id,
)

__all__ = [
    "FSYNC_POLICIES",
    "FeedbackLogStore",
    "JsonlWal",
    "WalDirectoryStore",
    "WalRecord",
    "record_checksum",
    "validate_fsync_policy",
]

#: Accepted fsync policies, strictest first.
#:
#: ``always``  fsync after every append — an acknowledged batch survives
#:             power loss, at the cost of one disk flush per batch;
#: ``batch``   flush to the OS after every append, fsync every
#:             ``batch_every`` appends — a kernel crash can lose at most
#:             the last unsynced batches, a *process* crash loses nothing;
#: ``off``     leave flushing to the OS entirely (benchmarks, tests).
FSYNC_POLICIES = ("always", "batch", "off")


def validate_fsync_policy(policy: str) -> str:
    """Return the policy unchanged, or raise :class:`StoreError`."""
    if policy not in FSYNC_POLICIES:
        raise StoreError(
            f"unknown fsync policy {policy!r}; expected one of {FSYNC_POLICIES}"
        )
    return policy


def record_checksum(
    session_id: str,
    seq: int,
    kind: str,
    items: list[dict],
    ref: int | None = None,
    key: str | None = None,
) -> str:
    """Content hash of one WAL record (everything except the hash itself).

    Canonical JSON (sorted keys, no whitespace) so the checksum is stable
    across writers and Python versions.  The idempotency ``key`` enters
    the hash only when present, so every record written before keys
    existed still verifies.
    """
    fields = [session_id, int(seq), kind, items, ref]
    if key is not None:
        fields.append(key)
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry: a feedback batch, an undo, or an abort.

    ``key`` is the client-supplied idempotency key of a feedback batch
    (``None`` for undo/abort/prune and for keyless clients); it rides in
    the log so recovery can rebuild the dedup map and refuse to replay a
    batch the session already holds.
    """

    session_id: str
    seq: int
    kind: str = "feedback"
    items: list[dict] = field(default_factory=list)
    ref: int | None = None
    checksum: str = ""
    key: str | None = None

    @classmethod
    def make(
        cls,
        session_id: str,
        seq: int,
        kind: str = "feedback",
        items: list[dict] | None = None,
        ref: int | None = None,
        key: str | None = None,
    ) -> "WalRecord":
        items = list(items) if items else []
        return cls(
            session_id=session_id,
            seq=int(seq),
            kind=kind,
            items=items,
            ref=ref,
            checksum=record_checksum(session_id, seq, kind, items, ref, key),
            key=key,
        )

    def verify(self) -> bool:
        """True when the stored checksum matches the record content."""
        return self.checksum == record_checksum(
            self.session_id, self.seq, self.kind, self.items, self.ref, self.key
        )

    def to_json_line(self) -> str:
        """One JSONL line (no trailing newline)."""
        payload = {
            "sid": self.session_id,
            "seq": self.seq,
            "kind": self.kind,
            "items": self.items,
            "ref": self.ref,
            "sum": self.checksum,
        }
        if self.key is not None:
            payload["key"] = self.key
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json_line(cls, line: str) -> "WalRecord":
        """Parse one JSONL line; raises :class:`StoreError` when malformed."""
        try:
            raw = json.loads(line)
            return cls(
                session_id=raw["sid"],
                seq=int(raw["seq"]),
                kind=str(raw.get("kind", "feedback")),
                items=list(raw.get("items") or []),
                ref=raw.get("ref"),
                checksum=str(raw.get("sum", "")),
                key=raw.get("key"),
            )
        except (ValueError, TypeError, KeyError) as exc:
            raise StoreError(f"malformed WAL record: {exc}") from exc


def resolve_aborts(records: list[WalRecord]) -> list[WalRecord]:
    """Drop aborted records and the abort markers that annul them.

    The sequence numbers of abort records still count for continuity —
    callers verify continuity on the raw tail first, then filter.
    """
    aborted = {r.ref for r in records if r.kind == "abort" and r.ref is not None}
    return [
        r
        for r in records
        if r.kind not in ("abort", "prune") and r.seq not in aborted
    ]


class FeedbackLogStore(ABC):
    """Capability interface of a durable (write-ahead-logged) store.

    A concrete durable store is both a
    :class:`~repro.service.store.SessionStore` (checkpoints) and a
    ``FeedbackLogStore`` (the feedback tail since the last checkpoint);
    :mod:`repro.store.recovery` composes the two back into a live
    session.
    """

    @abstractmethod
    def append_feedback(
        self,
        session_id: str,
        items: list[dict],
        kind: str = "feedback",
        ref: int | None = None,
        key: str | None = None,
    ) -> WalRecord:
        """Durably append one batch; returns the record with its seq.

        Sequence numbers are per-session, monotonic, and contiguous; the
        append must be durable (per the store's fsync policy) before this
        returns — the caller commits the in-memory apply only afterwards.
        ``key`` is the batch's idempotency key, logged for dedup replay.
        """

    @abstractmethod
    def rollback_feedback(self, session_id: str, seq: int) -> None:
        """Annul the record ``seq`` (the in-memory apply failed).

        Only ever called for the newest record of a session, immediately
        after its append.  Backends either remove the record or append an
        ``abort`` marker; recovery treats both identically.
        """

    @abstractmethod
    def feedback_tail(
        self, session_id: str, after_seq: int = 0
    ) -> tuple[list[WalRecord], str | None]:
        """Records with ``seq > after_seq`` in order, plus damage info.

        The second element is ``None`` for a clean read, or a description
        of storage-level tail damage (a torn final line, an unreadable
        row) — in which case the returned records are the valid prefix
        and :mod:`repro.store.recovery`'s corrupt-tail policy decides
        whether that prefix is acceptable.
        """

    @abstractmethod
    def last_seq(self, session_id: str) -> int:
        """Highest sequence number logged for the session (0 = none)."""

    @abstractmethod
    def prune_feedback(self, session_id: str, up_to_seq: int) -> int:
        """Drop records with ``seq <= up_to_seq``; returns how many."""

    def checkpoint_and_prune(
        self, session_id: str, payload: dict, up_to_seq: int
    ) -> int:
        """Write a checkpoint and drop the log it folds, atomically.

        Default implementation checkpoints first, then prunes — safe
        (a crash in between leaves extra replayable records, never lost
        ones) but not atomic; :class:`~repro.store.sqlite.SQLiteStore`
        overrides with one transaction.
        """
        self.put(session_id, payload)  # type: ignore[attr-defined]
        return self.prune_feedback(session_id, up_to_seq)


class JsonlWal:
    """One append-only JSONL file of :class:`WalRecord` lines.

    Shared by every session of a store: records carry their session id,
    and per-session sequence numbers are tracked in memory (rebuilt by
    scanning on open).  Appends serialize under one lock; reads re-scan
    the file, so a fresh instance (another process) sees every durable
    record.

    A torn final line — the classic crash-mid-append artifact — is
    repaired on open by truncating to the last complete record; torn or
    corrupt lines *before* other valid lines are reported as damage, not
    silently dropped.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        batch_every: int = 32,
    ) -> None:
        self.path = Path(path)
        self.fsync = validate_fsync_policy(fsync)
        self.batch_every = max(int(batch_every), 1)
        self._lock = threading.Lock()
        self._unsynced = 0
        self._last_seq: dict[str, int] = {}
        self._damaged: str | None = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._repair_and_scan_locked()

    # -- scanning ------------------------------------------------------

    def _scan_lines(self) -> tuple[list[WalRecord], int, str | None]:
        """Parse the file: (records, valid_byte_length, damage)."""
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0, None
        except OSError as exc:
            raise StoreError(f"cannot read WAL {self.path}: {exc}") from exc
        records: list[WalRecord] = []
        offset = 0
        damage: str | None = None
        while offset < len(blob):
            newline = blob.find(b"\n", offset)
            line = blob[offset : newline if newline >= 0 else len(blob)]
            try:
                records.append(WalRecord.from_json_line(line.decode()))
            except (StoreError, UnicodeDecodeError):
                tail_bytes = len(blob) - offset
                damage = (
                    f"WAL {self.path}: unparseable record at byte {offset} "
                    f"({tail_bytes} trailing byte(s) dropped)"
                )
                break
            if newline < 0:
                # Complete JSON but no newline: the fsync raced the crash.
                offset = len(blob)
                break
            offset = newline + 1
        return records, offset, damage

    def _repair_and_scan_locked(self) -> None:
        """Truncate a torn tail so new appends start on a clean line.

        Truncation here never drops a *complete* record — only the bytes
        past the last parseable line; whether those bytes were an
        acknowledged batch is recovery's question, and a torn final line
        by construction never finished its append (so was never
        acknowledged).

        Mid-file rot — an unparseable region with complete records
        *after* it — is a different animal: those trailing records may be
        acknowledged batches, so auto-truncating them would destroy data
        a crash never touched.  Such a file is left byte-identical,
        reads report the damage (recovery's corrupt-tail policy decides
        what to do with the valid prefix), and writes are refused until
        an operator intervenes.
        """
        records, valid_bytes, damage = self._scan_lines()
        self._damaged = None
        if damage is not None:
            if self._complete_records_past(valid_bytes):
                self._damaged = damage
            else:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
        self._last_seq = {}
        for record in records:
            self._last_seq[record.session_id] = max(
                self._last_seq.get(record.session_id, 0), record.seq
            )

    def _complete_records_past(self, damage_offset: int) -> bool:
        """Whether any *parseable* record line follows the damaged bytes.

        Distinguishes a torn tail (nothing valid after — safe to
        truncate) from mid-file rot (valid records stranded after the
        damage — never auto-truncate).
        """
        blob = self.path.read_bytes()
        offset = blob.find(b"\n", damage_offset)
        while 0 <= offset < len(blob) - 1:
            offset += 1
            newline = blob.find(b"\n", offset)
            line = blob[offset : newline if newline >= 0 else len(blob)]
            try:
                WalRecord.from_json_line(line.decode())
                return True
            except (StoreError, UnicodeDecodeError):
                pass
            if newline < 0:
                break
            offset = newline
        return False

    def _refuse_if_damaged(self) -> None:
        if self._damaged is not None:
            raise StoreError(
                f"refusing to write: {self._damaged}; complete records "
                "follow the damage, repair the file by hand first"
            )

    # -- FeedbackLogStore-shaped operations ----------------------------

    def append(
        self,
        session_id: str,
        items: list[dict],
        kind: str = "feedback",
        ref: int | None = None,
        key: str | None = None,
    ) -> WalRecord:
        validate_session_id(session_id)
        with self._lock:
            self._refuse_if_damaged()
            seq = self._last_seq.get(session_id, 0) + 1
            record = WalRecord.make(session_id, seq, kind, items, ref, key)
            line = record.to_json_line() + "\n"
            try:
                with open(self.path, "ab") as fh:
                    fh.write(line.encode())
                    if self.fsync == "off":
                        pass
                    else:
                        fh.flush()
                        if self.fsync == "always":
                            os.fsync(fh.fileno())
                        else:  # batch
                            self._unsynced += 1
                            if self._unsynced >= self.batch_every:
                                os.fsync(fh.fileno())
                                self._unsynced = 0
            except OSError as exc:
                raise StoreError(
                    f"cannot append to WAL {self.path}: {exc}"
                ) from exc
            self._last_seq[session_id] = seq
            return record

    def rollback(self, session_id: str, seq: int) -> None:
        """Annul record ``seq`` by appending an ``abort`` marker.

        Appending (rather than truncating) keeps the file strictly
        append-only, so a concurrent reader never sees bytes disappear.
        """
        self.append(session_id, [], kind="abort", ref=int(seq))

    def records(
        self, session_id: str | None = None, after_seq: int = 0
    ) -> tuple[list[WalRecord], str | None]:
        """Durable records (optionally one session's), plus damage info."""
        records, _, damage = self._scan_lines()
        if session_id is not None:
            records = [r for r in records if r.session_id == session_id]
        if after_seq:
            records = [r for r in records if r.seq > after_seq]
        return records, damage

    def last_seq(self, session_id: str) -> int:
        with self._lock:
            return self._last_seq.get(session_id, 0)

    def session_ids(self) -> list[str]:
        """Sessions with at least one logged record, sorted."""
        records, _, _ = self._scan_lines()
        return sorted({r.session_id for r in records})

    def prune(
        self, session_id: str, up_to_seq: int, marker: bool = True
    ) -> int:
        """Rewrite the file without the folded records, atomically.

        The rewrite goes through a temp file + fsync + ``os.replace`` so
        a crash mid-compaction leaves either the old complete log or the
        new complete log, never a torn hybrid.

        With ``marker`` (the default) the rewrite keeps the session's
        sequence floor durable via a ``prune`` marker record at
        ``up_to_seq`` whenever no surviving record carries it: sequence
        numbers must stay monotonic past a fold, or a fresh process
        scanning the shortened log would reissue numbers at or below the
        checkpoint's ``wal_seq`` — and recovery, which only replays
        ``seq > wal_seq``, would silently skip those batches.  Pass
        ``marker=False`` when deleting a session outright.

        Returns the number of *feedback-bearing* records dropped (markers
        do not count).
        """
        with self._lock:
            # A rewrite in the mid-file-rot state would silently drop the
            # complete records stranded past the damage.
            self._refuse_if_damaged()
            records, _, _ = self._scan_lines()
            keep = [
                r
                for r in records
                if r.session_id != session_id
                or r.seq > up_to_seq
                # an existing marker already at the new floor stays put,
                # so repeated folds at the same seq are no-op rewrites
                or (marker and r.kind == "prune" and r.seq == up_to_seq)
            ]
            removed = [r for r in records if r not in keep]
            dropped = sum(1 for r in removed if r.kind != "prune")
            kept_max = max(
                (r.seq for r in keep if r.session_id == session_id),
                default=0,
            )
            need_marker = marker and up_to_seq > 0 and kept_max < up_to_seq
            if not removed and not need_marker:
                return 0
            out = (
                [WalRecord.make(session_id, up_to_seq, kind="prune")]
                if need_marker
                else []
            ) + keep
            tmp = self.path.with_name(self.path.name + ".tmp")
            try:
                with open(tmp, "wb") as fh:
                    for record in out:
                        fh.write((record.to_json_line() + "\n").encode())
                    fh.flush()
                    if self.fsync != "off":
                        os.fsync(fh.fileno())
                os.replace(tmp, self.path)
                if self.fsync != "off":
                    _fsync_dir(self.path.parent)
            except OSError as exc:
                raise StoreError(
                    f"cannot compact WAL {self.path}: {exc}"
                ) from exc
            self._unsynced = 0
            if need_marker:
                self._last_seq[session_id] = max(
                    self._last_seq.get(session_id, 0), up_to_seq
                )
            return dropped


class WalDirectoryStore(DirectoryStore, FeedbackLogStore):
    """Directory checkpoints plus a shared JSONL write-ahead log.

    The file layout is the familiar ``<session_id>.json`` checkpoint per
    session with one ``feedback.wal`` JSONL log alongside.  Durability
    semantics match :class:`~repro.store.sqlite.SQLiteStore` (minus the
    transactional checkpoint+prune); it exists so the WAL machinery is
    usable — and benchmarkable — without SQLite in the picture.
    """

    def __init__(
        self,
        root: str | Path,
        fsync: str = "batch",
        batch_every: int = 32,
    ) -> None:
        super().__init__(root)
        self.wal = JsonlWal(
            self.root / "feedback.wal", fsync=fsync, batch_every=batch_every
        )

    def append_feedback(
        self,
        session_id: str,
        items: list[dict],
        kind: str = "feedback",
        ref: int | None = None,
        key: str | None = None,
    ) -> WalRecord:
        return self.wal.append(session_id, items, kind=kind, ref=ref, key=key)

    def rollback_feedback(self, session_id: str, seq: int) -> None:
        self.wal.rollback(session_id, seq)

    def feedback_tail(
        self, session_id: str, after_seq: int = 0
    ) -> tuple[list[WalRecord], str | None]:
        return self.wal.records(session_id, after_seq=after_seq)

    def last_seq(self, session_id: str) -> int:
        return self.wal.last_seq(session_id)

    def prune_feedback(self, session_id: str, up_to_seq: int) -> int:
        return self.wal.prune(session_id, up_to_seq)

    def list_ids(self) -> list[str]:
        """Checkpointed sessions plus any with only WAL records."""
        ids = set(super().list_ids())
        ids.update(self.wal.session_ids())
        return sorted(ids)

    def delete(self, session_id: str) -> None:
        super().delete(session_id)
        self.wal.prune(
            session_id,
            up_to_seq=self.wal.last_seq(session_id),
            marker=False,
        )
