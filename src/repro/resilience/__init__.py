"""`repro.resilience`: deadlines, load shedding, retries, drain, chaos.

The paper's interactivity contract (sub-second view updates while a
human explores) only survives load if overloaded or slow requests fail
*fast and predictably* instead of queueing behind the GIL.  This package
is the substrate the service leans on to do that, four pieces:

* **deadlines** (:mod:`repro.resilience.deadline`) — a per-request time
  budget carried in a thread-local; the solver checks it once per sweep
  and aborts long solves with :class:`DeadlineExceededError` (mapped to
  ``503 deadline_exceeded``) instead of burning a worker thread;
* **admission control** (:mod:`repro.resilience.admission`) — a bounded
  in-flight counter that sheds session work with
  :class:`OverloadedError` (``503 overloaded`` + ``Retry-After``) once
  the bound is hit, and refuses new work with :class:`DrainingError`
  while the server drains;
* **retries** (:mod:`repro.resilience.retry`) — capped exponential
  backoff with full jitter, transport-error classification, and a
  closed/open/half-open :class:`CircuitBreaker`, used by
  :class:`~repro.service.client.ServiceClient`;
* **graceful drain** (:mod:`repro.resilience.drain`) — stop admitting,
  wait (bounded) for in-flight work, checkpoint every session, exit 0;
  driven by ``SIGTERM`` or ``POST /v1/admin/drain``.

All of it is proven by the **fault-injection harness** in
:mod:`repro.resilience.chaos`: named fault points (latency, exception,
torn response, worker kill) threaded through api/manager/store behind a
registry that costs one module-global read while disabled — the same
zero-overhead discipline as :mod:`repro.perf` and :mod:`repro.obs`.
"""

from repro.resilience.admission import (
    AdmissionController,
    DrainingError,
    OverloadedError,
)
from repro.resilience.chaos import (
    ChaosError,
    ChaosRegistry,
    FaultSpec,
    active_chaos,
    configure_chaos,
    disable_chaos,
    hit,
)
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceededError,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.drain import run_drain
from repro.resilience.retry import (
    BREAKER_STATES,
    MAX_TRACKED_BREAKERS,
    BreakerOpen,
    CircuitBreaker,
    RetryDecision,
    RetryPolicy,
    backoff_delay,
    breaker_for,
    classify,
    reset_breakers,
    tracked_breaker_count,
)

__all__ = [
    "AdmissionController",
    "BREAKER_STATES",
    "BreakerOpen",
    "ChaosError",
    "ChaosRegistry",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "DrainingError",
    "FaultSpec",
    "MAX_TRACKED_BREAKERS",
    "OverloadedError",
    "RetryDecision",
    "RetryPolicy",
    "active_chaos",
    "backoff_delay",
    "breaker_for",
    "check_deadline",
    "classify",
    "configure_chaos",
    "current_deadline",
    "deadline_scope",
    "disable_chaos",
    "hit",
    "reset_breakers",
    "run_drain",
    "tracked_breaker_count",
]
