"""Per-request deadline budgets, propagated ambiently.

A request arrives with a time budget (the ``X-Repro-Deadline-Ms``
header, or the server's ``--default-deadline-ms``); the dispatch layer
opens a :func:`deadline_scope` around the handler, and any code on the
same thread can ask *"is there still time?"* without the budget being
threaded through every signature — crucially the solver, whose sweep
loop sits several layers below the HTTP handler (behind
``BackgroundModel.fit``, which takes no callback).

The ambient state is one thread-local slot.  While no deadline is set,
:func:`check_deadline` is a thread-local attribute read plus a ``None``
check — cheap enough to call once per solver sweep unconditionally, the
same cost discipline as a disabled :func:`repro.perf.add`.

Expiry raises :class:`DeadlineExceededError`, which the API layer maps
to ``503 deadline_exceeded`` with a ``retry_after`` hint: the client
lost this attempt but the server shed the work early instead of burning
a worker thread on an answer nobody is waiting for.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ReproError

__all__ = [
    "Deadline",
    "DeadlineExceededError",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]


class DeadlineExceededError(ReproError):
    """The request's time budget ran out before the work finished.

    Attributes
    ----------
    budget_ms:
        The budget the request started with.
    elapsed_ms:
        Wall clock actually spent when the expiry was noticed.
    """

    def __init__(self, budget_ms: float, elapsed_ms: float) -> None:
        self.budget_ms = float(budget_ms)
        self.elapsed_ms = float(elapsed_ms)
        super().__init__(
            f"deadline of {budget_ms:.0f} ms exceeded "
            f"({elapsed_ms:.0f} ms elapsed)"
        )


class Deadline:
    """One monotonic expiry instant plus the budget it came from."""

    __slots__ = ("budget_ms", "started", "expires")

    def __init__(
        self, budget_ms: float, clock: float | None = None
    ) -> None:
        if budget_ms <= 0:
            raise ValueError(f"budget_ms must be positive, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self.started = time.monotonic() if clock is None else clock
        self.expires = self.started + self.budget_ms / 1e3

    def remaining_ms(self) -> float:
        """Milliseconds left (negative once expired)."""
        return (self.expires - time.monotonic()) * 1e3

    def expired(self) -> bool:
        return time.monotonic() >= self.expires

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        now = time.monotonic()
        if now >= self.expires:
            raise DeadlineExceededError(
                self.budget_ms, (now - self.started) * 1e3
            )


_local = threading.local()


def current_deadline() -> Deadline | None:
    """The deadline governing this thread, or ``None``."""
    return getattr(_local, "deadline", None)


def check_deadline() -> None:
    """Raise if this thread's ambient deadline (if any) has expired.

    The hot-path hook: no deadline set means one attribute read and out.
    """
    deadline = getattr(_local, "deadline", None)
    if deadline is not None:
        deadline.check()


@contextmanager
def deadline_scope(budget_ms: float | None) -> Iterator[Deadline | None]:
    """Install a deadline for the duration of the block (this thread).

    ``None`` (or a non-positive budget) installs nothing, so callers can
    pass an optional header value straight through.  Scopes nest; an
    inner scope with a *longer* budget than the enclosing one keeps the
    enclosing (tighter) deadline, so a sub-operation can never outlive
    its request.
    """
    if budget_ms is None or budget_ms <= 0:
        yield None
        return
    outer = getattr(_local, "deadline", None)
    inner = Deadline(budget_ms)
    if outer is not None and outer.expires <= inner.expires:
        inner = outer
    _local.deadline = inner
    try:
        yield inner
    finally:
        _local.deadline = outer
