"""Fault injection: named chaos points threaded through the service.

The resilience claims in this package are only worth anything if they
are exercised against real failure, so the service carries a handful of
named **fault points** — places where a test or a chaos run can inject
trouble:

=============================== =======================================
point                           where it sits
=============================== =======================================
``api.dispatch``                before request routing in ServiceAPI
``manager.feedback.post_commit`` after the WAL commit of a feedback
                                batch, before the response is built —
                                the exactly-once window
``store.append``                before a WAL/SQLite feedback append
``server.respond``              before the HTTP response bytes are
                                written (supports torn responses)
=============================== =======================================

Each point can carry faults of four kinds:

* ``latency`` — sleep ``ms`` milliseconds (queueing, GC pauses);
* ``error`` — raise :class:`ChaosError` (maps to ``500``);
* ``kill`` — ``os._exit(137)``, a worker dying mid-request exactly as
  ``kill -9`` would, with no cleanup and no response;
* ``torn`` — only meaningful at ``server.respond``: the handler writes
  a prefix of the response body and closes the socket, the classic
  half-written answer a client must treat as ambiguous.

Faults are described by a compact spec string (``REPRO_CHAOS`` env var
or ``--chaos`` flags)::

    point:kind[:key=value]*[,point:kind...]

    api.dispatch:latency:ms=50:p=0.3     30% of requests +50 ms
    api.dispatch:error:p=0.05            5% injected 500s
    manager.feedback.post_commit:kill:after=3:times=1
                                         die on the 4th commit, once
    server.respond:torn:p=0.02           2% torn responses

``p`` is an independent firing probability (default 1), ``after`` skips
the first N eligible hits, ``times`` caps total firings.  Draws come
from a seeded :class:`random.Random` so chaos runs are reproducible.

The discipline is the same as :mod:`repro.perf`: one module-global
``_active``; :func:`hit` reads it once and returns immediately when
chaos is off, so instrumented production paths pay a single global read.
Fired faults are appended to a JSONL event log (``REPRO_CHAOS_LOG``)
that the CI chaos-smoke job uploads as an artifact.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "ChaosError",
    "ChaosRegistry",
    "FaultSpec",
    "active_chaos",
    "configure_chaos",
    "disable_chaos",
    "hit",
    "parse_chaos",
]

FAULT_KINDS = ("latency", "error", "torn", "kill")

#: Exit code of an injected worker kill — the conventional SIGKILL code.
KILL_EXIT_CODE = 137


class ChaosError(ReproError):
    """An injected failure (maps to ``500 chaos_injected`` at the API)."""

    def __init__(self, point: str) -> None:
        self.point = point
        super().__init__(f"chaos: injected error at {point}")


@dataclass
class FaultSpec:
    """One fault attached to one point (parsed from the spec grammar)."""

    point: str
    kind: str
    ms: float = 0.0
    p: float = 1.0
    after: int = 0
    times: int | None = None
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.ms < 0:
            raise ValueError(f"fault latency must be >= 0, got {self.ms}")

    def to_dict(self) -> dict:
        payload = {"point": self.point, "kind": self.kind}
        if self.kind == "latency":
            payload["ms"] = self.ms
        if self.p < 1.0:
            payload["p"] = self.p
        if self.after:
            payload["after"] = self.after
        if self.times is not None:
            payload["times"] = self.times
        return payload


def _parse_one(token: str) -> FaultSpec:
    parts = token.strip().split(":")
    if len(parts) < 2:
        raise ValueError(
            f"bad chaos spec {token!r}: expected point:kind[:key=value...]"
        )
    point, kind = parts[0], parts[1]
    kwargs: dict = {}
    for option in parts[2:]:
        key, sep, value = option.partition("=")
        if not sep:
            raise ValueError(
                f"bad chaos option {option!r} in {token!r}: expected key=value"
            )
        if key in ("ms", "p"):
            kwargs[key] = float(value)
        elif key in ("after", "times"):
            kwargs[key] = int(value)
        else:
            raise ValueError(
                f"unknown chaos option {key!r} in {token!r} "
                f"(expected ms, p, after, or times)"
            )
    return FaultSpec(point=point, kind=kind, **kwargs)


def parse_chaos(spec: str) -> list[FaultSpec]:
    """Parse a comma-separated chaos spec string into fault specs."""
    return [_parse_one(token) for token in spec.split(",") if token.strip()]


class ChaosRegistry:
    """Holds the active faults and evaluates them at each point."""

    def __init__(
        self,
        faults,
        seed: int | None = None,
        log_path: str | None = None,
    ) -> None:
        import random

        if isinstance(faults, str):
            faults = parse_chaos(faults)
        self.faults: list[FaultSpec] = list(faults)
        self.log_path = log_path
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._by_point: dict[str, list[FaultSpec]] = {}
        for fault in self.faults:
            self._by_point.setdefault(fault.point, []).append(fault)

    def hit(self, point: str) -> FaultSpec | None:
        """Evaluate the faults at ``point``; act on one if it fires.

        ``latency`` sleeps here, ``error`` raises :class:`ChaosError`,
        ``kill`` exits the process; ``torn`` is returned to the caller
        (only the response writer knows how to tear its own output).
        At most one fault fires per hit, in spec order.
        """
        faults = self._by_point.get(point)
        if not faults:
            return None
        fired: FaultSpec | None = None
        with self._lock:
            for fault in faults:
                fault.hits += 1
                if fault.hits <= fault.after:
                    continue
                if fault.times is not None and fault.fired >= fault.times:
                    continue
                if fault.p < 1.0 and self._rng.random() >= fault.p:
                    continue
                fault.fired += 1
                fired = fault
                break
        if fired is None:
            return None
        self._log_event(fired)
        if fired.kind == "latency":
            time.sleep(fired.ms / 1e3)
            return None
        if fired.kind == "error":
            raise ChaosError(point)
        if fired.kind == "kill":
            # A worker dying mid-request: no cleanup, no response, no
            # atexit — exactly what the recovery path must survive.
            os._exit(KILL_EXIT_CODE)
        return fired  # torn: the caller tears its own response

    def _log_event(self, fault: FaultSpec) -> None:
        if self.log_path is None:
            return
        event = dict(fault.to_dict())
        event.update(
            ts=time.time(), pid=os.getpid(), fired=fault.fired, hits=fault.hits
        )
        try:
            with self._lock:
                with open(self.log_path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
                    handle.flush()
                    if fault.kind == "kill":
                        # The exit below skips every buffer flush; make
                        # sure the log survives the injected death.
                        os.fsync(handle.fileno())
        except OSError:
            pass

    def stats(self) -> dict:
        with self._lock:
            return {
                "faults": [
                    dict(fault.to_dict(), hits=fault.hits, fired=fault.fired)
                    for fault in self.faults
                ]
            }


# ----------------------------------------------------------------------
# Module-level switch: the zero-overhead-when-disabled discipline.
# ----------------------------------------------------------------------

_active: ChaosRegistry | None = None


def configure_chaos(
    faults,
    seed: int | None = None,
    log_path: str | None = None,
) -> ChaosRegistry:
    """Install a chaos registry (spec string or FaultSpec list)."""
    global _active
    registry = ChaosRegistry(faults, seed=seed, log_path=log_path)
    _active = registry
    return registry


def disable_chaos() -> None:
    global _active
    _active = None


def active_chaos() -> ChaosRegistry | None:
    return _active


def hit(point: str) -> FaultSpec | None:
    """Evaluate chaos at ``point``; a no-op global read while disabled."""
    state = _active
    if state is None:
        return None
    return state.hit(point)


def configure_from_env(environ=os.environ) -> ChaosRegistry | None:
    """Install chaos from ``REPRO_CHAOS`` (and friends), if set.

    Recognised variables: ``REPRO_CHAOS`` (spec string),
    ``REPRO_CHAOS_SEED`` (int), ``REPRO_CHAOS_LOG`` (JSONL path).
    """
    spec = environ.get("REPRO_CHAOS", "").strip()
    if not spec:
        return None
    seed_raw = environ.get("REPRO_CHAOS_SEED", "").strip()
    seed = int(seed_raw) if seed_raw else None
    log_path = environ.get("REPRO_CHAOS_LOG", "").strip() or None
    return configure_chaos(spec, seed=seed, log_path=log_path)
