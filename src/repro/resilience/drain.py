"""Graceful drain: stop admitting, finish in-flight, checkpoint, exit.

One function, :func:`run_drain`, shared by the two triggers:

* the ``SIGTERM`` handler installed by ``repro serve`` (the orchestrator
  told this worker to go away), and
* ``POST /v1/admin/drain`` (an operator or the future shard router asked
  it to hand its sessions off).

The sequence is fixed: flip the admission controller into draining mode
(new session work is refused with ``503 draining`` + ``Retry-After``,
pointing clients at another replica), wait — bounded by the drain
budget — for already-admitted requests to finish, checkpoint every live
session through the store so a successor can resume them, then hand
control to the caller's ``shutdown`` callback (stop the HTTP server /
exit 0).  If in-flight work outlives the budget it is abandoned, not
waited on forever: the report says so, and the sessions those requests
touched are still checkpointed at whatever state their last *completed*
batch reached — the WAL guarantees nothing half-applied is ever
persisted.
"""

from __future__ import annotations

import time

__all__ = ["run_drain"]

#: Default drain budget (seconds) used by serve and the admin route.
DEFAULT_DRAIN_BUDGET = 10.0


def run_drain(
    admission,
    manager,
    budget_seconds: float = DEFAULT_DRAIN_BUDGET,
    shutdown=None,
) -> dict:
    """Drain the server: refuse new work, settle, checkpoint, shut down.

    Parameters
    ----------
    admission:
        The server's :class:`~repro.resilience.admission.AdmissionController`.
    manager:
        The :class:`~repro.service.manager.SessionManager` whose sessions
        must be checkpointed before the process goes away.
    budget_seconds:
        How long to wait for in-flight requests before abandoning them.
    shutdown:
        Optional zero-argument callable invoked last (e.g.
        ``server.shutdown``); exceptions from it are reported, not
        raised — drain must always reach its report.

    Returns a report dict (also logged by callers): whether this call
    initiated the drain, whether in-flight work settled inside the
    budget, how many sessions were checkpointed, and elapsed seconds.
    """
    started = time.monotonic()
    initiated = admission.begin_drain()
    idle = admission.wait_idle(budget_seconds)
    abandoned = admission.inflight
    if getattr(manager, "store", None) is not None:
        checkpointed = manager.checkpoint_all()
    else:
        checkpointed = 0  # ephemeral server: nothing to persist
    shutdown_error = None
    if shutdown is not None:
        try:
            shutdown()
        except Exception as exc:  # noqa: BLE001 - reported, never raised
            shutdown_error = f"{type(exc).__name__}: {exc}"
    report = {
        "initiated": initiated,
        "idle": idle,
        "abandoned_inflight": abandoned,
        "checkpointed": checkpointed,
        "budget_seconds": float(budget_seconds),
        "elapsed_seconds": time.monotonic() - started,
    }
    if shutdown_error is not None:
        report["shutdown_error"] = shutdown_error
    return report
