"""Admission control: bounded in-flight work, shed the excess fast.

A ``ThreadingHTTPServer`` accepts every connection, so without a bound
an overloaded server queues requests behind the GIL and *every* client
sees multi-second latency — the failure mode the paper's interactivity
budget cannot tolerate.  The controller keeps a simple in-flight
counter: session work past the bound is refused immediately with
:class:`OverloadedError` (``503 overloaded`` + ``Retry-After``), so the
requests that *are* admitted keep their latency while the shed ones
retry against a recovering server instead of piling onto a drowning
one.

The same counter powers graceful drain: :meth:`begin_drain` flips the
controller into a mode where new session work is refused with
:class:`DrainingError` while the already-admitted requests finish, and
:meth:`wait_idle` blocks (bounded) until the in-flight count reaches
zero — at which point every session can be checkpointed and the process
can exit.

Health/metrics/admin routes are *exempt*: they are answered even while
shedding or draining (an overloaded server must still be observable),
which callers express per-request via ``admit(exempt=True)``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ReproError

__all__ = ["AdmissionController", "DrainingError", "OverloadedError"]

#: Default ``Retry-After`` hint (seconds) attached to shed responses.
DEFAULT_RETRY_AFTER = 1.0


class OverloadedError(ReproError):
    """In-flight work is at the admission bound; the request was shed."""

    def __init__(self, inflight: int, limit: int, retry_after: float) -> None:
        self.inflight = int(inflight)
        self.limit = int(limit)
        self.retry_after = float(retry_after)
        super().__init__(
            f"server overloaded: {inflight} requests in flight "
            f"(limit {limit}); retry after {retry_after:g}s"
        )


class DrainingError(ReproError):
    """The server is draining and no longer accepts session work."""

    def __init__(self, retry_after: float) -> None:
        self.retry_after = float(retry_after)
        super().__init__(
            f"server is draining; retry another replica "
            f"after {retry_after:g}s"
        )


class AdmissionController:
    """Counts in-flight requests; sheds past a bound; coordinates drain.

    Parameters
    ----------
    max_inflight:
        Bound on concurrently admitted (non-exempt) requests; ``None``
        disables shedding but the counter still tracks in-flight work so
        drain can wait for it.
    retry_after:
        The ``Retry-After`` hint (seconds) shed responses carry.
    """

    def __init__(
        self,
        max_inflight: int | None = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive or None, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._draining = False
        self._shed_overload = 0
        self._shed_draining = 0
        self._admitted = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @contextmanager
    def admit(self, exempt: bool = False) -> Iterator[None]:
        """Admit one request for the duration of the block, or shed it.

        Exempt requests (health, metrics, admin) are always admitted and
        are not counted against the bound — they must keep answering
        precisely when the server is overloaded or draining.
        """
        if exempt:
            yield
            return
        with self._lock:
            if self._draining:
                self._shed_draining += 1
                raise DrainingError(self.retry_after)
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self._shed_overload += 1
                raise OverloadedError(
                    self._inflight, self.max_inflight, self.retry_after
                )
            self._inflight += 1
            self._admitted += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def begin_drain(self) -> bool:
        """Stop admitting session work; returns False if already draining."""
        with self._lock:
            if self._draining:
                return False
            self._draining = True
            return True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def wait_idle(self, budget_seconds: float) -> bool:
        """Block until in-flight work reaches zero, or the budget runs out.

        Returns True when idle was reached inside the budget.
        """
        deadline = time.monotonic() + max(float(budget_seconds), 0.0)
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> dict:
        """Counters for ``GET /v1/stats`` and the loadgen report."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "admitted": self._admitted,
                "shed_overload": self._shed_overload,
                "shed_draining": self._shed_draining,
                "draining": self._draining,
            }
