"""Client-side retry machinery: backoff, classification, circuit breaker.

Replaces the client's original "retry connection-refused with a fixed
0.1 s sleep" loop with the three standard ingredients:

* **classification** — :func:`classify` decides per failure whether a
  retry is safe and useful.  Connection-refused is always retryable (the
  request never reached a server).  Timeouts and mid-body transport
  failures are *ambiguous* — the server may have applied the work — so
  they are retried only when the request is idempotent (GET) or carries
  an ``Idempotency-Key`` that makes the replay exactly-once.  A ``503``
  whose response carries ``Retry-After`` is the server explicitly
  inviting a retry (shed / draining); any other answered status — every
  4xx in particular — is final.
* **capped exponential backoff with full jitter** —
  :func:`backoff_delay` draws uniformly from ``[0, min(cap, base·2ⁿ)]``,
  so a fleet of clients retrying the same incident spreads out instead
  of thundering back in lockstep; a server-supplied ``Retry-After``
  floors the draw.
* **a per-host circuit breaker** — closed / open / half-open.  After
  ``failure_threshold`` consecutive failures the breaker opens and
  requests fail fast locally for ``cooldown`` seconds; then one probe
  request is let through (half-open) and its outcome decides between
  closing and re-opening.  Clients default to a private breaker;
  :func:`breaker_for` hands out process-wide per-host breakers so a
  loadgen fleet shares one view of a struggling server.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

__all__ = [
    "BREAKER_STATES",
    "BreakerOpen",
    "CircuitBreaker",
    "MAX_TRACKED_BREAKERS",
    "RetryDecision",
    "RetryPolicy",
    "backoff_delay",
    "breaker_for",
    "classify",
    "reset_breakers",
    "tracked_breaker_count",
]

#: Methods whose replay is safe without an idempotency key.
IDEMPOTENT_METHODS = frozenset({"GET", "HEAD"})

BREAKER_STATES = ("closed", "open", "half-open")


def backoff_delay(
    attempt: int,
    base: float,
    cap: float,
    rng: random.Random | None = None,
    floor: float = 0.0,
) -> float:
    """Full-jitter exponential backoff for retry number ``attempt`` (0-based).

    Draws uniformly from ``[0, min(cap, base * 2**attempt)]`` and floors
    the result at ``floor`` (a server-supplied ``Retry-After``).  A zero
    ``base`` yields zero delay — tests rely on retry loops that never
    sleep.
    """
    ceiling = min(float(cap), float(base) * (2.0 ** max(int(attempt), 0)))
    if ceiling <= 0.0:
        return max(float(floor), 0.0)
    draw = (rng or random).uniform(0.0, ceiling)
    return max(draw, float(floor), 0.0)


@dataclass(frozen=True)
class RetryDecision:
    """Outcome of classifying one failure.

    ``kind`` is a stable tag for reporting: ``connection_refused``,
    ``transport``, ``server_retryable``, or ``final``.
    """

    retryable: bool
    kind: str
    retry_after: float | None = None


def classify(
    exc, method: str, *, idempotency_key: str | None = None
) -> RetryDecision:
    """Classify a :class:`~repro.service.client.ServiceClientError`.

    Duck-typed (``status`` / ``connection_refused`` / ``retry_after``
    attributes) so this module stays import-free of the client.
    """
    status = getattr(exc, "status", None)
    if status == 0:
        if getattr(exc, "connection_refused", False):
            # Never sent: always safe to retry (bridges server startup).
            return RetryDecision(True, "connection_refused")
        # Timeout or mid-body failure: the server may have applied the
        # work, so replay only when that replay is provably harmless.
        safe = (
            method.upper() in IDEMPOTENT_METHODS
            or idempotency_key is not None
        )
        return RetryDecision(safe, "transport")
    retry_after = getattr(exc, "retry_after", None)
    if status == 503 and retry_after is not None:
        # The server explicitly shed this request and named a comeback
        # time — the one *answered* status worth resending.
        return RetryDecision(True, "server_retryable", retry_after)
    return RetryDecision(False, "final")


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retry loop (see :class:`ServiceClient`).

    ``connect_retries`` bounds connection-refused retries (the historic
    knob, kept as-is); ``max_retries`` bounds every other retryable
    class; ``budget_seconds`` caps the *total* backoff sleep of one
    logical request, so pathological Retry-After loops terminate.
    """

    connect_retries: int = 3
    max_retries: int = 2
    base_delay: float = 0.1
    max_delay: float = 2.0
    budget_seconds: float = 15.0

    def attempts_for(self, kind: str) -> int:
        return (
            self.connect_retries
            if kind == "connection_refused"
            else self.max_retries
        )


class BreakerOpen(Exception):
    """Raised by :meth:`CircuitBreaker.acquire` while the breaker is open.

    Carries ``retry_after`` — seconds until the next half-open probe.
    """

    def __init__(self, host: str, retry_after: float) -> None:
        self.host = host
        self.retry_after = max(float(retry_after), 0.0)
        super().__init__(
            f"circuit breaker open for {host}; "
            f"next probe in {self.retry_after:.2f}s"
        )


class CircuitBreaker:
    """Closed / open / half-open breaker over consecutive failures.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`acquire` raises :class:`BreakerOpen` (fail fast, no
    socket touched).  After ``cooldown`` seconds one caller is admitted
    as the half-open probe; its success closes the breaker, its failure
    re-opens it for another cooldown.
    """

    def __init__(
        self,
        host: str = "",
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        self.host = host
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.open_count = 0
        self.rejected = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def acquire(self) -> None:
        """Gate one attempt; raises :class:`BreakerOpen` when tripped."""
        with self._lock:
            if self._state == "closed":
                return
            now = self._clock()
            elapsed = now - self._opened_at
            if self._state == "open" and elapsed >= self.cooldown:
                self._state = "half-open"
                self._probing = False
            if self._state == "half-open" and not self._probing:
                self._probing = True  # this caller is the probe
                return
            self.rejected += 1
            raise BreakerOpen(self.host, self.cooldown - elapsed)

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half-open":
                # The probe failed: straight back to open, fresh cooldown.
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
                self.open_count += 1
                return
            self._failures += 1
            if self._state == "closed" and (
                self._failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self.open_count += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "host": self.host,
                "state": self._state,
                "consecutive_failures": self._failures,
                "opened": self.open_count,
                "rejected": self.rejected,
            }


# ----------------------------------------------------------------------
# Process-wide per-host registry (opt-in: ServiceClient(shared_breaker=True))
# ----------------------------------------------------------------------

#: Hard bound on registry size.  A long-lived process talking to an
#: unbounded set of hosts (loadgen against ephemeral ports, a proxy fleet)
#: must not leak one CircuitBreaker per host forever.
MAX_TRACKED_BREAKERS = 128

#: A breaker not asked for in this long is forgotten on the next access.
#: Well past any cooldown window, so an evicted breaker's lost state is a
#: breaker that would have re-closed anyway.
BREAKER_IDLE_SECONDS = 600.0

_registry_lock = threading.Lock()
_breakers: dict[str, CircuitBreaker] = {}  # insertion order = LRU order
_breaker_last_used: dict[str, float] = {}


def breaker_for(host: str, **kwargs) -> CircuitBreaker:
    """The process-wide breaker for ``host`` (created on first use).

    Sharing one breaker per host is what stops a fleet of workers from
    thundering-herd-probing a recovering server: the first probe's
    outcome is visible to every client in the process.

    The registry is bounded: entries idle longer than
    :data:`BREAKER_IDLE_SECONDS` are dropped lazily, and past
    :data:`MAX_TRACKED_BREAKERS` the least-recently-requested breaker is
    evicted.  Clients already holding an evicted breaker keep using it;
    only the *shared* view of that host resets (to closed — the safe
    default for a host nobody has talked to in a while).
    """
    now = time.monotonic()
    with _registry_lock:
        breaker = _breakers.pop(host, None)
        if breaker is None:
            breaker = CircuitBreaker(host, **kwargs)
        _breakers[host] = breaker  # re-insert = move to MRU end
        _breaker_last_used[host] = now
        _evict_breakers_locked(now)
        return breaker


def _evict_breakers_locked(now: float) -> None:
    idle = [
        h
        for h, used in _breaker_last_used.items()
        if now - used > BREAKER_IDLE_SECONDS
    ]
    for host in idle:
        _breakers.pop(host, None)
        _breaker_last_used.pop(host, None)
    while len(_breakers) > MAX_TRACKED_BREAKERS:
        oldest = next(iter(_breakers))
        _breakers.pop(oldest, None)
        _breaker_last_used.pop(oldest, None)


def tracked_breaker_count() -> int:
    """How many hosts the shared registry currently tracks."""
    with _registry_lock:
        return len(_breakers)


def reset_breakers() -> None:
    """Drop every shared breaker (tests; between independent runs)."""
    with _registry_lock:
        _breakers.clear()
        _breaker_last_used.clear()
