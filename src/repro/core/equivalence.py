"""Row equivalence classes: the n-independence trick of the paper.

Two rows affected by exactly the same set of constraints have identical
natural and dual parameters throughout the optimisation, so parameters only
need to be stored once per *equivalence class* of rows.  The number of
classes depends on how constraints overlap, not on n, which is why the
OPTIM phase of Table II is independent of the number of data points.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.constraint import Constraint


@dataclass(frozen=True)
class EquivalenceClasses:
    """Partition of rows by constraint-membership pattern.

    Attributes
    ----------
    n_rows:
        Total number of data rows.
    class_of_row:
        Array of length n mapping each row to its class index.
    class_counts:
        Array of length C: number of rows in each class.
    members:
        For each constraint t, the array of class indices whose rows are all
        inside ``I_t`` (by construction a class is either fully inside or
        fully outside any constraint's row set).
    representative_rows:
        One row index per class (useful for whitening/sampling loops that
        need a concrete row of the class).
    """

    n_rows: int
    class_of_row: np.ndarray
    class_counts: np.ndarray
    members: tuple[np.ndarray, ...]
    representative_rows: np.ndarray

    @property
    def n_classes(self) -> int:
        """Number of distinct equivalence classes."""
        return int(self.class_counts.size)

    def count_in_constraint(self, t: int) -> int:
        """Number of rows involved in constraint ``t`` (i.e. ``|I_t|``)."""
        return int(np.sum(self.class_counts[self.members[t]]))

    @cached_property
    def scatter_plan(self) -> tuple[np.ndarray, np.ndarray]:
        """``(order, offsets)`` grouping rows into contiguous class blocks.

        ``order`` sorts rows by class (stably); rows of class c occupy
        ``order[offsets[c]:offsets[c + 1]]``.  Computed once per partition
        (the partition is immutable) and reused by every grouped per-class
        kernel application — whitening and sampling call these on every
        view request.
        """
        order = np.argsort(self.class_of_row, kind="stable")
        offsets = np.concatenate(([0], np.cumsum(self.class_counts)))
        return order, offsets

    @cached_property
    def padded_scatter_plan(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(sorted_class, position, largest)`` for block-diagonal GEMMs.

        For the class-sorted row layout of :attr:`scatter_plan`:
        ``sorted_class[j]`` is the class of sorted row j, ``position[j]``
        its offset inside that class block, and ``largest`` the biggest
        class size — everything a padded ``(C, B, d)`` scatter needs.
        Cached like ``scatter_plan``: pure functions of the immutable
        partition, rebuilt per call they would cost O(n) index work on
        every whitening/sampling view request.
        """
        _, offsets = self.scatter_plan
        counts = np.diff(offsets)
        sorted_class = np.repeat(np.arange(self.n_classes), counts)
        position = np.arange(self.n_rows) - offsets[sorted_class]
        largest = int(counts.max()) if counts.size else 0
        return sorted_class, position, largest


def build_equivalence_classes(
    n_rows: int, constraints: list[Constraint]
) -> EquivalenceClasses:
    """Group rows by which constraints involve them.

    The membership pattern of a row is the set of constraint indices whose
    row set contains it.  Rows sharing a pattern form one class.  The
    unconstrained rows (empty pattern) form a class of their own, which
    keeps the prior parameters ``(0, I)`` for the whole run.

    Fully vectorized: rows become columns of a ``(T, n)`` boolean
    membership mask, identical columns are collapsed with one
    ``np.unique`` call, and classes are renumbered by first row of
    occurrence — the exact numbering the original per-row Python loop
    produced, so fitted parameters and checkpoints stay index-compatible.
    """
    t_count = len(constraints)
    if t_count == 0 or n_rows == 0:
        # No constraints: every row shares the prior class (no rows at all
        # degenerates to zero classes, as the scan version produced).
        n_classes = 1 if n_rows > 0 else 0
        return EquivalenceClasses(
            n_rows=n_rows,
            class_of_row=np.zeros(n_rows, dtype=np.intp),
            class_counts=np.full(n_classes, n_rows, dtype=np.intp),
            members=tuple(
                np.arange(n_classes, dtype=np.intp) for _ in constraints
            ),
            representative_rows=np.zeros(n_classes, dtype=np.intp),
        )

    mask = np.zeros((t_count, n_rows), dtype=bool)
    for t, constraint in enumerate(constraints):
        mask[t, constraint.rows] = True

    # One signature per row: its mask column, bit-packed so each row
    # compares as a short byte string.  A 1-D void-dtype unique is an
    # order of magnitude faster than np.unique(..., axis=0) on the raw
    # boolean matrix (memcmp keys instead of the structured-sort path).
    packed = np.ascontiguousarray(np.packbits(mask, axis=0).T)
    signatures = packed.view(
        np.dtype((np.void, packed.shape[1]))
    ).ravel()
    _, first_row, inverse = np.unique(
        signatures, return_index=True, return_inverse=True
    )
    # np.unique numbers the distinct signatures in sort order; remap to
    # first-occurrence order to reproduce the scan-order numbering of the
    # per-row loop this replaced (checkpoint/warm-start compatibility).
    order = np.argsort(first_row, kind="stable")
    rank = np.empty(order.size, dtype=np.intp)
    rank[order] = np.arange(order.size, dtype=np.intp)

    class_of_row = rank[inverse.reshape(-1)]
    n_classes = order.size
    class_counts = np.bincount(class_of_row, minlength=n_classes).astype(np.intp)
    representatives = first_row[order].astype(np.intp)

    # For each constraint, the classes fully contained in its row set
    # (ascending, as before): read each class's membership off its
    # representative row.
    rep_mask = mask[:, representatives]  # (T, C)
    members = tuple(
        np.flatnonzero(rep_mask[t]).astype(np.intp) for t in range(t_count)
    )

    return EquivalenceClasses(
        n_rows=n_rows,
        class_of_row=class_of_row,
        class_counts=class_counts,
        members=members,
        representative_rows=representatives,
    )
