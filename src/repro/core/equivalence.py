"""Row equivalence classes: the n-independence trick of the paper.

Two rows affected by exactly the same set of constraints have identical
natural and dual parameters throughout the optimisation, so parameters only
need to be stored once per *equivalence class* of rows.  The number of
classes depends on how constraints overlap, not on n, which is why the
OPTIM phase of Table II is independent of the number of data points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constraint import Constraint


@dataclass(frozen=True)
class EquivalenceClasses:
    """Partition of rows by constraint-membership pattern.

    Attributes
    ----------
    n_rows:
        Total number of data rows.
    class_of_row:
        Array of length n mapping each row to its class index.
    class_counts:
        Array of length C: number of rows in each class.
    members:
        For each constraint t, the array of class indices whose rows are all
        inside ``I_t`` (by construction a class is either fully inside or
        fully outside any constraint's row set).
    representative_rows:
        One row index per class (useful for whitening/sampling loops that
        need a concrete row of the class).
    """

    n_rows: int
    class_of_row: np.ndarray
    class_counts: np.ndarray
    members: tuple[np.ndarray, ...]
    representative_rows: np.ndarray

    @property
    def n_classes(self) -> int:
        """Number of distinct equivalence classes."""
        return int(self.class_counts.size)

    def count_in_constraint(self, t: int) -> int:
        """Number of rows involved in constraint ``t`` (i.e. ``|I_t|``)."""
        return int(np.sum(self.class_counts[self.members[t]]))


def build_equivalence_classes(
    n_rows: int, constraints: list[Constraint]
) -> EquivalenceClasses:
    """Group rows by which constraints involve them.

    The membership pattern of a row is the set of constraint indices whose
    row set contains it.  Rows sharing a pattern form one class.  The
    unconstrained rows (empty pattern) form a class of their own, which
    keeps the prior parameters ``(0, I)`` for the whole run.

    Complexity: O(k·|I_t| + n) time, O(n) memory — the membership signature
    is built incrementally as a hash over constraint indices.
    """
    # Incremental signature: for each row keep a tuple key built from the
    # constraints that touch it.  Using a per-row list of constraint ids and
    # converting to tuple keys is O(total membership size).
    touching: list[list[int]] = [[] for _ in range(n_rows)]
    for t, constraint in enumerate(constraints):
        for row in constraint.rows:
            touching[int(row)].append(t)

    class_index_by_key: dict[tuple[int, ...], int] = {}
    class_of_row = np.empty(n_rows, dtype=np.intp)
    representatives: list[int] = []
    for row in range(n_rows):
        key = tuple(touching[row])
        idx = class_index_by_key.get(key)
        if idx is None:
            idx = len(class_index_by_key)
            class_index_by_key[key] = idx
            representatives.append(row)
        class_of_row[row] = idx

    n_classes = len(class_index_by_key)
    class_counts = np.bincount(class_of_row, minlength=n_classes).astype(np.intp)

    # For each constraint, the classes fully contained in its row set.
    members_sets: list[set[int]] = [set() for _ in constraints]
    for key, idx in class_index_by_key.items():
        for t in key:
            members_sets[t].add(idx)
    members = tuple(
        np.array(sorted(s), dtype=np.intp) for s in members_sets
    )

    return EquivalenceClasses(
        n_rows=n_rows,
        class_of_row=class_of_row,
        class_counts=class_counts,
        members=members,
        representative_rows=np.array(representatives, dtype=np.intp),
    )
