"""High-level constraint builders: the user-facing knowledge vocabulary.

The paper defines four kinds of knowledge a user can state (Sec. II-A), each
compiled down to sets of linear/quadratic primitives:

* **margin constraint** — mean and variance of every attribute (2d
  constraints);
* **cluster constraint** — mean and (co)variance statistics of a selected
  point cluster, encoded along the SVD axes of the cluster (2d constraints
  per cluster);
* **1-cluster constraint** — a cluster constraint on the entire dataset,
  i.e. the data modelled by its principal components (2d constraints);
* **2-D constraint** — mean and variance of a point set as shown in the
  current 2-D projection (4 constraints: one linear + one quadratic per
  spanning vector).

These builders are pure functions from observed data (and a row selection)
to lists of :class:`~repro.core.constraint.Constraint`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.constraint import Constraint, ConstraintKind
from repro.errors import ConstraintError, DataShapeError


def _as_rows(rows: Sequence[int] | np.ndarray, n: int) -> np.ndarray:
    """Validate and normalise a row-index selection against data size."""
    arr = np.asarray(rows, dtype=np.intp)
    if arr.ndim != 1 or arr.size == 0:
        raise ConstraintError("row selection must be a non-empty 1-D sequence")
    if np.any(arr < 0) or np.any(arr >= n):
        raise ConstraintError(f"row indices out of range for n={n}")
    return np.sort(arr)


def _check_data(data: np.ndarray) -> np.ndarray:
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise DataShapeError(f"expected a 2-D data matrix, got shape {arr.shape}")
    return arr


def margin_constraints(data: np.ndarray) -> list[Constraint]:
    """Mean + variance of each attribute: 2d constraints on all rows.

    Equivalent (paper, Sec. II-A) to transforming the data to zero mean and
    unit variance per column under the background model.
    """
    data = _check_data(data)
    n, d = data.shape
    all_rows = np.arange(n)
    constraints: list[Constraint] = []
    for j in range(d):
        w = np.zeros(d)
        w[j] = 1.0
        constraints.append(
            Constraint(ConstraintKind.LINEAR, all_rows, w, label=f"margin[{j}]/lin")
        )
        constraints.append(
            Constraint(ConstraintKind.QUADRATIC, all_rows, w, label=f"margin[{j}]/quad")
        )
    return constraints


def cluster_constraint(
    data: np.ndarray,
    rows: Sequence[int] | np.ndarray,
    label: str = "cluster",
) -> list[Constraint]:
    """Mean + (co)variance of a point cluster along its SVD axes.

    The cluster's centred submatrix is decomposed with an SVD and one linear
    plus one quadratic constraint is emitted per right-singular vector —
    2d constraints in total.  Constraining means and variances along the
    full orthonormal SVD basis pins down the entire mean vector and
    covariance matrix of the cluster (in expectation), which is exactly the
    "this set of points forms a cluster" statement of the paper.

    Parameters
    ----------
    data:
        Full data matrix (n x d).
    rows:
        Indices of the cluster members.
    label:
        Prefix used in the individual constraint labels.
    """
    data = _check_data(data)
    rows_arr = _as_rows(rows, data.shape[0])
    sub = data[rows_arr]
    centred = sub - np.mean(sub, axis=0, keepdims=True)
    # Right singular vectors of the centred cluster = principal axes.
    # full_matrices=True so that we always get a complete orthonormal basis
    # of R^d even when the cluster has fewer points than dimensions.
    _, _, vt = np.linalg.svd(centred, full_matrices=True)
    constraints: list[Constraint] = []
    for k, axis in enumerate(vt):
        constraints.append(
            Constraint(
                ConstraintKind.LINEAR, rows_arr, axis, label=f"{label}/svd[{k}]/lin"
            )
        )
        constraints.append(
            Constraint(
                ConstraintKind.QUADRATIC, rows_arr, axis, label=f"{label}/svd[{k}]/quad"
            )
        )
    return constraints


def one_cluster_constraint(data: np.ndarray) -> list[Constraint]:
    """Cluster constraint treating the full dataset as a single cluster.

    Models the data by its principal components, capturing correlations that
    margin constraints miss (paper, Sec. II-A).
    """
    data = _check_data(data)
    return cluster_constraint(data, np.arange(data.shape[0]), label="1-cluster")


def projection_constraints(
    data: np.ndarray,
    rows: Sequence[int] | np.ndarray,
    axes: np.ndarray,
    label: str = "2d",
) -> list[Constraint]:
    """2-D constraint: mean + variance of ``rows`` along two view axes.

    Encodes what the user can actually *see* in the current scatterplot:
    the first and second moments of the selected points along the two
    vectors spanning the projection — 4 constraints (Sec. II-A).

    Parameters
    ----------
    data:
        Full data matrix (n x d).
    rows:
        Indices of the selected points.
    axes:
        Array of shape (2, d): the two vectors spanning the current view.
    label:
        Prefix used in the individual constraint labels.
    """
    data = _check_data(data)
    rows_arr = _as_rows(rows, data.shape[0])
    axes = np.asarray(axes, dtype=np.float64)
    if axes.shape != (2, data.shape[1]):
        raise DataShapeError(
            f"expected axes of shape (2, {data.shape[1]}), got {axes.shape}"
        )
    constraints: list[Constraint] = []
    for k, axis in enumerate(axes):
        constraints.append(
            Constraint(
                ConstraintKind.LINEAR, rows_arr, axis, label=f"{label}/axis[{k}]/lin"
            )
        )
        constraints.append(
            Constraint(
                ConstraintKind.QUADRATIC, rows_arr, axis, label=f"{label}/axis[{k}]/quad"
            )
        )
    return constraints
