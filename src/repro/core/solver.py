"""Coordinate-ascent solver for the constrained MaxEnt problem (Prob. 1).

The solver sweeps over the constraints, solving each multiplier exactly in
turn (Gauss–Seidel style), until the paper's convergence criteria are met or
a wall-clock cut-off fires.  Convexity of the MaxEnt problem guarantees
eventual convergence to the global optimum; adversarial overlapping
constraints can make convergence slow (Fig. 5), which is exactly why the
cut-off exists in SIDER.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.constraint import Constraint, ConstraintKind
from repro.core.equivalence import EquivalenceClasses, build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.updates import linear_step, quadratic_step
from repro.errors import ConvergenceError, DataShapeError


@dataclass(frozen=True)
class SolverOptions:
    """Knobs of the optimisation loop.

    Attributes
    ----------
    lambda_tolerance:
        Converged when the maximal absolute multiplier change in a full
        sweep is at most this (paper: 1e-2).
    drift_tolerance_factor:
        Alternative criterion: converged when the maximal change of any
        class mean, or of the square root of any projected variance, is at
        most this factor times the standard deviation of the full data
        (paper: 1e-2).
    time_cutoff:
        Wall-clock budget in seconds; the sweep loop stops once exceeded
        even if not converged (SIDER default ~10 s).  ``None`` disables the
        cut-off (used by the convergence experiment of Fig. 5).
    max_sweeps:
        Hard upper bound on full sweeps, as a safety net against infinite
        loops when the cut-off is disabled.
    """

    lambda_tolerance: float = 1e-2
    drift_tolerance_factor: float = 1e-2
    time_cutoff: float | None = 10.0
    max_sweeps: int = 10_000


@dataclass
class SolverReport:
    """Outcome and diagnostics of one :func:`solve_maxent` call.

    Attributes
    ----------
    converged:
        Whether a convergence criterion was met (as opposed to the time
        cut-off or sweep cap firing).
    sweeps:
        Number of full sweeps performed.
    steps:
        Number of individual constraint updates performed.
    elapsed:
        Wall-clock seconds spent.
    max_lambda_change:
        Largest absolute multiplier change in the final sweep.
    init_seconds, optim_seconds:
        The paper's INIT / OPTIM phase split: INIT covers evaluating the
        observed constraint values and anchor means on the data (O(n) per
        constraint); OPTIM is the sweep loop proper, whose cost depends on
        equivalence classes and d but not on n.
    trace:
        Optional per-step history filled by the ``on_step`` callback
        mechanism; empty unless a callback stored something.
    """

    converged: bool
    sweeps: int
    steps: int
    elapsed: float
    max_lambda_change: float
    init_seconds: float = 0.0
    optim_seconds: float = 0.0
    trace: list[dict] = field(default_factory=list)


def solve_maxent(
    data: np.ndarray,
    constraints: list[Constraint],
    options: SolverOptions | None = None,
    params: ClassParameters | None = None,
    classes: EquivalenceClasses | None = None,
    on_step: Callable[[int, int, float, ClassParameters], None] | None = None,
) -> tuple[ClassParameters, EquivalenceClasses, SolverReport]:
    """Fit the MaxEnt background distribution to the given constraints.

    Parameters
    ----------
    data:
        Observed data matrix (n x d); used only to evaluate the observed
        constraint values ``v̂_t`` and anchor means ``m̂_I``.
    constraints:
        The active constraint set ``C``.
    options:
        Solver options; defaults to :class:`SolverOptions()`.
    params, classes:
        Optional warm start.  Both must come from a previous solve over a
        *prefix-compatible* constraint list; when the constraint set changed
        the equivalence classes are rebuilt and parameters restart from the
        prior (the multipliers of previous constraints are re-found in a few
        sweeps, which in practice is as fast as an incremental warm start
        and much simpler to reason about).
    on_step:
        Optional callback invoked after every constraint update with
        ``(sweep, constraint_index, lambda_change, params)``.  Used by the
        convergence experiment to record (Sigma_1)_11 per iteration.

    Returns
    -------
    (params, classes, report)

    Raises
    ------
    ConvergenceError
        If parameters become non-finite (indicates a genuine numerical
        breakdown rather than slow convergence).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {data.shape}")
    n, d = data.shape
    for c in constraints:
        if c.dim != d:
            raise DataShapeError(
                f"constraint vector dimension {c.dim} does not match data d={d}"
            )
        if c.rows[-1] >= n:
            raise DataShapeError(
                f"constraint references row {int(c.rows[-1])} but data has n={n}"
            )
    options = options or SolverOptions()

    if classes is None or params is None:
        classes = build_equivalence_classes(n, constraints)
        params = ClassParameters.prior(classes.n_classes, d)

    if not constraints:
        report = SolverReport(
            converged=True, sweeps=0, steps=0, elapsed=0.0, max_lambda_change=0.0
        )
        return params, classes, report

    # INIT phase: per-constraint observed targets and anchor projections
    # (these touch the data, so they cost O(n) per constraint; the sweep
    # loop below never reads the data again).
    init_start = time.perf_counter()
    targets = np.array([c.observed_value(data) for c in constraints])
    anchors = [
        c.anchor_mean(data) if c.kind is ConstraintKind.QUADRATIC else None
        for c in constraints
    ]
    anchor_projs = np.array(
        [
            float(anchors[t] @ constraints[t].w) if anchors[t] is not None else 0.0
            for t in range(len(constraints))
        ]
    )
    init_seconds = time.perf_counter() - init_start

    # Scale for the drift criterion: std of the full data (paper Sec. II-A.2).
    data_scale = float(np.std(data))
    if data_scale == 0.0:
        data_scale = 1.0
    drift_tol = options.drift_tolerance_factor * data_scale

    start = time.perf_counter()
    steps = 0
    sweeps = 0
    max_change = np.inf
    converged = False

    while sweeps < options.max_sweeps:
        sweeps += 1
        max_change = 0.0
        prev_means = params.mean.copy()
        prev_sigma_diag = np.sqrt(
            np.maximum(np.einsum("cii->ci", params.sigma), 0.0)
        )
        for t, constraint in enumerate(constraints):
            if constraint.kind is ConstraintKind.LINEAR:
                lam = linear_step(constraint, targets[t], params, classes, t)
            else:
                lam = quadratic_step(
                    constraint, targets[t], anchor_projs[t], params, classes, t
                )
            steps += 1
            max_change = max(max_change, abs(lam))
            if on_step is not None:
                on_step(sweeps, t, lam, params)
        if not params.is_finite():
            raise ConvergenceError("non-finite parameters during optimisation")

        if max_change <= options.lambda_tolerance:
            converged = True
            break
        mean_drift = float(np.max(np.abs(params.mean - prev_means), initial=0.0))
        sigma_diag = np.sqrt(np.maximum(np.einsum("cii->ci", params.sigma), 0.0))
        sd_drift = float(np.max(np.abs(sigma_diag - prev_sigma_diag), initial=0.0))
        if max(mean_drift, sd_drift) <= drift_tol:
            converged = True
            break
        if (
            options.time_cutoff is not None
            and time.perf_counter() - start > options.time_cutoff
        ):
            break

    elapsed = time.perf_counter() - start
    report = SolverReport(
        converged=converged,
        sweeps=sweeps,
        steps=steps,
        elapsed=elapsed,
        max_lambda_change=float(max_change),
        init_seconds=init_seconds,
        optim_seconds=elapsed,
    )
    return params, classes, report
