"""Coordinate-ascent solver for the constrained MaxEnt problem (Prob. 1).

The solver sweeps over the constraints, solving each multiplier exactly in
turn (Gauss–Seidel style), until the paper's convergence criteria are met or
a wall-clock cut-off fires.  Convexity of the MaxEnt problem guarantees
eventual convergence to the global optimum; adversarial overlapping
constraints can make convergence slow (Fig. 5), which is exactly why the
cut-off exists in SIDER.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs, perf
from repro.core.constraint import Constraint, ConstraintKind
from repro.core.equivalence import EquivalenceClasses, build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.updates import linear_step, quadratic_step
from repro.errors import ConvergenceError, DataShapeError
from repro.resilience.deadline import check_deadline


@dataclass(frozen=True)
class SolverOptions:
    """Knobs of the optimisation loop.

    Attributes
    ----------
    lambda_tolerance:
        Converged when the maximal absolute multiplier change in a full
        sweep is at most this (paper: 1e-2).
    drift_tolerance_factor:
        Alternative criterion: converged when the maximal change of any
        class mean, or of the square root of any projected variance, is at
        most this factor times the standard deviation of the full data
        (paper: 1e-2).
    time_cutoff:
        Wall-clock budget in seconds; the sweep loop stops once exceeded
        even if not converged (SIDER default ~10 s).  ``None`` disables the
        cut-off (used by the convergence experiment of Fig. 5).
    max_sweeps:
        Hard upper bound on full sweeps, as a safety net against infinite
        loops when the cut-off is disabled.
    """

    lambda_tolerance: float = 1e-2
    drift_tolerance_factor: float = 1e-2
    time_cutoff: float | None = 10.0
    max_sweeps: int = 10_000


@dataclass
class SolverReport:
    """Outcome and diagnostics of one :func:`solve_maxent` call.

    Attributes
    ----------
    converged:
        Whether a convergence criterion was met (as opposed to the time
        cut-off or sweep cap firing).
    sweeps:
        Number of full sweeps performed.
    steps:
        Number of individual constraint updates performed.
    elapsed:
        Total wall-clock seconds of the solve — always exactly
        ``init_seconds + optim_seconds``.
    max_lambda_change:
        Largest absolute multiplier change in the final sweep.
    init_seconds:
        The paper's INIT phase: evaluating the observed constraint values
        and anchor-mean projections on the data — the only part of the
        solve that touches the data, one O(n·d·T) batched matmul.
    optim_seconds:
        The paper's OPTIM phase: the sweep loop proper, including its
        convergence checks (which are part of the iteration, not overhead
        counted elsewhere).  Cost depends on equivalence classes and d
        but not on n.
    trace:
        Optional per-step history filled by the ``on_step`` callback
        mechanism; empty unless a callback stored something.
    """

    converged: bool
    sweeps: int
    steps: int
    elapsed: float
    max_lambda_change: float
    init_seconds: float = 0.0
    optim_seconds: float = 0.0
    trace: list[dict] = field(default_factory=list)


def solve_maxent(
    data: np.ndarray,
    constraints: list[Constraint],
    options: SolverOptions | None = None,
    params: ClassParameters | None = None,
    classes: EquivalenceClasses | None = None,
    on_step: Callable[[int, int, float, ClassParameters], None] | None = None,
) -> tuple[ClassParameters, EquivalenceClasses, SolverReport]:
    """Fit the MaxEnt background distribution to the given constraints.

    Parameters
    ----------
    data:
        Observed data matrix (n x d); used only to evaluate the observed
        constraint values ``v̂_t`` and anchor means ``m̂_I``.
    constraints:
        The active constraint set ``C``.
    options:
        Solver options; defaults to :class:`SolverOptions()`.
    params, classes:
        Optional warm start.  Both must come from a previous solve over a
        *prefix-compatible* constraint list; when the constraint set changed
        the equivalence classes are rebuilt and parameters restart from the
        prior (the multipliers of previous constraints are re-found in a few
        sweeps, which in practice is as fast as an incremental warm start
        and much simpler to reason about).
    on_step:
        Optional callback invoked after every constraint update with
        ``(sweep, constraint_index, lambda_change, params)``.  Used by the
        convergence experiment to record (Sigma_1)_11 per iteration.

    Returns
    -------
    (params, classes, report)

    Raises
    ------
    ConvergenceError
        If parameters become non-finite (indicates a genuine numerical
        breakdown rather than slow convergence).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {data.shape}")
    n, d = data.shape
    for c in constraints:
        if c.dim != d:
            raise DataShapeError(
                f"constraint vector dimension {c.dim} does not match data d={d}"
            )
        if c.rows[-1] >= n:
            raise DataShapeError(
                f"constraint references row {int(c.rows[-1])} but data has n={n}"
            )
    options = options or SolverOptions()

    if classes is None or params is None:
        classes = build_equivalence_classes(n, constraints)
        params = ClassParameters.prior(classes.n_classes, d)

    if not constraints:
        report = SolverReport(
            converged=True, sweeps=0, steps=0, elapsed=0.0, max_lambda_change=0.0
        )
        return params, classes, report

    # INIT phase: observed targets and anchor projections for the whole
    # constraint set in one shot (the only part of the solve that reads the
    # data; the sweep loop below never touches it again).
    init_start = time.perf_counter()
    with perf.timer("solver_init"):
        targets, anchor_projs = init_targets(data, constraints)
    init_seconds = time.perf_counter() - init_start

    # Scale for the drift criterion: std of the full data (paper Sec. II-A.2).
    data_scale = float(np.std(data))
    if data_scale == 0.0:
        data_scale = 1.0
    drift_tol = options.drift_tolerance_factor * data_scale

    start = time.perf_counter()
    steps = 0
    sweeps = 0
    max_change = np.inf
    converged = False

    # Per-constraint projected-stats cache: entry t holds the last
    # ``(means, variances, versions)`` computed for constraint t.  A sweep
    # recomputes stats only for constraints whose affected classes were
    # touched (version counter bumped) since the constraint's last visit —
    # converged constraints over quiet classes cost one version compare.
    stats_cache: list[tuple | None] = [None] * len(constraints)
    stats_hits = 0

    # The sigma diagonal is reused between the drift check of one sweep and
    # the reference point of the next, halving the per-sweep diagonal work.
    sigma_diag = np.sqrt(np.maximum(np.einsum("cii->ci", params.sigma), 0.0))

    with perf.timer("solver_optim"):
        while sweeps < options.max_sweeps:
            # Ambient per-request deadline (repro.resilience): a solve
            # running under an expired budget aborts between sweeps
            # instead of burning a worker thread; one thread-local read
            # when no deadline is set.
            check_deadline()
            sweeps += 1
            max_change = 0.0
            prev_means = params.mean.copy()
            prev_sigma_diag = sigma_diag
            for t, constraint in enumerate(constraints):
                affected = classes.members[t]
                cached = stats_cache[t]
                hit = cached is not None and np.array_equal(
                    params.versions[affected], cached[2]
                )
                if hit:
                    stats = (cached[0], cached[1])
                    stats_hits += 1
                else:
                    stats = params.projected_stats(affected, constraint.w)
                if constraint.kind is ConstraintKind.LINEAR:
                    lam = linear_step(
                        constraint, targets[t], params, classes, t, stats=stats
                    )
                else:
                    lam = quadratic_step(
                        constraint,
                        targets[t],
                        anchor_projs[t],
                        params,
                        classes,
                        t,
                        stats=stats,
                    )
                if lam != 0.0:
                    stats_cache[t] = None
                elif not hit:
                    stats_cache[t] = (
                        stats[0],
                        stats[1],
                        params.versions[affected].copy(),
                    )
                steps += 1
                max_change = max(max_change, abs(lam))
                if on_step is not None:
                    on_step(sweeps, t, lam, params)
            if not params.is_finite():
                raise ConvergenceError("non-finite parameters during optimisation")

            if max_change <= options.lambda_tolerance:
                converged = True
                break
            mean_drift = float(np.max(np.abs(params.mean - prev_means), initial=0.0))
            sigma_diag = np.sqrt(
                np.maximum(np.einsum("cii->ci", params.sigma), 0.0)
            )
            sd_drift = float(
                np.max(np.abs(sigma_diag - prev_sigma_diag), initial=0.0)
            )
            if max(mean_drift, sd_drift) <= drift_tol:
                converged = True
                break
            if (
                options.time_cutoff is not None
                and time.perf_counter() - start > options.time_cutoff
            ):
                break

    optim_seconds = time.perf_counter() - start
    perf.add("solver.solves")
    perf.add("solver.sweeps", sweeps)
    perf.add("solver.steps", steps)
    perf.add("solver.stats_cache_hits", stats_hits)
    obs.solve_completed(init_seconds + optim_seconds, sweeps)
    report = SolverReport(
        converged=converged,
        sweeps=sweeps,
        steps=steps,
        elapsed=init_seconds + optim_seconds,
        max_lambda_change=float(max_change),
        init_seconds=init_seconds,
        optim_seconds=optim_seconds,
    )
    return params, classes, report


def init_targets(
    data: np.ndarray, constraints: list[Constraint]
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot INIT: observed values and anchor projections, batched.

    Stacks all constraint vectors into ``W`` of shape (T, d) and computes
    every projection with a single BLAS matmul ``P = data @ W^T``, then
    reduces each constraint's (sorted) row segment with
    ``np.add.reduceat`` — sums for linear constraints, centred sums of
    squares for quadratic ones.  Replaces T Python-level O(n·d) passes
    (``observed_value`` + ``anchor_mean`` per constraint) with one O(n·d·T)
    kernel call plus O(Σ|I_t|) segment arithmetic.

    Returns
    -------
    (targets, anchor_projs):
        ``targets[t]`` is ``v̂_t`` (the observed constraint value) and
        ``anchor_projs[t]`` is ``w_t^T m̂_{I_t}`` for quadratic
        constraints, 0.0 for linear ones.
    """
    t_count = len(constraints)
    if t_count == 0:
        return np.zeros(0), np.zeros(0)
    w_stack = np.stack([c.w for c in constraints])           # (T, d)
    projections = data @ w_stack.T                           # (n, T)

    sizes = np.array([c.n_rows for c in constraints], dtype=np.intp)
    seg_ids = np.repeat(np.arange(t_count, dtype=np.intp), sizes)
    rows_concat = np.concatenate([c.rows for c in constraints])
    vals = projections[rows_concat, seg_ids]

    offsets = np.zeros(t_count, dtype=np.intp)
    np.cumsum(sizes[:-1], out=offsets[1:])
    sums = np.add.reduceat(vals, offsets)
    centres = sums / sizes
    centred = vals - centres[seg_ids]
    sq_sums = np.add.reduceat(centred * centred, offsets)

    is_quadratic = np.array(
        [c.kind is ConstraintKind.QUADRATIC for c in constraints]
    )
    targets = np.where(is_quadratic, sq_sums, sums)
    anchor_projs = np.where(is_quadratic, centres, 0.0)
    return targets, anchor_projs
