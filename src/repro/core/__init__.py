"""Core contribution: the MaxEnt background distribution and interaction loop."""

from repro.core.background import BackgroundModel
from repro.core.builders import (
    cluster_constraint,
    margin_constraints,
    one_cluster_constraint,
    projection_constraints,
)
from repro.core.constraint import Constraint, ConstraintKind
from repro.core.equivalence import EquivalenceClasses, build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.sampling import sample_background
from repro.core.session import ExplorationSession, IterationRecord
from repro.core.solver import SolverOptions, SolverReport, solve_maxent
from repro.core.whitening import whiten, whitening_transforms

__all__ = [
    "BackgroundModel",
    "Constraint",
    "ConstraintKind",
    "margin_constraints",
    "cluster_constraint",
    "one_cluster_constraint",
    "projection_constraints",
    "EquivalenceClasses",
    "build_equivalence_classes",
    "ClassParameters",
    "SolverOptions",
    "SolverReport",
    "solve_maxent",
    "whiten",
    "whitening_transforms",
    "sample_background",
    "ExplorationSession",
    "IterationRecord",
]
