"""`BackgroundModel`: the user-facing facade of the MaxEnt machinery.

This class owns a dataset, an evolving list of constraints, and the fitted
per-class Gaussian parameters.  It exposes exactly the operations the
SIDER loop needs:

* ``add_*_constraint`` — register knowledge (margin / cluster / 1-cluster /
  2-D constraints);
* ``fit`` — (re-)solve the MaxEnt problem;
* ``whiten`` — whitened data for projection pursuit;
* ``sample`` — ghost points for visualisation;
* ``row_mean`` / ``row_covariance`` — per-row dual parameters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core import builders
from repro.core.constraint import Constraint
from repro.core.equivalence import EquivalenceClasses, build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.sampling import sample_background
from repro.core.solver import SolverOptions, SolverReport, solve_maxent
from repro.core.whitening import whiten
from repro.errors import DataShapeError, NotFittedError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.incremental import WarmStartState


class BackgroundModel:
    """Maximum-Entropy background distribution over an observed dataset.

    Parameters
    ----------
    data:
        Observed data matrix (n x d).  A defensive copy is stored.
    standardize:
        If True, columns are shifted/scaled to zero mean and unit variance
        before anything else.  The spherical prior (Eq. 1) is only a
        sensible initial belief for data on that scale; SIDER use cases that
        skip this (Fig. 9a) show an immediate scale mismatch as the first
        "insight".
    solver_options:
        Default options used by :meth:`fit`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BackgroundModel
    >>> rng = np.random.default_rng(0)
    >>> data = rng.standard_normal((100, 3))
    >>> model = BackgroundModel(data)
    >>> model.fit()                          # no constraints: prior
    >>> np.allclose(model.whiten(), model.data)
    True
    """

    def __init__(
        self,
        data: np.ndarray,
        standardize: bool = False,
        solver_options: SolverOptions | None = None,
    ) -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
            raise DataShapeError(
                f"expected a non-empty 2-D data matrix, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise DataShapeError("data contains non-finite values")
        arr = arr.copy()
        self._column_shift = np.zeros(arr.shape[1])
        self._column_scale = np.ones(arr.shape[1])
        if standardize:
            self._column_shift = arr.mean(axis=0)
            scale = arr.std(axis=0)
            scale[scale == 0.0] = 1.0
            self._column_scale = scale
            arr = (arr - self._column_shift) / self._column_scale
        self._data = arr
        self._constraints: list[Constraint] = []
        self.solver_options = solver_options or SolverOptions()
        self._params: ClassParameters | None = None
        self._classes: EquivalenceClasses | None = None
        self._report: SolverReport | None = None
        self._dirty = True

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The (possibly standardised) data matrix the model works on."""
        return self._data

    @property
    def n_rows(self) -> int:
        """Number of data rows n."""
        return int(self._data.shape[0])

    @property
    def dim(self) -> int:
        """Data dimensionality d."""
        return int(self._data.shape[1])

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        """The registered constraints, in insertion order."""
        return tuple(self._constraints)

    @property
    def n_constraints(self) -> int:
        """Number of registered primitive constraints."""
        return len(self._constraints)

    @property
    def is_fitted(self) -> bool:
        """True when parameters are in sync with the constraint set."""
        return self._params is not None and not self._dirty

    @property
    def last_report(self) -> SolverReport | None:
        """Diagnostics of the most recent :meth:`fit` call (or None)."""
        return self._report

    # ------------------------------------------------------------------
    # Constraint registration
    # ------------------------------------------------------------------

    def add_constraints(self, constraints: Sequence[Constraint]) -> None:
        """Register pre-built primitive constraints."""
        for c in constraints:
            if c.dim != self.dim:
                raise DataShapeError(
                    f"constraint dimension {c.dim} != data dimension {self.dim}"
                )
            if int(c.rows[-1]) >= self.n_rows:
                raise DataShapeError(
                    f"constraint references row {int(c.rows[-1])}, "
                    f"but data has {self.n_rows} rows"
                )
            self._constraints.append(c)
        if constraints:
            self._dirty = True

    def remove_last_constraints(self, count: int) -> list[Constraint]:
        """Remove (and return) the ``count`` most recently added constraints.

        The undo primitive: feedback actions append constraint groups, so
        undoing one action means popping its group.  The model becomes
        dirty (refit required) whenever anything was removed.
        """
        if count < 0:
            raise DataShapeError("count must be non-negative")
        if count > len(self._constraints):
            raise DataShapeError(
                f"cannot remove {count} constraints; only "
                f"{len(self._constraints)} registered"
            )
        if count == 0:
            return []
        removed = self._constraints[-count:]
        del self._constraints[-count:]
        self._dirty = True
        return removed

    def add_margin_constraints(self) -> None:
        """Column means and variances: 2d constraints (see paper Sec. II-A)."""
        self.add_constraints(builders.margin_constraints(self._data))

    def add_cluster_constraint(
        self, rows: Sequence[int] | np.ndarray, label: str = "cluster"
    ) -> None:
        """Mean/covariance of a selected cluster along its SVD axes."""
        self.add_constraints(
            builders.cluster_constraint(self._data, rows, label=label)
        )

    def add_one_cluster_constraint(self) -> None:
        """Treat the full dataset as one cluster (overall covariance)."""
        self.add_constraints(builders.one_cluster_constraint(self._data))

    def add_projection_constraints(
        self,
        rows: Sequence[int] | np.ndarray,
        axes: np.ndarray,
        label: str = "2d",
    ) -> None:
        """Mean/variance of selected rows along the two current view axes."""
        self.add_constraints(
            builders.projection_constraints(self._data, rows, axes, label=label)
        )

    # ------------------------------------------------------------------
    # Fitting and derived quantities
    # ------------------------------------------------------------------

    def fit(self, options: SolverOptions | None = None) -> SolverReport:
        """(Re-)solve the MaxEnt problem for the current constraint set.

        Always re-solves from the prior: with exact coordinate steps the
        solver re-finds previous multipliers in a few sweeps, and a cold
        start keeps the state easy to reason about (and matches what the
        runtime experiment of Table II measures).
        """
        params, classes, report = solve_maxent(
            self._data, self._constraints, options=options or self.solver_options
        )
        self._params = params
        self._classes = classes
        self._report = report
        self._dirty = False
        return report

    def fit_warm(
        self,
        previous: "WarmStartState | None" = None,
        options: SolverOptions | None = None,
    ) -> tuple[SolverReport, "WarmStartState"]:
        """(Re-)solve, warm-starting from a previous solution when possible.

        The incremental path of :mod:`repro.core.incremental`: when
        ``previous`` was fitted for a prefix of the current constraint list
        (the append-only interactive pattern), the new solve is seeded from
        the previous optimum; otherwise a cold start happens silently.
        Returns ``(report, state)`` where ``state`` should be passed as
        ``previous`` to the next call.
        """
        from repro.core.incremental import incremental_solve

        params, classes, report, state = incremental_solve(
            self._data,
            self._constraints,
            previous=previous,
            options=options or self.solver_options,
        )
        self._params = params
        self._classes = classes
        self._report = report
        self._dirty = False
        return report, state

    def _require_fit(self) -> tuple[ClassParameters, EquivalenceClasses]:
        if self._params is None or self._classes is None:
            raise NotFittedError("call fit() before using the background model")
        if self._dirty:
            raise NotFittedError(
                "constraints changed since the last fit(); call fit() again"
            )
        return self._params, self._classes

    def whiten(self) -> np.ndarray:
        """Whitened data Y (Eq. 14) under the fitted model."""
        params, classes = self._require_fit()
        return whiten(self._data, params, classes)

    def sample(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """One background-distribution sample per data row (ghost points)."""
        params, classes = self._require_fit()
        return sample_background(params, classes, rng=rng)

    def row_mean(self, i: int) -> np.ndarray:
        """Dual mean ``m_i`` of row ``i`` under the fitted model."""
        params, classes = self._require_fit()
        return params.mean[classes.class_of_row[i]].copy()

    def row_covariance(self, i: int) -> np.ndarray:
        """Dual covariance ``Sigma_i`` of row ``i`` under the fitted model."""
        params, classes = self._require_fit()
        return params.sigma[classes.class_of_row[i]].copy()

    def means(self) -> np.ndarray:
        """All per-row means as an (n, d) array."""
        params, classes = self._require_fit()
        return params.mean[classes.class_of_row]

    def constraint_expectations(self) -> np.ndarray:
        """Model expectation of every registered constraint function.

        After a converged fit these match the observed values
        (:meth:`constraint_targets`) within solver tolerance — the defining
        property of the background distribution (Eq. 6).
        """
        params, classes = self._require_fit()
        values = np.empty(len(self._constraints))
        for t, c in enumerate(self._constraints):
            affected = classes.members[t]
            counts = classes.class_counts[affected].astype(np.float64)
            means, variances = params.projected_stats(affected, c.w)
            if c.kind.value == "lin":
                values[t] = float(np.dot(counts, means))
            else:
                delta = float(c.anchor_mean(self._data) @ c.w)
                values[t] = float(
                    np.dot(counts, variances + (means - delta) ** 2)
                )
        return values

    def constraint_targets(self) -> np.ndarray:
        """Observed value ``v̂_t`` of every registered constraint."""
        return np.array([c.observed_value(self._data) for c in self._constraints])

    def knowledge_nats(self) -> float:
        """Accumulated knowledge: KL(p || prior) of the fitted model in nats.

        The negated MaxEnt objective (Eq. 5).  Zero with no constraints,
        monotone non-decreasing as constraints are added (more constraints
        can only move the distribution further from the prior).
        """
        from repro.eval.information import background_kl_from_prior

        params, classes = self._require_fit()
        return background_kl_from_prior(params, classes)

    def row_surprise(self) -> np.ndarray:
        """Per-row negative log density under the fitted background.

        The principled version of the ghost-displacement visual: large
        values mark rows the current belief state considers unlikely.
        """
        from repro.eval.information import row_negative_log_density

        params, classes = self._require_fit()
        return row_negative_log_density(self._data, params, classes)

    def equivalence_summary(self) -> dict:
        """Small diagnostic summary of the row partition (for logs/tests)."""
        if self._classes is None:
            classes = build_equivalence_classes(self.n_rows, self._constraints)
        else:
            classes = self._classes
        return {
            "n_rows": classes.n_rows,
            "n_classes": classes.n_classes,
            "largest_class": int(classes.class_counts.max()),
        }
