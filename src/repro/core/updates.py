"""Coordinate-ascent update rules for the lambda multipliers.

One optimisation step picks a constraint ``t`` and solves for the change in
its multiplier that makes the model expectation match the observed value
(Sec. II-A.1).  For a linear constraint the solution is closed-form (Eq. 9);
for a quadratic constraint it is the root of a monotone 1-D function, which
we derive here in a numerically convenient form (equivalent to Eq. 10).

Derivation of the quadratic lambda equation
-------------------------------------------
Write, per affected class c (all quantities *before* the update):

    s_c = w^T Sigma_c w        (projected variance)
    e_c = w^T m_c              (projected mean)
    delta = w^T m̂_I            (projected observed anchor mean)

Applying the natural update ``Sigma^-1 += lam w w^T``,
``theta1 += lam*delta*w`` and pushing through Sherman–Morrison gives

    w^T Sigma_c(lam) w = s_c / (1 + lam s_c)
    w^T m_c(lam)       = (e_c + lam*delta*s_c) / (1 + lam s_c)

so the constraint expectation

    v(lam) = sum_c n_c * [ w^T Sigma_c(lam) w + (w^T m_c(lam) - delta)^2 ]
           = sum_c n_c * [ s_c/(1+lam s_c) + (e_c-delta)^2/(1+lam s_c)^2 ]

(where ``n_c`` is the class size) is strictly decreasing in lam on
``lam > -1/max_c s_c``, diverges at the lower end and decays to the constant
contribution of zero-variance classes as lam -> inf.  ``v(lam) = v̂`` is
therefore solvable by bracketed Brent iteration whenever
``v̂`` lies strictly between those limits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.constraint import Constraint
from repro.core.equivalence import EquivalenceClasses
from repro.core.parameters import ClassParameters
from repro.errors import RootFindError
from repro.linalg import find_monotone_root

#: Relative margin keeping the root search strictly inside the open domain.
_DOMAIN_MARGIN = 1e-12

#: Targets closer to the lam->inf asymptote than this (relatively) are
#: treated as unreachable; the step is skipped instead of chasing a root at
#: lam = inf.  Mirrors the paper's observation that singular optima are
#: approached only in the limit (Fig. 5, Case B).
_ASYMPTOTE_MARGIN = 1e-10


def linear_step(
    constraint: Constraint,
    target: float,
    params: ClassParameters,
    classes: EquivalenceClasses,
    t: int,
    stats: tuple | None = None,
) -> float:
    """Solve and apply the exact multiplier change for a linear constraint.

    Closed form (Eq. 9): ``lam = (v̂ - v) / sum_{i in I} w^T Sigma_i w``.

    Parameters
    ----------
    stats:
        Optional precomputed ``(means, variances)`` pair for the affected
        classes (the solver's per-constraint stats cache); computed here
        when absent.

    Returns
    -------
    float
        The applied multiplier change (0.0 if the constraint was already
        satisfied or is degenerate with zero projected variance).
    """
    affected = classes.members[t]
    counts = classes.class_counts[affected].astype(np.float64)
    w = constraint.w
    means, variances = stats or params.projected_stats(affected, w)
    current = float(np.dot(counts, means))
    denom = float(np.dot(counts, variances))
    if denom <= 0.0:
        # Zero variance along w for every affected row: the mean along w is
        # pinned; no finite lambda moves it.
        return 0.0
    lam = (target - current) / denom
    if lam != 0.0:
        params.apply_linear_update(affected, w, lam)
    return lam


def quadratic_step(
    constraint: Constraint,
    target: float,
    anchor_projection: float,
    params: ClassParameters,
    classes: EquivalenceClasses,
    t: int,
    stats: tuple | None = None,
) -> float:
    """Solve and apply the multiplier change for a quadratic constraint.

    Parameters
    ----------
    constraint:
        The quadratic constraint being updated.
    target:
        Observed value ``v̂_t`` of the constraint function.
    anchor_projection:
        ``delta = w^T m̂_I`` — projection of the observed anchor mean.
    params, classes, t:
        Parameter store, equivalence classes and the constraint's index.
    stats:
        Optional precomputed ``(means, variances)`` pair for the affected
        classes (the solver's per-constraint stats cache); computed here
        when absent.

    Returns
    -------
    float
        The applied multiplier change (0.0 when no finite root exists, e.g.
        the model variance along ``w`` is already exactly zero).
    """
    affected = classes.members[t]
    counts = classes.class_counts[affected].astype(np.float64)
    w = constraint.w
    means, variances = stats or params.projected_stats(affected, w)
    offsets_sq = (means - anchor_projection) ** 2

    s_max = float(np.max(variances))
    if s_max <= 0.0:
        # All affected classes already have zero variance along w; the
        # expectation is a constant and cannot be moved.
        return 0.0

    # v(lam) with the current parameters; see module docstring.
    def expectation(lam: float) -> float:
        denom = 1.0 + lam * variances
        return float(
            np.dot(counts, variances / denom + offsets_sq / denom**2)
        )

    # Asymptote as lam -> inf: only zero-variance classes keep contributing.
    zero_var = variances <= 0.0
    asymptote = float(np.dot(counts[zero_var], offsets_sq[zero_var]))
    if target <= asymptote + _ASYMPTOTE_MARGIN * max(asymptote, 1.0):
        # Target at or below the reachable infimum: push variance down hard
        # but finitely.  Take a large fixed step; subsequent sweeps continue
        # the descent, reproducing the 1/tau convergence of Fig. 5 (Case B).
        lam = 1.0 / s_max
        params.apply_quadratic_update(affected, w, lam, anchor_projection)
        return lam

    lower = -1.0 / s_max
    lower = lower * (1.0 - _DOMAIN_MARGIN) + _DOMAIN_MARGIN * 0.0
    current = expectation(0.0)
    if current == target:
        return 0.0

    def phi(lam: float) -> float:
        return expectation(lam) - target

    try:
        lam = find_monotone_root(
            phi,
            lower=lower,
            upper=math.inf,
            start=0.0,
            initial_step=max(1.0 / s_max, 1e-6),
        )
    except RootFindError:
        # Should not happen given the bracketed domain, but never let a
        # single constraint step kill an interactive session: skip it.
        return 0.0
    if lam != 0.0:
        params.apply_quadratic_update(affected, w, lam, anchor_projection)
    return lam
