"""Pre-vectorization reference implementations of the solver kernels.

These are the per-class / per-constraint Python loops the batched NumPy
kernels replaced, kept verbatim so that

* property tests can assert the vectorized kernels match them to
  ~machine precision across random shapes, singular covariances, and
  overlapping constraint sets, and
* ``repro bench`` can measure the vectorized/loop speedup on the exact
  code that used to run in production (the numbers committed to
  ``benchmarks/baselines.json`` and ``BENCH_core_solver.json``).

Nothing here is called by the production pipeline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.constraint import Constraint, ConstraintKind
from repro.core.equivalence import EquivalenceClasses
from repro.core.parameters import ClassParameters
from repro.core.updates import _ASYMPTOTE_MARGIN, _DOMAIN_MARGIN
from repro.errors import RootFindError
from repro.linalg import (
    find_monotone_root,
    inverse_sqrt_psd,
    sqrt_psd,
    woodbury_rank1_inverse,
)


def reference_whitening_transforms(params: ClassParameters) -> np.ndarray:
    """Loop form of :func:`repro.core.whitening.whitening_transforms`."""
    c_count, d = params.n_classes, params.dim
    transforms = np.empty((c_count, d, d))
    for c in range(c_count):
        transforms[c] = inverse_sqrt_psd(params.sigma[c])
    return transforms


def reference_whiten(
    data: np.ndarray,
    params: ClassParameters,
    classes: EquivalenceClasses,
) -> np.ndarray:
    """Loop form of :func:`repro.core.whitening.whiten` (per-class
    ``flatnonzero`` gather, one matmul per class)."""
    data = np.asarray(data, dtype=np.float64)
    transforms = reference_whitening_transforms(params)
    out = np.empty_like(data)
    for c in range(params.n_classes):
        rows = np.flatnonzero(classes.class_of_row == c)
        if rows.size == 0:
            continue
        centred = data[rows] - params.mean[c]
        out[rows] = centred @ transforms[c].T
    return out


def reference_sample_background(
    params: ClassParameters,
    classes: EquivalenceClasses,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Loop form of :func:`repro.core.sampling.sample_background`.

    Draws the ``(n, d)`` noise block first, exactly like the vectorized
    version, so both produce identical output for the same seed.
    """
    rng = rng or np.random.default_rng()
    n, d = classes.n_rows, params.dim
    out = np.empty((n, d))
    noise = rng.standard_normal((n, d))
    for c in range(params.n_classes):
        rows = np.flatnonzero(classes.class_of_row == c)
        if rows.size == 0:
            continue
        root = sqrt_psd(params.sigma[c])
        out[rows] = params.mean[c] + noise[rows] @ root.T
    return out


def reference_projected_stats(
    params: ClassParameters, classes: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Loop-era einsum form of :meth:`ClassParameters.projected_stats`."""
    means = params.mean[classes] @ w
    variances = np.einsum(
        "ci,cij,cj->c",
        np.broadcast_to(w, (classes.size, w.size)),
        params.sigma[classes],
        np.broadcast_to(w, (classes.size, w.size)),
    )
    return means, np.maximum(variances, 0.0)


def reference_apply_quadratic_update(
    params: ClassParameters,
    classes: np.ndarray,
    w: np.ndarray,
    lam: float,
    delta: float,
) -> None:
    """Per-class Woodbury loop form of
    :meth:`ClassParameters.apply_quadratic_update` (mutates ``params``)."""
    params.theta1[classes] += (lam * delta) * w
    for c in classes:
        params.sigma[c] = woodbury_rank1_inverse(params.sigma[c], w, lam)
    params.mean[classes] = np.einsum(
        "cij,cj->ci", params.sigma[classes], params.theta1[classes]
    )
    params.bump_versions(classes)


def reference_init_targets(
    data: np.ndarray, constraints: list[Constraint]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-constraint INIT loop: T separate O(n·d) passes over the data.

    Returns ``(targets, anchor_projs)`` exactly as the solver's INIT
    phase used to compute them — ``constraint.observed_value`` plus the
    full ``anchor_mean`` vector projected onto ``w``.
    """
    targets = np.array([c.observed_value(data) for c in constraints])
    anchors = [
        c.anchor_mean(data) if c.kind is ConstraintKind.QUADRATIC else None
        for c in constraints
    ]
    anchor_projs = np.array(
        [
            float(anchors[t] @ constraints[t].w) if anchors[t] is not None else 0.0
            for t in range(len(constraints))
        ]
    )
    if not constraints:
        targets = targets.reshape(0)
        anchor_projs = anchor_projs.reshape(0)
    return targets, anchor_projs


def reference_linear_step(
    constraint: Constraint,
    target: float,
    params: ClassParameters,
    classes: EquivalenceClasses,
    t: int,
) -> float:
    """Loop-era linear coordinate step (reference stats, no cache)."""
    affected = classes.members[t]
    counts = classes.class_counts[affected].astype(np.float64)
    w = constraint.w
    means, variances = reference_projected_stats(params, affected, w)
    current = float(np.dot(counts, means))
    denom = float(np.dot(counts, variances))
    if denom <= 0.0:
        return 0.0
    lam = (target - current) / denom
    if lam != 0.0:
        params.theta1[affected] += lam * w
        params.mean[affected] = np.einsum(
            "cij,cj->ci", params.sigma[affected], params.theta1[affected]
        )
        params.bump_versions(affected)
    return lam


def reference_quadratic_step(
    constraint: Constraint,
    target: float,
    anchor_projection: float,
    params: ClassParameters,
    classes: EquivalenceClasses,
    t: int,
) -> float:
    """Loop-era quadratic coordinate step (per-class Woodbury updates)."""
    affected = classes.members[t]
    counts = classes.class_counts[affected].astype(np.float64)
    w = constraint.w
    means, variances = reference_projected_stats(params, affected, w)
    offsets_sq = (means - anchor_projection) ** 2

    s_max = float(np.max(variances))
    if s_max <= 0.0:
        return 0.0

    def expectation(lam: float) -> float:
        denom = 1.0 + lam * variances
        return float(np.dot(counts, variances / denom + offsets_sq / denom**2))

    zero_var = variances <= 0.0
    asymptote = float(np.dot(counts[zero_var], offsets_sq[zero_var]))
    if target <= asymptote + _ASYMPTOTE_MARGIN * max(asymptote, 1.0):
        lam = 1.0 / s_max
        reference_apply_quadratic_update(
            params, affected, w, lam, anchor_projection
        )
        return lam

    lower = -1.0 / s_max
    lower = lower * (1.0 - _DOMAIN_MARGIN) + _DOMAIN_MARGIN * 0.0
    if expectation(0.0) == target:
        return 0.0

    def phi(lam: float) -> float:
        return expectation(lam) - target

    try:
        lam = find_monotone_root(
            phi,
            lower=lower,
            upper=math.inf,
            start=0.0,
            initial_step=max(1.0 / s_max, 1e-6),
        )
    except RootFindError:
        return 0.0
    if lam != 0.0:
        reference_apply_quadratic_update(
            params, affected, w, lam, anchor_projection
        )
    return lam


def reference_optim_sweeps(
    data: np.ndarray,
    constraints: list[Constraint],
    classes: EquivalenceClasses,
    n_sweeps: int,
    targets: np.ndarray | None = None,
    anchor_projs: np.ndarray | None = None,
) -> ClassParameters:
    """The pre-vectorization OPTIM loop, run for exactly ``n_sweeps``.

    Replicates the old sweep structure byte for byte: fresh prior
    parameters, two diagonal extractions per sweep for the drift
    bookkeeping, loop steps with no stats caching.  Targets can be passed
    in precomputed so the bench times pure OPTIM (as the solver's
    ``optim_seconds`` does on the vectorized side).  ``repro bench``
    times this against :func:`repro.core.solver.solve_maxent` driven for
    the same sweep count.
    """
    data = np.asarray(data, dtype=np.float64)
    params = ClassParameters.prior(classes.n_classes, data.shape[1])
    if targets is None or anchor_projs is None:
        targets, anchor_projs = reference_init_targets(data, constraints)
    for _ in range(n_sweeps):
        prev_means = params.mean.copy()
        prev_sigma_diag = np.sqrt(
            np.maximum(np.einsum("cii->ci", params.sigma), 0.0)
        )
        for t, constraint in enumerate(constraints):
            if constraint.kind is ConstraintKind.LINEAR:
                reference_linear_step(constraint, targets[t], params, classes, t)
            else:
                reference_quadratic_step(
                    constraint, targets[t], anchor_projs[t], params, classes, t
                )
        sigma_diag = np.sqrt(np.maximum(np.einsum("cii->ci", params.sigma), 0.0))
        # Drift values are computed (as the old loop did every sweep) but
        # never trigger an exit: the bench wants a fixed amount of work.
        float(np.max(np.abs(params.mean - prev_means), initial=0.0))
        float(np.max(np.abs(sigma_diag - prev_sigma_diag), initial=0.0))
    return params


def reference_build_equivalence_classes(
    n_rows: int, constraints: list[Constraint]
) -> EquivalenceClasses:
    """Pure-Python row-signature loop form of
    :func:`repro.core.equivalence.build_equivalence_classes`."""
    touching: list[list[int]] = [[] for _ in range(n_rows)]
    for t, constraint in enumerate(constraints):
        for row in constraint.rows:
            touching[int(row)].append(t)

    class_index_by_key: dict[tuple[int, ...], int] = {}
    class_of_row = np.empty(n_rows, dtype=np.intp)
    representatives: list[int] = []
    for row in range(n_rows):
        key = tuple(touching[row])
        idx = class_index_by_key.get(key)
        if idx is None:
            idx = len(class_index_by_key)
            class_index_by_key[key] = idx
            representatives.append(row)
        class_of_row[row] = idx

    n_classes = len(class_index_by_key)
    class_counts = np.bincount(class_of_row, minlength=n_classes).astype(np.intp)

    members_sets: list[set[int]] = [set() for _ in constraints]
    for key, idx in class_index_by_key.items():
        for t in key:
            members_sets[t].add(idx)
    members = tuple(np.array(sorted(s), dtype=np.intp) for s in members_sets)

    return EquivalenceClasses(
        n_rows=n_rows,
        class_of_row=class_of_row,
        class_counts=class_counts,
        members=members,
        representative_rows=np.array(representatives, dtype=np.intp),
    )
