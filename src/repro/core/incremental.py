"""Incremental (warm-start) refitting of the background distribution.

The interactive loop appends constraints monotonically: each round of
feedback extends the constraint list.  A cold restart re-finds every
previous multiplier; a *warm start* reuses the previous solution whenever
the new constraints do not change the equivalence-class structure of the
rows already constrained — and falls back to a cold start when they do.

This is an engineering extension beyond the paper (SIDER recomputes from
scratch inside its 10 s budget); the ablation benchmark
``bench_ablation_warmstart.py`` measures what it buys.

Warm-start rule
---------------
Appending constraints refines the row partition: every *new* class is a
subset of exactly one *old* class.  Seeding each new class with its parent
class's fitted ``(theta1, Sigma, mean)`` therefore starts the coordinate
ascent from the previous optimum restricted to the old constraints, which
is feasible and typically already close to the new optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constraint import Constraint
from repro.core.equivalence import EquivalenceClasses, build_equivalence_classes
from repro.core.parameters import ClassParameters
from repro.core.solver import SolverOptions, SolverReport, solve_maxent


@dataclass
class WarmStartState:
    """Previous solve state carried between incremental refits.

    Attributes
    ----------
    constraints:
        The constraint list the state was fitted for (a prefix of the next
        call's list).
    params, classes:
        The fitted parameters and the matching row partition.
    """

    constraints: list
    params: ClassParameters
    classes: EquivalenceClasses


def incremental_solve(
    data: np.ndarray,
    constraints: list[Constraint],
    previous: WarmStartState | None = None,
    options: SolverOptions | None = None,
) -> tuple[ClassParameters, EquivalenceClasses, SolverReport, WarmStartState]:
    """Solve the MaxEnt problem, warm-starting from a previous solution.

    Parameters
    ----------
    data:
        Observed data matrix.
    constraints:
        Full current constraint list.
    previous:
        State returned by an earlier call.  Used only when its constraint
        list is a *prefix* of ``constraints`` (the interactive append-only
        pattern); otherwise a cold start happens silently.
    options:
        Solver options.

    Returns
    -------
    (params, classes, report, state)
        ``state`` should be passed as ``previous`` to the next call.
    """
    data = np.asarray(data, dtype=np.float64)
    n, d = data.shape
    classes = build_equivalence_classes(n, constraints)

    params: ClassParameters | None = None
    if previous is not None and _is_prefix(previous.constraints, constraints):
        params = _seed_from_previous(previous, classes, d)

    fitted, classes, report = solve_maxent(
        data, constraints, options=options, params=params, classes=classes
    )
    state = WarmStartState(
        constraints=list(constraints), params=fitted, classes=classes
    )
    return fitted, classes, report, state


def _is_prefix(old: list, new: list) -> bool:
    """True when ``old`` is exactly the first ``len(old)`` items of ``new``."""
    if len(old) > len(new):
        return False
    return all(o is n for o, n in zip(old, new))


def _seed_from_previous(
    previous: WarmStartState, classes: EquivalenceClasses, dim: int
) -> ClassParameters:
    """Initialise new-class parameters from their old parent classes.

    Every new equivalence class is contained in one old class (appending
    constraints only refines the partition), so the parent lookup via any
    representative row is well defined.
    """
    params = ClassParameters.prior(classes.n_classes, dim)
    for c in range(classes.n_classes):
        rep = int(classes.representative_rows[c])
        parent = int(previous.classes.class_of_row[rep])
        params.theta1[c] = previous.params.theta1[parent]
        params.sigma[c] = previous.params.sigma[parent]
        params.mean[c] = previous.params.mean[parent]
    return params
