"""Sampling from the fitted background distribution.

SIDER displays a sample of the background distribution as gray "ghost"
points, one per data row, with a segment connecting each data point to its
ghost — a visual proxy for how far the user's belief state sits from the
data in the current projection.  Because rows in the same equivalence class
share ``(m, Sigma)``, one Cholesky-like factor per class suffices.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.core.equivalence import EquivalenceClasses
from repro.core.grouping import apply_by_class
from repro.core.parameters import ClassParameters
from repro.linalg import sqrt_psd_batched, symmetric_eig_batched


def sample_background(
    params: ClassParameters,
    classes: EquivalenceClasses,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw one sample row per data row from the background distribution.

    Parameters
    ----------
    params:
        Fitted per-class parameters.
    classes:
        The matching equivalence-class partition.
    rng:
        Source of randomness; defaults to a fresh default generator.

    Returns
    -------
    numpy.ndarray
        Array of shape (n, d): row i is a draw from ``N(m_i, Sigma_i)``.

    Notes
    -----
    The symmetric PSD square root is used instead of Cholesky because fitted
    covariances can be exactly singular (pinned directions), where Cholesky
    fails but the PSD root degrades gracefully to sampling inside the
    supported subspace.
    """
    rng = rng or np.random.default_rng()
    with perf.timer("sample_background"):
        n, d = classes.n_rows, params.dim
        noise = rng.standard_normal((n, d))
        # Version-keyed memo: repeated ghost-point draws between fits pay
        # for the per-class PSD roots once, and the eigendecomposition is
        # shared with the whitening transforms of the same state.
        eig = params.cached_kernel(
            "symmetric_eig", lambda: symmetric_eig_batched(params.sigma)
        )
        roots = params.cached_kernel(
            "sqrt_psd", lambda: sqrt_psd_batched(params.sigma, eig=eig)
        )
        scaled = apply_by_class(noise, classes, roots)
        return params.mean[classes.class_of_row] + scaled
