"""Sampling from the fitted background distribution.

SIDER displays a sample of the background distribution as gray "ghost"
points, one per data row, with a segment connecting each data point to its
ghost — a visual proxy for how far the user's belief state sits from the
data in the current projection.  Because rows in the same equivalence class
share ``(m, Sigma)``, one Cholesky-like factor per class suffices.
"""

from __future__ import annotations

import numpy as np

from repro.core.equivalence import EquivalenceClasses
from repro.core.parameters import ClassParameters
from repro.linalg import sqrt_psd


def sample_background(
    params: ClassParameters,
    classes: EquivalenceClasses,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw one sample row per data row from the background distribution.

    Parameters
    ----------
    params:
        Fitted per-class parameters.
    classes:
        The matching equivalence-class partition.
    rng:
        Source of randomness; defaults to a fresh default generator.

    Returns
    -------
    numpy.ndarray
        Array of shape (n, d): row i is a draw from ``N(m_i, Sigma_i)``.

    Notes
    -----
    The symmetric PSD square root is used instead of Cholesky because fitted
    covariances can be exactly singular (pinned directions), where Cholesky
    fails but the PSD root degrades gracefully to sampling inside the
    supported subspace.
    """
    rng = rng or np.random.default_rng()
    n, d = classes.n_rows, params.dim
    out = np.empty((n, d))
    noise = rng.standard_normal((n, d))
    for c in range(params.n_classes):
        rows = np.flatnonzero(classes.class_of_row == c)
        if rows.size == 0:
            continue
        root = sqrt_psd(params.sigma[c])
        out[rows] = params.mean[c] + noise[rows] @ root.T
    return out
