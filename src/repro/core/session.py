"""`ExplorationSession`: the full interactive loop of Fig. 1, headless.

The session glues together the background model, whitening, projection
pursuit and the constraint vocabulary into exactly the cycle the paper's
overview figure describes:

1. (re)fit the background distribution,
2. whiten the data against it,
3. compute the most informative 2-D view (PCA or ICA objective),
4. accept user knowledge (cluster / 2-D constraints on selected points),
5. repeat until the view scores are negligible.

Driving this class programmatically is the scripted analogue of a user
driving the SIDER web UI.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.background import BackgroundModel
from repro.core.solver import SolverOptions, SolverReport
from repro.feedback import (
    ClusterFeedback,
    CovarianceFeedback,
    Feedback,
    MarginFeedback,
    ViewSelectionFeedback,
)
from repro.projection import registry
from repro.projection.view import Projection2D, most_informative_view


@dataclass
class IterationRecord:
    """What happened in one loop iteration (for history/reporting).

    Attributes
    ----------
    index:
        Iteration number, starting at 0.
    view:
        The projection shown to the (virtual) user.
    solver_report:
        Diagnostics of the fit that preceded the view.
    constraints_added:
        Labels of the constraint groups added *after* seeing this view.
    """

    index: int
    view: Projection2D
    solver_report: SolverReport
    constraints_added: list[str] = field(default_factory=list)


class ExplorationSession:
    """Scripted interactive exploration of a dataset.

    Parameters
    ----------
    data:
        Observed data matrix (n x d).
    objective:
        Default view objective — any name registered with
        :mod:`repro.projection.registry` (built-ins: ``"pca"``, ``"ica"``,
        ``"kurtosis"``, ``"axis"``).
    standardize:
        Standardise columns before exploring (recommended for raw-scale
        data; see :class:`~repro.core.background.BackgroundModel`).
    solver_options:
        Optimisation options for every refit.
    seed:
        Seed for FastICA initialisation and background sampling, making the
        whole session reproducible.
    warm_start:
        Opt-in: seed each refit from the previous solution via
        :mod:`repro.core.incremental` instead of cold-starting.  The
        interactive loop appends constraints monotonically, which is
        exactly the workload warm starts pay off on (long autonomous
        runs); undo falls back to a cold start automatically.  Default
        off to keep the paper-faithful cold-restart semantics.

    Examples
    --------
    >>> from repro.datasets import three_d_clusters
    >>> bundle = three_d_clusters(seed=0)
    >>> session = ExplorationSession(bundle.data, objective="pca")
    >>> view = session.current_view()
    >>> selection = session.select_within(view, corner="auto")   # doctest: +SKIP
    """

    def __init__(
        self,
        data: np.ndarray,
        objective: str = "pca",
        standardize: bool = False,
        solver_options: SolverOptions | None = None,
        seed: int | None = 0,
        warm_start: bool = False,
    ) -> None:
        # Registry lookup both validates the name and raises a ValueError
        # subclass, keeping the legacy contract for unknown objectives.
        self.objective = registry.get(objective).name
        self.model = BackgroundModel(
            data, standardize=standardize, solver_options=solver_options
        )
        self._rng = np.random.default_rng(seed)
        self._history: list[IterationRecord] = []
        self._current_view: Projection2D | None = None
        # Undo stack: (label, number of primitive constraints) per feedback
        # action, newest last; _feedback_log holds the typed objects in the
        # same order (persisted by checkpoints).
        self._feedback_groups: list[tuple[str, int]] = []
        self._feedback_log: list[Feedback] = []
        self.warm_start = bool(warm_start)
        # Previous solve state for incremental refits; None until the
        # first warm fit (and after any history rewrite that breaks the
        # append-only prefix property, the solver cold-starts silently).
        self._warm_state = None

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    @property
    def history(self) -> tuple[IterationRecord, ...]:
        """All completed iterations, oldest first."""
        return tuple(self._history)

    @property
    def data(self) -> np.ndarray:
        """The (possibly standardised) data being explored."""
        return self.model.data

    @property
    def feedback_groups(self) -> tuple[tuple[str, int], ...]:
        """Undoable feedback actions as ``(label, n_constraints)``, oldest first."""
        return tuple(self._feedback_groups)

    def current_view(self, objective: str | None = None) -> Projection2D:
        """Fit (if needed) and return the most informative projection.

        Calling this repeatedly without adding knowledge returns the same
        view; after constraints are added — or when a different objective
        is requested — a fresh fit/view is computed.
        """
        wanted = objective or self.objective
        stale = (
            self._current_view is None
            or not self.model.is_fitted
            or self._current_view.objective != wanted
        )
        if stale:
            if self.model.is_fitted:
                report = self.model.last_report
            elif self.warm_start:
                report, self._warm_state = self.model.fit_warm(self._warm_state)
            else:
                report = self.model.fit()
            whitened = self.model.whiten()
            view = most_informative_view(whitened, objective=wanted, rng=self._rng)
            record = IterationRecord(
                index=len(self._history), view=view, solver_report=report
            )
            self._history.append(record)
            self._current_view = view
        return self._current_view

    # ------------------------------------------------------------------
    # Feedback: the single typed codepath
    # ------------------------------------------------------------------

    @property
    def feedback_log(self) -> tuple[Feedback, ...]:
        """Typed feedback objects applied so far, oldest first."""
        return tuple(self._feedback_log)

    def apply(self, feedback: Feedback) -> str:
        """Apply one feedback object; returns the label it was filed under.

        All user knowledge flows through here (and :meth:`apply_many`):
        constraint construction, auto-labelling, undo bookkeeping, and the
        typed feedback log that checkpoints persist.  The refit itself stays
        lazy — the next :meth:`current_view` performs it.
        """
        return self.apply_many([feedback])[0]

    def apply_many(self, batch: Sequence[Feedback]) -> list[str]:
        """Apply a batch of feedback objects with at most one solver fit.

        View-relative feedback in the batch is resolved against the view
        the user was looking at when the batch was posted — the cached
        current view, whatever objective ranked it (an objective-override
        view counts), falling back to a freshly computed default view
        when nothing has been shown yet.  The axes are captured *once*,
        before any item mutates the belief state, so a mixed batch costs
        at most one fit (and none when the view is already current).  The
        batch is atomic — if any item fails, the items already applied
        are rolled back before the error propagates.

        Returns the label each item was filed under, in batch order.
        """
        items = list(batch)
        for item in items:
            if not isinstance(item, Feedback):
                raise TypeError(
                    f"expected Feedback objects, got {type(item).__name__}"
                )
        view_axes: np.ndarray | None = None
        if any(isinstance(item, ViewSelectionFeedback) for item in items):
            if self._current_view is not None and self.model.is_fitted:
                # The view the user is actually looking at (possibly an
                # objective override), not a recomputed default view.
                view_axes = self._current_view.axes
            else:
                view_axes = self.current_view().axes
        labels: list[str] = []
        try:
            for item in items:
                labels.append(self._apply_one(item, view_axes))
        except Exception:
            for _ in labels:
                self.undo_last_feedback()
            raise
        return labels

    def _apply_one(self, item: Feedback, view_axes: np.ndarray | None) -> str:
        before = self.model.n_constraints
        if isinstance(item, ClusterFeedback):
            name = item.label or f"cluster[{before}]"
            self.model.add_cluster_constraint(item.rows, label=name)
        elif isinstance(item, ViewSelectionFeedback):
            assert view_axes is not None  # resolved by apply_many
            name = item.label or f"2d[{before}]"
            self.model.add_projection_constraints(
                item.rows, view_axes, label=name
            )
        elif isinstance(item, MarginFeedback):
            name = item.label or "margins"
            self.model.add_margin_constraints()
        elif isinstance(item, CovarianceFeedback):
            name = item.label or "1-cluster"
            self.model.add_one_cluster_constraint()
        else:
            raise TypeError(
                f"no constraint builder for feedback kind "
                f"{type(item).kind or type(item).__name__!r}"
            )
        self._feedback_log.append(item)
        self._note_feedback(name, self.model.n_constraints - before)
        return name

    # ------------------------------------------------------------------
    # Deprecated imperative wrappers (use apply()/apply_many())
    # ------------------------------------------------------------------

    def mark_cluster(self, rows: Sequence[int] | np.ndarray, label: str = "") -> None:
        """Deprecated: use ``apply(ClusterFeedback(rows=..., label=...))``."""
        self._warn_deprecated("mark_cluster", "ClusterFeedback")
        self.apply(ClusterFeedback(rows=rows, label=label))

    def mark_view_selection(
        self, rows: Sequence[int] | np.ndarray, label: str = ""
    ) -> None:
        """Deprecated: use ``apply(ViewSelectionFeedback(rows=..., label=...))``."""
        self._warn_deprecated("mark_view_selection", "ViewSelectionFeedback")
        self.apply(
            ViewSelectionFeedback(rows=rows, label=label)
        )

    def assume_margins(self) -> None:
        """Deprecated: use ``apply(MarginFeedback())``."""
        self._warn_deprecated("assume_margins", "MarginFeedback")
        self.apply(MarginFeedback())

    def assume_overall_covariance(self) -> None:
        """Deprecated: use ``apply(CovarianceFeedback())``."""
        self._warn_deprecated("assume_overall_covariance", "CovarianceFeedback")
        self.apply(CovarianceFeedback())

    @staticmethod
    def _warn_deprecated(method: str, feedback_cls: str) -> None:
        warnings.warn(
            f"ExplorationSession.{method}() is deprecated; apply a "
            f"repro.feedback.{feedback_cls} via session.apply() instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def undo_last_feedback(self) -> str | None:
        """Retract the most recent feedback action (all its constraints).

        Returns the undone action's label, or ``None`` when there is
        nothing to undo.  The belief state reverts on the next fit — the
        natural "that was not actually a cluster" escape hatch.
        """
        if not self._feedback_groups:
            return None
        label, count = self._feedback_groups.pop()
        if self._feedback_log:
            self._feedback_log.pop()
        self.model.remove_last_constraints(count)
        for record in reversed(self._history):
            if label in record.constraints_added:
                record.constraints_added.remove(label)
                break
        self._current_view = None
        return label

    def _note_feedback(self, label: str, n_constraints: int) -> None:
        if self._history:
            self._history[-1].constraints_added.append(label)
        self._feedback_groups.append((label, n_constraints))
        # Invalidate the cached view: the belief state changed.
        self._current_view = None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def whitened(self) -> np.ndarray:
        """Whitened data under the current belief state (fits if needed)."""
        self.current_view()
        return self.model.whiten()

    def background_sample(self) -> np.ndarray:
        """Ghost points: one background draw per data row (fits if needed)."""
        self.current_view()
        return self.model.sample(rng=self._rng)

    def is_explained(self, score_threshold: float = 5e-3) -> bool:
        """True when the current best view has negligible score.

        This is the natural stopping rule of the loop: no projection shows a
        notable difference between data and background any more.
        """
        view = self.current_view()
        return bool(np.max(np.abs(view.scores)) < score_threshold)

    def run_steps(self, markings: Sequence[Sequence[int]]) -> list[Projection2D]:
        """Scripted exploration: mark each given row set as a cluster in turn.

        Parameters
        ----------
        markings:
            A sequence of row-index collections; after each, the background
            is refit and the next view computed.

        Returns
        -------
        list[Projection2D]
            The view *after* each marking (length = len(markings)).
        """
        views: list[Projection2D] = []
        self.current_view()
        for rows in markings:
            self.apply(ClusterFeedback(rows=rows))
            views.append(self.current_view())
        return views
