"""Constraint primitives for the MaxEnt background distribution.

A constraint (Sec. II-A of the paper) is a triplet ``(kind, rows, w)``:

* ``kind`` — linear or quadratic,
* ``rows`` — the subset ``I ⊆ [n]`` of data rows it involves,
* ``w``    — a projection vector in R^d.

The linear constraint function is ``f_lin(X, I, w) = Σ_{i∈I} wᵀ x_i`` and the
quadratic one is ``f_quad(X, I, w) = Σ_{i∈I} (wᵀ(x_i − m̂_I))²`` where
``m̂_I`` is the *observed* mean of the rows in ``I`` (Eqs. 2–4).  The MaxEnt
problem (Prob. 1) finds the distribution closest to the spherical Gaussian
prior that preserves the observed values of all constraint functions in
expectation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConstraintError


class ConstraintKind(enum.Enum):
    """Whether a constraint fixes a first or a second moment."""

    LINEAR = "lin"
    QUADRATIC = "quad"


@dataclass(frozen=True)
class Constraint:
    """One linear or quadratic MaxEnt constraint.

    Attributes
    ----------
    kind:
        :class:`ConstraintKind` — linear (first moment along ``w``) or
        quadratic (second central moment along ``w``).
    rows:
        Sorted array of row indices ``I`` the constraint involves.
    w:
        Projection vector (length d).  Not required to be unit norm, but the
        builders in :mod:`repro.core.builders` always produce unit vectors.
    label:
        Optional human-readable provenance, e.g. ``"cluster[2]/svd[0]"``.
    """

    kind: ConstraintKind
    rows: np.ndarray
    w: np.ndarray
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        rows = np.asarray(self.rows, dtype=np.intp)
        if rows.ndim != 1 or rows.size == 0:
            raise ConstraintError("constraint row set must be a non-empty 1-D array")
        if np.unique(rows).size != rows.size:
            raise ConstraintError("constraint row set contains duplicate indices")
        if np.any(rows < 0):
            raise ConstraintError("constraint row indices must be non-negative")
        w = np.asarray(self.w, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ConstraintError("constraint vector w must be a non-empty 1-D array")
        if not np.all(np.isfinite(w)):
            raise ConstraintError("constraint vector w contains non-finite values")
        if float(np.linalg.norm(w)) == 0.0:
            raise ConstraintError("constraint vector w must be non-zero")
        # dataclass(frozen=True) blocks normal assignment; store the
        # normalised copies via object.__setattr__ (standard frozen idiom).
        object.__setattr__(self, "rows", np.sort(rows))
        object.__setattr__(self, "w", w)

    @property
    def dim(self) -> int:
        """Dimensionality of the space the constraint vector lives in."""
        return int(self.w.size)

    @property
    def n_rows(self) -> int:
        """Number of data rows the constraint involves."""
        return int(self.rows.size)

    def observed_value(self, data: np.ndarray) -> float:
        """Evaluate the constraint function on observed data (``v̂_t``).

        Parameters
        ----------
        data:
            The full data matrix (n x d); rows outside ``self.rows`` are
            ignored.
        """
        sub = data[self.rows]
        proj = sub @ self.w
        if self.kind is ConstraintKind.LINEAR:
            return float(np.sum(proj))
        centre = float(np.mean(proj))
        return float(np.sum((proj - centre) ** 2))

    def anchor_mean(self, data: np.ndarray) -> np.ndarray:
        """The observed row-mean ``m̂_I`` used to centre quadratic terms.

        Defined by Eq. 4.  It is a *constant* computed from the observed
        data, not a random variable — making it random would couple rows and
        break the row-factorised form of the background distribution.
        """
        return np.mean(data[self.rows], axis=0)

    def describe(self) -> str:
        """One-line description for logs and UI panels."""
        head = self.label or f"{self.kind.value} constraint"
        return f"{head}: |I|={self.n_rows}, d={self.dim}"
