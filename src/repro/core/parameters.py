"""Natural and dual Gaussian parameters per equivalence class.

The background distribution factorises over rows (Eq. 8):

    p(X | theta) = prod_i N(x_i | m_i, Sigma_i)

with natural parameters ``theta_i = (Sigma_i^-1 m_i, Sigma_i^-1)`` and dual
parameters ``mu_i = (m_i, Sigma_i)``.  Rows in the same equivalence class
share parameters, so only one copy per class is stored.

Both representations are kept in sync at every step: the natural side is
where constraint updates are additive, while expectations (and hence the
lambda equations) are evaluated on the dual side.  Keeping both avoids any
O(d^3) inversion in the hot loop — dual updates go through the Woodbury
rank-1 identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import DataShapeError
from repro.linalg import woodbury_rank1_inverse_batched


@dataclass
class ClassParameters:
    """Parameter store for all equivalence classes.

    Attributes
    ----------
    theta1:
        (C, d) array — natural location parameters ``Sigma^-1 m`` per class.
    sigma:
        (C, d, d) array — dual covariance matrices per class.
    mean:
        (C, d) array — dual means per class (always ``sigma @ theta1``).
    versions:
        (C,) int64 array — per-class update counter, bumped whenever a
        constraint step touches a class.  Lets the solver cache projected
        stats per constraint and recompute them only for classes modified
        since the constraint's last visit.

    Notes
    -----
    ``Sigma^-1`` itself (the natural precision) is never materialised: every
    quadratic update touches it only through the Woodbury identity applied to
    ``sigma``, and ``theta1`` is enough to recover the mean afterwards.
    """

    theta1: np.ndarray
    sigma: np.ndarray
    mean: np.ndarray
    versions: np.ndarray | None = None
    _kernel_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.versions is None:
            self.versions = np.zeros(self.theta1.shape[0], dtype=np.int64)

    @classmethod
    def prior(cls, n_classes: int, dim: int) -> "ClassParameters":
        """Spherical standard-normal prior ``(m, Sigma) = (0, I)`` (Eq. 1)."""
        if n_classes <= 0 or dim <= 0:
            raise DataShapeError(
                f"need positive n_classes and dim, got {n_classes}, {dim}"
            )
        theta1 = np.zeros((n_classes, dim))
        sigma = np.broadcast_to(np.eye(dim), (n_classes, dim, dim)).copy()
        mean = np.zeros((n_classes, dim))
        return cls(theta1=theta1, sigma=sigma, mean=mean)

    @property
    def n_classes(self) -> int:
        """Number of equivalence classes covered."""
        return int(self.theta1.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality d of the data space."""
        return int(self.theta1.shape[1])

    def apply_linear_update(
        self, classes: np.ndarray, w: np.ndarray, lam: float
    ) -> None:
        """Linear-constraint update: ``theta1 += lam * w`` for the classes.

        The covariance is untouched; means are refreshed from the natural
        side (``m = Sigma theta1``).
        """
        self.theta1[classes] += lam * w
        # einsum over the small class subset only.
        self.mean[classes] = np.einsum(
            "cij,cj->ci", self.sigma[classes], self.theta1[classes]
        )
        self.versions[classes] += 1

    def apply_quadratic_update(
        self, classes: np.ndarray, w: np.ndarray, lam: float, delta: float
    ) -> None:
        """Quadratic-constraint update with multiplier change ``lam``.

        Natural side:  ``Sigma^-1 += lam w w^T`` and ``theta1 += lam*delta*w``
        where ``delta = w^T m̂_I`` (the observed anchor mean projection).
        Dual side: one batched Woodbury rank-1 over the whole selected class
        stack (O(C d^2), no Python-level per-class loop), then
        ``m = Sigma theta1``.
        """
        self.theta1[classes] += (lam * delta) * w
        self.sigma[classes] = woodbury_rank1_inverse_batched(
            self.sigma[classes], w, lam
        )
        self.mean[classes] = np.einsum(
            "cij,cj->ci", self.sigma[classes], self.theta1[classes]
        )
        self.versions[classes] += 1

    def projected_stats(
        self, classes: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-class ``(w^T m, w^T Sigma w)`` for the given classes.

        These scalars fully determine the expectation of any linear or
        quadratic constraint function along ``w``.  The quadratic form is
        evaluated as ``(Sigma w) · w`` — two BLAS products instead of a
        three-operand einsum contraction.
        """
        means = self.mean[classes] @ w
        variances = (self.sigma[classes] @ w) @ w
        # Numerical floors: variance can dip epsilon-negative after many
        # rank-1 updates.
        return means, np.maximum(variances, 0.0)

    def bump_versions(self, classes: np.ndarray) -> None:
        """Mark the given classes as modified (invalidates cached stats).

        Call this after writing to ``sigma``/``mean``/``theta1`` directly
        (outside the ``apply_*`` methods) so version-keyed caches — the
        solver's projected-stats cache and :meth:`cached_kernel` — see the
        change.
        """
        self.versions[classes] += 1

    def cached_kernel(self, name: str, compute: Callable[[], np.ndarray]):
        """Per-parameter-state memo for derived kernels (whitening roots).

        Whitening transforms and sampling roots are pure functions of the
        sigma stack; views and ghost-point requests recompute them many
        times between fits.  The result of ``compute()`` is cached under
        ``name`` together with a snapshot of :attr:`versions` and reused
        until any class's counter moves (i.e. until the next constraint
        update).  Mutating the arrays directly without
        :meth:`bump_versions` bypasses the invalidation — the documented
        contract of all version-keyed caching here.
        """
        entry = self._kernel_cache.get(name)
        if entry is not None and np.array_equal(entry[0], self.versions):
            return entry[1]
        value = compute()
        self._kernel_cache[name] = (self.versions.copy(), value)
        return value

    def copy(self) -> "ClassParameters":
        """Deep copy (used by tests and by solver snapshots)."""
        return ClassParameters(
            theta1=self.theta1.copy(),
            sigma=self.sigma.copy(),
            mean=self.mean.copy(),
            versions=self.versions.copy(),
        )

    def is_finite(self) -> bool:
        """True if every stored parameter is finite."""
        return bool(
            np.all(np.isfinite(self.theta1))
            and np.all(np.isfinite(self.sigma))
            and np.all(np.isfinite(self.mean))
        )
