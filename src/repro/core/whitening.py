"""Per-row whitening with respect to the background distribution (Eq. 14).

Each row is mapped by the symmetric inverse square root of its class
covariance:

    y_i = U_i D_i^{1/2} U_i^T (x_i - m_i),   Sigma_i^{-1} = U_i D_i U_i^T

If the data follows the background distribution, the whitened data is a unit
spherical Gaussian — so any structure left in Y is exactly the structure the
user has not yet told the model about.  The symmetric (direction-preserving)
square root keeps whitened rows comparable across equivalence classes, which
is why the paper rotates back to the original orientation.

With no constraints the model is the spherical prior and whitening is the
identity, i.e. ``Y = X``.
"""

from __future__ import annotations

import numpy as np

from repro.core.equivalence import EquivalenceClasses
from repro.core.parameters import ClassParameters
from repro.errors import DataShapeError
from repro.linalg import inverse_sqrt_psd


def whiten(
    data: np.ndarray,
    params: ClassParameters,
    classes: EquivalenceClasses,
) -> np.ndarray:
    """Whiten the data matrix against the fitted background distribution.

    Parameters
    ----------
    data:
        Observed data (n x d).
    params:
        Fitted per-class parameters.
    classes:
        The equivalence-class partition matching ``params``.

    Returns
    -------
    numpy.ndarray
        Whitened matrix Y of the same shape as ``data``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {data.shape}")
    if data.shape[0] != classes.n_rows:
        raise DataShapeError(
            f"data has {data.shape[0]} rows but classes cover {classes.n_rows}"
        )
    if data.shape[1] != params.dim:
        raise DataShapeError(
            f"data dimension {data.shape[1]} != parameter dimension {params.dim}"
        )

    transforms = whitening_transforms(params)
    out = np.empty_like(data)
    for c in range(params.n_classes):
        rows = np.flatnonzero(classes.class_of_row == c)
        if rows.size == 0:
            continue
        centred = data[rows] - params.mean[c]
        out[rows] = centred @ transforms[c].T
    return out


def whitening_transforms(params: ClassParameters) -> np.ndarray:
    """The (C, d, d) stack of symmetric whitening matrices ``Sigma_c^{-1/2}``.

    Computed once per class (not per row) — another consequence of the
    equivalence-class sharing that keeps the pipeline independent of n.
    Near-singular covariances are regularised by eigenvalue clamping, which
    maps pinned directions to large-but-finite scalings.
    """
    c_count, d = params.n_classes, params.dim
    transforms = np.empty((c_count, d, d))
    for c in range(c_count):
        transforms[c] = inverse_sqrt_psd(params.sigma[c])
    return transforms
