"""Per-row whitening with respect to the background distribution (Eq. 14).

Each row is mapped by the symmetric inverse square root of its class
covariance:

    y_i = U_i D_i^{1/2} U_i^T (x_i - m_i),   Sigma_i^{-1} = U_i D_i U_i^T

If the data follows the background distribution, the whitened data is a unit
spherical Gaussian — so any structure left in Y is exactly the structure the
user has not yet told the model about.  The symmetric (direction-preserving)
square root keeps whitened rows comparable across equivalence classes, which
is why the paper rotates back to the original orientation.

With no constraints the model is the spherical prior and whitening is the
identity, i.e. ``Y = X``.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.core.equivalence import EquivalenceClasses
from repro.core.grouping import apply_by_class
from repro.core.parameters import ClassParameters
from repro.errors import DataShapeError
from repro.linalg import inverse_sqrt_psd_batched, symmetric_eig_batched


def whiten(
    data: np.ndarray,
    params: ClassParameters,
    classes: EquivalenceClasses,
) -> np.ndarray:
    """Whiten the data matrix against the fitted background distribution.

    Parameters
    ----------
    data:
        Observed data (n x d).
    params:
        Fitted per-class parameters.
    classes:
        The equivalence-class partition matching ``params``.

    Returns
    -------
    numpy.ndarray
        Whitened matrix Y of the same shape as ``data``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {data.shape}")
    if data.shape[0] != classes.n_rows:
        raise DataShapeError(
            f"data has {data.shape[0]} rows but classes cover {classes.n_rows}"
        )
    if data.shape[1] != params.dim:
        raise DataShapeError(
            f"data dimension {data.shape[1]} != parameter dimension {params.dim}"
        )

    with perf.timer("whiten"):
        transforms = whitening_transforms(params)
        centred = data - params.mean[classes.class_of_row]
        return apply_by_class(centred, classes, transforms)


def whitening_transforms(params: ClassParameters) -> np.ndarray:
    """The (C, d, d) stack of symmetric whitening matrices ``Sigma_c^{-1/2}``.

    Computed once per class (not per row) — another consequence of the
    equivalence-class sharing that keeps the pipeline independent of n —
    and for all classes at once through one batched ``eigh`` over the
    stacked sigma tensor.  The stack is memoised on the parameter object
    (version-counter keyed), so repeated whitening between fits — every
    view request — skips the decompositions entirely.  Near-singular
    covariances are regularised by eigenvalue clamping, which maps pinned
    directions to large-but-finite scalings.
    """
    with perf.timer("whitening_transforms"):
        # The eigendecomposition memo is shared with sampling's PSD roots:
        # one batched eigh per parameter state serves both kernels.
        eig = params.cached_kernel(
            "symmetric_eig", lambda: symmetric_eig_batched(params.sigma)
        )
        return params.cached_kernel(
            "inverse_sqrt_psd",
            lambda: inverse_sqrt_psd_batched(params.sigma, eig=eig),
        )
