"""Grouped application of per-class matrices to row blocks.

Whitening and sampling both need ``out[i] = values[i] @ M_{class(i)}^T``
for an ``(n, d)`` value matrix and a ``(C, d, d)`` stack of per-class
matrices.  The historical implementation scanned ``class_of_row == c``
once per class — O(n·C) index work before any arithmetic.  Here the rows
are grouped into contiguous class blocks using the partition's cached
``scatter_plan`` (one argsort per :class:`EquivalenceClasses` lifetime,
not per call), each class is one contiguous BLAS matmul, and the results
are scattered back with a single fancy-index assignment.

Materialising a gathered ``(n, d, d)`` stack would avoid the class loop
entirely but costs O(n·d²) memory (a gigabyte at n=8192, d=128), so the
contiguous-block form is the right trade: the remaining Python loop runs
C times and does nothing but dispatch matmuls.
"""

from __future__ import annotations

import numpy as np

from repro.core.equivalence import EquivalenceClasses


def apply_by_class(
    values: np.ndarray,
    classes: EquivalenceClasses,
    matrices: np.ndarray,
) -> np.ndarray:
    """Per-row matrix application ``out[i] = values[i] @ M_{class(i)}^T``.

    Parameters
    ----------
    values:
        (n, d) input rows, ordered like the partition's rows.
    classes:
        The row partition; supplies the cached (order, offsets) plan.
    matrices:
        (C, d, d) stack of per-class matrices, ``C == classes.n_classes``.

    Returns
    -------
    numpy.ndarray
        (n, d) output in original row order.
    """
    order, offsets = classes.scatter_plan
    blocks = values[order]
    for c in range(classes.n_classes):
        lo, hi = offsets[c], offsets[c + 1]
        if lo == hi:
            continue
        blocks[lo:hi] = blocks[lo:hi] @ matrices[c].T
    out = np.empty_like(values)
    out[order] = blocks
    return out
