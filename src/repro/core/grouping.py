"""Grouped application of per-class matrices to row blocks.

Whitening and sampling both need ``out[i] = values[i] @ M_{class(i)}^T``
for an ``(n, d)`` value matrix and a ``(C, d, d)`` stack of per-class
matrices.  The historical implementation scanned ``class_of_row == c``
once per class — O(n·C) index work before any arithmetic.  The rows are
grouped into contiguous class blocks using the partition's cached
``scatter_plan`` (one argsort per :class:`EquivalenceClasses` lifetime,
not per call); from there two strategies apply:

* **block-diagonal GEMM** (default): the class blocks are scattered into
  a zero-padded ``(C, B, d)`` tensor (``B`` = largest class) and the
  whole product is one stacked ``np.matmul`` against the ``(C, d, d)``
  matrix stack — a single batched BLAS dispatch, no Python-level loop at
  all.  Padding rows multiply to zero and are never read back.
* **per-class loop** (:func:`apply_by_class_loop`): one contiguous
  matmul per class.  Kept as the fallback for *ragged* partitions —
  when one class dominates (``C·B`` far above ``n``) the padded tensor
  would be mostly zeros and the batched GEMM would burn memory and
  flops on padding — and as the reference opponent the property tests
  and ``repro bench`` measure the GEMM path against.

Materialising a gathered ``(n, d, d)`` matrix stack would also avoid the
loop but costs O(n·d²) memory (a gigabyte at n=8192, d=128); the padded
form is O(C·B·d), which for the near-balanced partitions equivalence
classes produce stays within a small factor of the data itself.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.core.equivalence import EquivalenceClasses

#: The block-diagonal GEMM runs when the padded tensor ``C * B`` holds at
#: most this many times the real rows ``n``; beyond it (one huge class
#: plus many tiny ones) the loop wins on memory traffic.
_RAGGED_FACTOR = 4.0


def apply_by_class(
    values: np.ndarray,
    classes: EquivalenceClasses,
    matrices: np.ndarray,
) -> np.ndarray:
    """Per-row matrix application ``out[i] = values[i] @ M_{class(i)}^T``.

    Dispatches to the block-diagonal GEMM for (near-)balanced partitions
    and to :func:`apply_by_class_loop` for ragged ones; both produce
    identical output (property-tested to 1e-10, usually bit-equal).

    Parameters
    ----------
    values:
        (n, d) input rows, ordered like the partition's rows.
    classes:
        The row partition; supplies the cached (order, offsets) plan.
    matrices:
        (C, d, d) stack of per-class matrices, ``C == classes.n_classes``.

    Returns
    -------
    numpy.ndarray
        (n, d) output in original row order.
    """
    n = values.shape[0]
    c_count = classes.n_classes
    if n == 0 or c_count <= 1:
        # Nothing to group: a single class is already one contiguous GEMM.
        return apply_by_class_loop(values, classes, matrices)
    # Both plans are cached on the immutable partition (one argsort + one
    # O(n) index build per EquivalenceClasses lifetime, not per call).
    order, _ = classes.scatter_plan
    sorted_class, pos, largest = classes.padded_scatter_plan
    if c_count * largest > _RAGGED_FACTOR * n:
        perf.add("core.scatter_loop_fallbacks")
        return apply_by_class_loop(values, classes, matrices)

    with perf.timer("scatter_gemm"):
        # Scatter the contiguous class blocks into a (C, B, d) padded
        # tensor: sorted row j of class c lands at padded[c, j - start_c].
        padded = np.zeros((c_count, largest, values.shape[1]))
        padded[sorted_class, pos] = values[order]
        # One batched GEMM over the whole block diagonal.
        out_padded = np.matmul(padded, np.swapaxes(matrices, -1, -2))
        out = np.empty_like(values)
        out[order] = out_padded[sorted_class, pos]
        perf.add("core.scatter_gemm_calls")
        return out


def apply_by_class_loop(
    values: np.ndarray,
    classes: EquivalenceClasses,
    matrices: np.ndarray,
) -> np.ndarray:
    """Per-class loop form of :func:`apply_by_class` (one matmul per class).

    The pre-GEMM implementation, kept verbatim: production falls back to
    it for ragged partitions, and the parity tests / ``repro bench``
    projection suite use it as the reference opponent.
    """
    order, offsets = classes.scatter_plan
    blocks = values[order]
    for c in range(classes.n_classes):
        lo, hi = offsets[c], offsets[c + 1]
        if lo == hi:
            continue
        blocks[lo:hi] = blocks[lo:hi] @ matrices[c].T
    out = np.empty_like(values)
    out[order] = blocks
    return out
