"""Fig. 2 reproduction: the 3-D introduction example.

Storyline being reproduced:

(a) The first PCA view of the 150-point, 4-cluster dataset shows *three*
    clusters (two of the four overlap in the first two principal
    components), and the spherical background visibly differs from the data.
(b) After cluster constraints for the three visible clusters, the updated
    background matches the data in that projection.
(c) The next most informative projection loads on the third dimension and
    reveals that one visible cluster actually splits in two.

Checked shape properties: number of visible blobs per view, score drop
after constraints, and the third dimension dominating the follow-up view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.session import ExplorationSession
from repro.datasets.paper import three_d_clusters
from repro.experiments.report import format_table
from repro.feedback import ClusterFeedback
from repro.projection.view import Projection2D


@dataclass(frozen=True)
class Fig2Result:
    """Outcome of the Fig. 2 walkthrough.

    Attributes
    ----------
    first_view, matched_view, next_view:
        The three projections of panels (a)-(c).  ``matched_view`` is the
        same projection as ``first_view`` rendered after the update (we
        keep the object for its post-update scores).
    visible_clusters_first:
        Number of blobs separable in the first view (expected: 3).
    displacement_before, displacement_after:
        Mean data-to-ghost displacement in the first projection before and
        after the constraints (expected: large -> small).
    x3_weight_next:
        |weight of X3| in the top axis of the next view (expected: ~1).
    split_separation:
        Separation of the two overlapping clusters in the next view,
        in units of their pooled spread (expected: > 2, i.e. resolvable).
    """

    first_view: Projection2D
    matched_view: Projection2D
    next_view: Projection2D
    visible_clusters_first: int
    displacement_before: float
    displacement_after: float
    x3_weight_next: float
    split_separation: float

    def format_table(self) -> str:
        """Render the panel-by-panel summary."""
        rows = [
            (
                "a: first PCA view",
                f"{self.visible_clusters_first} blobs",
                f"top score {self.first_view.scores[0]:.3g}",
                f"ghost displacement {self.displacement_before:.2f}",
            ),
            (
                "b: after 3 cluster constraints",
                "background matches",
                f"top score {self.matched_view.scores[0]:.3g}",
                f"ghost displacement {self.displacement_after:.2f}",
            ),
            (
                "c: next view",
                "overlapping pair splits",
                f"X3 weight {self.x3_weight_next:.2f}",
                f"split separation {self.split_separation:.1f} sigma",
            ),
        ]
        return format_table(
            ["panel", "observation", "score", "detail"],
            rows,
            title="Fig. 2 — 3-D synthetic walkthrough",
        )


def run(seed: int = 0) -> Fig2Result:
    """Execute the Fig. 2 walkthrough end to end."""
    bundle = three_d_clusters(seed=seed)
    session = ExplorationSession(
        bundle.data, objective="pca", standardize=True, seed=seed
    )
    first_view = session.current_view()
    projected = first_view.project(session.data)

    # The three visible blobs: clusters 0 and 1, plus the 2+3 overlap pair.
    labels = bundle.labels
    blob_rows = [
        np.flatnonzero(labels == 0),
        np.flatnonzero(labels == 1),
        np.flatnonzero((labels == 2) | (labels == 3)),
    ]
    visible = _count_separable_blobs(projected, blob_rows)

    ghosts_before = session.background_sample()
    displacement_before = float(
        np.mean(
            np.linalg.norm(
                first_view.project(session.data) - first_view.project(ghosts_before),
                axis=1,
            )
        )
    )

    # The user marks the three blobs she sees.
    for k, rows in enumerate(blob_rows):
        session.apply(ClusterFeedback(rows=rows, label=f"fig2-blob{k}"))
    matched_view = session.current_view()
    ghosts_after = session.background_sample()
    displacement_after = float(
        np.mean(
            np.linalg.norm(
                first_view.project(session.data) - first_view.project(ghosts_after),
                axis=1,
            )
        )
    )

    next_view = matched_view
    # Weight of X3 on the axis with the larger |loading| of X3.
    x3_weight = float(np.max(np.abs(next_view.axes[:, 2])))

    # Separation of clusters 2 vs 3 in the next view.
    proj_next = next_view.project(session.data)
    rows2 = np.flatnonzero(labels == 2)
    rows3 = np.flatnonzero(labels == 3)
    centre2 = proj_next[rows2].mean(axis=0)
    centre3 = proj_next[rows3].mean(axis=0)
    pooled = 0.5 * (
        proj_next[rows2].std(axis=0).mean() + proj_next[rows3].std(axis=0).mean()
    )
    separation = float(np.linalg.norm(centre2 - centre3) / max(pooled, 1e-12))

    return Fig2Result(
        first_view=first_view,
        matched_view=matched_view,
        next_view=next_view,
        visible_clusters_first=visible,
        displacement_before=displacement_before,
        displacement_after=displacement_after,
        x3_weight_next=x3_weight,
        split_separation=separation,
    )


def _count_separable_blobs(
    projected: np.ndarray, blob_rows: list[np.ndarray], threshold: float = 2.0
) -> int:
    """How many of the given blobs are pairwise separable in a 2-D view.

    Blobs count as separable when every pair of centres is at least
    ``threshold`` pooled standard deviations apart.  Returns the number of
    blobs if all pairs separate, otherwise the size of the largest
    separable subset (greedy).
    """
    centres = [projected[rows].mean(axis=0) for rows in blob_rows]
    spreads = [projected[rows].std(axis=0).mean() for rows in blob_rows]
    kept: list[int] = []
    for i in range(len(blob_rows)):
        ok = True
        for j in kept:
            dist = float(np.linalg.norm(centres[i] - centres[j]))
            pooled = 0.5 * (spreads[i] + spreads[j])
            if dist < threshold * pooled:
                ok = False
                break
        if ok:
            kept.append(i)
    return len(kept)
