"""Fig. 8 reproduction: second and third BNC exploration rounds.

Continuing from the Fig. 7 state (cluster constraint on the conversations
blob):

(a) the next most informative PCA view shows another coherent group —
    mainly 'academic prose' + 'broadsheet newspaper' (paper Jaccards 0.63
    and 0.35) — which the user also marks as a cluster;
(b) after that second constraint and a background update, the PCA view no
    longer shows striking differences (low PCA scores): the conversations
    cluster plus the academic/news cluster explain the count variation of
    the most frequent words.

Shape checks: the second selection is dominated by the two formal written
genres, and the top PCA score decays strongly across the three rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.jaccard import jaccard_index, jaccard_to_classes
from repro.experiments import fig7_bnc_first_view
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Fig8Result:
    """Outcome of BNC rounds two and three.

    Attributes
    ----------
    first_round:
        The Fig. 7 result this run continued from.
    second_selection:
        Rows selected in the second view.
    second_jaccards:
        Jaccard of the second selection against each genre.
    combined_jaccard:
        Jaccard of the second selection against the *union* of academic
        prose + broadsheet newspaper (the paper's combined cluster).
    top_scores:
        Top |PCA score| at rounds 0, 1, 2 — expected to decay.
    """

    first_round: fig7_bnc_first_view.Fig7Result
    second_selection: np.ndarray
    second_jaccards: dict
    combined_jaccard: float
    top_scores: tuple

    def format_table(self) -> str:
        """Render the per-round score decay and second-round Jaccards."""
        rows = [
            ("round 0 (initial view)", f"{self.top_scores[0]:.4f}", "-"),
            (
                "round 1 (after conversations cluster)",
                f"{self.top_scores[1]:.4f}",
                ", ".join(
                    f"{g}: {v:.2f}" for g, v in list(self.second_jaccards.items())[:2]
                ),
            ),
            (
                "round 2 (after academic+news cluster)",
                f"{self.top_scores[2]:.4f}",
                f"combined Jaccard {self.combined_jaccard:.2f}",
            ),
        ]
        return format_table(
            ["round", "top |PCA score|", "selection identity"],
            rows,
            title="Fig. 8 — BNC iterations",
        )


def run(seed: int = 0, n_documents: int | None = None) -> Fig8Result:
    """Run BNC rounds two and three on top of the Fig. 7 state."""
    first, app = fig7_bnc_first_view.run(seed=seed, n_documents=n_documents)
    bundle = app.bundle  # type: ignore[attr-defined]
    score_round0 = float(np.max(np.abs(first.frame.view.scores)))

    # Round 1: constrain the conversations blob, update, take the new view.
    app.add_cluster_constraint(label="bnc-conversations")
    app.update_background()
    frame1 = app.render()
    score_round1 = float(np.max(np.abs(frame1.view.scores)))

    # Geometric selection of the next coherent group.  The round-1 view
    # stretches along its first axis; candidate blobs grow from both
    # extremes (excluding already-constrained points), and the user picks
    # the *tight* one — a visually crisp cluster — over the diffuse bulk.
    projected = frame1.view.project(app.session.data)
    remaining = np.setdiff1d(np.arange(projected.shape[0]), first.selection)
    axis_coord = projected[:, 0]
    seed_low = int(remaining[np.argmin(axis_coord[remaining])])
    seed_high = int(remaining[np.argmax(axis_coord[remaining])])
    candidates = []
    for seed_point in (seed_low, seed_high):
        blob = fig7_bnc_first_view._grow_blob(projected, seed_point)
        blob = np.setdiff1d(blob, first.selection)
        if blob.size >= 10:
            tightness = float(np.mean(np.std(projected[blob], axis=0)))
            candidates.append((tightness, blob))
    candidates.sort(key=lambda item: item[0])
    blob = candidates[0][1]
    app.select_rows(blob)

    labels = bundle.labels
    jaccards = jaccard_to_classes(blob, labels)
    academic = np.flatnonzero(labels == "academic prose")
    news = np.flatnonzero(labels == "broadsheet newspaper")
    combined = jaccard_index(blob, np.concatenate([academic, news]))

    # Round 2: constrain it, update; scores should now be small.
    app.add_cluster_constraint(label="bnc-academic-news")
    app.update_background()
    frame2 = app.render()
    score_round2 = float(np.max(np.abs(frame2.view.scores)))

    return Fig8Result(
        first_round=first,
        second_selection=blob,
        second_jaccards=jaccards,
        combined_jaccard=float(combined),
        top_scores=(score_round0, score_round1, score_round2),
    )
