"""Table II reproduction: runtime scaling of OPTIM and ICA.

The paper measures median wall-clock times over 10 runs for the parameter
grid n ∈ {2048, 4096, 8192}, d ∈ {16, 32, 64, 128}, k ∈ {1, 2, 4, 8}:
margin constraints for every dataset plus cluster constraints per cluster
when k > 1, optimised without any time cut-off, followed by FastICA on the
whitened data.

Shape targets (absolute numbers depend on hardware/runtime):

* OPTIM time is independent of n (equivalence classes);
* OPTIM scales roughly as O(k d^3) — each step is O(d^2) per constraint
  and there are O(kd) constraints;
* ICA scales roughly as O(n d^2).

The default grid is trimmed so the harness stays interactive; set
``REPRO_FULL_GRID=1`` (or pass ``full_grid=True``) for the paper's grid.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.solver import SolverOptions, solve_maxent
from repro.core.whitening import whiten
from repro.datasets.runtime import runtime_constraints, runtime_dataset
from repro.experiments.report import format_seconds, format_table
from repro.projection.fastica import fit_fastica

#: Trimmed grid: same shape checks, laptop-friendly runtime.  The d range
#: reaches 64 so the O(d^3) regime of OPTIM is visible above the
#: per-constraint Python overhead.
DEFAULT_GRID = {
    "n": (512, 1024, 2048),
    "d": (16, 32, 64),
    "k": (1, 2, 4),
}

#: The paper's grid.
FULL_GRID = {
    "n": (2048, 4096, 8192),
    "d": (16, 32, 64, 128),
    "k": (1, 2, 4, 8),
}


@dataclass(frozen=True)
class RuntimeCell:
    """Median timings for one (n, d) row of the table.

    Attributes
    ----------
    n, d:
        Dataset shape.
    optim_by_k:
        Median OPTIM seconds per k (ordered like the grid's k values).
    ica_by_k:
        Median ICA seconds per k.
    """

    n: int
    d: int
    optim_by_k: tuple
    ica_by_k: tuple


@dataclass(frozen=True)
class Table2Result:
    """All cells of the runtime table plus the grid used.

    Attributes
    ----------
    cells:
        One :class:`RuntimeCell` per (n, d) pair, row-major like Table II.
    grid:
        The parameter grid that was run.
    repeats:
        Runs per cell (paper: 10; default here: 3).
    """

    cells: list
    grid: dict
    repeats: int

    def format_table(self) -> str:
        """Render rows like the paper's Table II."""
        rows = [
            (
                cell.n,
                cell.d,
                format_seconds(cell.optim_by_k),
                format_seconds(cell.ica_by_k),
            )
            for cell in self.cells
        ]
        ks = ", ".join(str(k) for k in self.grid["k"])
        return format_table(
            ["n", "d", "OPTIM (s)", "ICA (s)"],
            rows,
            title=f"Table II — median wall-clock seconds, k in {{{ks}}}",
        )

    # ------------------------------------------------------------------
    # Scaling shape extractors (used by tests and EXPERIMENTS.md)
    # ------------------------------------------------------------------

    def optim_n_dependence(self) -> float:
        """Ratio max/min of OPTIM time across n at fixed (d, k).

        Expected ≈ 1 (independent of n).  Uses the largest (d, k) cell
        where timings are biggest and noise relatively smallest.
        """
        d_max = max(self.grid["d"])
        times = [
            cell.optim_by_k[-1] for cell in self.cells if cell.d == d_max
        ]
        low = max(min(times), 1e-9)
        return max(times) / low

    def optim_d_exponent(self) -> float:
        """Fitted exponent of OPTIM time vs d at the largest n and k."""
        n_max = max(self.grid["n"])
        pairs = [
            (cell.d, cell.optim_by_k[-1])
            for cell in self.cells
            if cell.n == n_max
        ]
        return _fit_exponent(pairs)

    def ica_n_exponent(self) -> float:
        """Fitted exponent of ICA time vs n at the largest d."""
        d_max = max(self.grid["d"])
        pairs = [
            (cell.n, np.median(cell.ica_by_k))
            for cell in self.cells
            if cell.d == d_max
        ]
        return _fit_exponent(pairs)


def run(
    full_grid: bool | None = None,
    repeats: int = 3,
    seed: int = 0,
) -> Table2Result:
    """Execute the runtime sweep.

    Parameters
    ----------
    full_grid:
        Use the paper's grid; defaults to the ``REPRO_FULL_GRID`` env var.
    repeats:
        Runs per cell; the median is reported.
    seed:
        Base RNG seed (varied per repeat).
    """
    if full_grid is None:
        full_grid = os.environ.get("REPRO_FULL_GRID", "") == "1"
    grid = FULL_GRID if full_grid else DEFAULT_GRID

    cells = []
    for n in grid["n"]:
        for d in grid["d"]:
            optim_by_k = []
            ica_by_k = []
            for k in grid["k"]:
                optim_times = []
                ica_times = []
                for r in range(repeats):
                    optim_s, ica_s = _time_one(n, d, k, seed=seed + r)
                    optim_times.append(optim_s)
                    ica_times.append(ica_s)
                optim_by_k.append(float(np.median(optim_times)))
                ica_by_k.append(float(np.median(ica_times)))
            cells.append(
                RuntimeCell(
                    n=n, d=d, optim_by_k=tuple(optim_by_k), ica_by_k=tuple(ica_by_k)
                )
            )
    return Table2Result(cells=cells, grid=dict(grid), repeats=repeats)


def _time_one(n: int, d: int, k: int, seed: int) -> tuple[float, float]:
    """Time OPTIM and ICA for one parameter combination."""
    bundle = runtime_dataset(n=n, d=d, k=k, seed=seed)
    constraints = runtime_constraints(bundle)
    options = SolverOptions(time_cutoff=None, max_sweeps=200)

    params, classes, report = solve_maxent(bundle.data, constraints, options=options)
    # The paper's OPTIM phase excludes INIT (observed-value evaluation, the
    # only part of the solve that reads the data).  SolverReport guarantees
    # elapsed == init_seconds + optim_seconds, so optim_seconds is exactly
    # the sweep loop — the n-independent cost this table demonstrates.
    optim_seconds = report.optim_seconds

    whitened = whiten(bundle.data, params, classes)
    start = time.perf_counter()
    fit_fastica(whitened, rng=np.random.default_rng(seed))
    ica_seconds = time.perf_counter() - start
    return optim_seconds, ica_seconds


def _fit_exponent(pairs: list) -> float:
    """Least-squares slope of log(time) vs log(size)."""
    sizes = np.array([max(p[0], 1) for p in pairs], dtype=np.float64)
    times = np.array([max(p[1], 1e-9) for p in pairs], dtype=np.float64)
    if sizes.size < 2:
        return 0.0
    return float(np.polyfit(np.log(sizes), np.log(times), 1)[0])
