"""Fig. 9 reproduction: the UCI Image Segmentation (surrogate) use case.

Storyline being reproduced (panels a-f of Fig. 9):

(a) the initial PCA view shows a gross scale mismatch between the raw-scale
    data and the unit spherical background;
(b) after a 1-cluster constraint (overall covariance) the view shows at
    least three separated groups; the first selected group is pure 'sky'
    (paper: selection contains solely 'sky' points);
(c) the central blob selection mixes the five man-made-surface classes
    (paper: Jaccard ≈ 0.2 each);
(d) the third selection is mainly 'grass' (paper: Jaccard 0.964);
(e) with the three cluster constraints added, data and background match
    except for some outliers;
(f) the next PCA view is dominated by outlier points.

Selections are geometric (grown around view-extreme seeds); class labels
are only used retrospectively for Jaccard scoring, exactly as in the paper.

Deviation from the paper's figure: the paper labels panels (b)-(f) as PCA
projections.  After a 1-cluster constraint the model covariance equals the
sample covariance *exactly*, so every direction of the whitened data has
unit variance and the PCA view score carries no signal — a situation the
paper itself notes in Sec. II-C ("it may happen that the variance is
already taken into account in the variance constraints, in which case PCA
is not informative... we can for example use Independent Component
Analysis").  Our solver converges to machine precision (the R original
stops at a 1e-2 tolerance, leaving residual variance structure for PCA to
latch onto), so this harness follows the paper's own remedy and uses the
ICA objective for the post-constraint views.  The storyline and all
quantitative targets are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.segmentation import segmentation_surrogate
from repro.eval.jaccard import best_matching_class, jaccard_to_classes
from repro.experiments.report import format_table
from repro.ui.app import SiderApp


@dataclass(frozen=True)
class Fig9Result:
    """Outcome of the segmentation use case.

    Attributes
    ----------
    initial_scale_mismatch:
        Ratio of background-ghost spread to data spread in the initial
        view (expected >> 1 or << 1 — a gross mismatch).
    sky_jaccard, grass_jaccard:
        Jaccard of the sky / grass selections to their classes
        (paper: 1.0 and 0.964).
    middle_jaccards:
        Jaccard of the central-blob selection to each of the five
        overlapping classes (paper: ≈ 0.2 each).
    score_before_constraints, score_after_constraints:
        Top |PCA score| after the 1-cluster constraint vs. after the three
        cluster constraints (expected: strong decay).
    outlier_fraction_in_final_view:
        Fraction of the five most extreme points of the final (whitened)
        view that are *injected* outliers — the paper's "the next
        projection reveals that indeed there are outliers" claim; expected
        to be the majority.
    top_extreme_is_outlier:
        Whether the single most extreme point of the final view is an
        injected outlier.
    """

    initial_scale_mismatch: float
    sky_jaccard: float
    grass_jaccard: float
    middle_jaccards: dict
    score_before_constraints: float
    score_after_constraints: float
    outlier_fraction_in_final_view: float
    top_extreme_is_outlier: bool

    def format_table(self) -> str:
        """Render the panel-by-panel summary."""
        middle = ", ".join(
            f"{name}: {value:.2f}" for name, value in self.middle_jaccards.items()
        )
        rows = [
            ("a: initial view", f"scale mismatch x{self.initial_scale_mismatch:.1f}"),
            ("b: sky selection", f"Jaccard {self.sky_jaccard:.3f}"),
            ("c: middle blob", middle),
            ("d: grass selection", f"Jaccard {self.grass_jaccard:.3f}"),
            (
                "e: after 3 cluster constraints",
                f"top score {self.score_before_constraints:.3f} -> "
                f"{self.score_after_constraints:.3f}",
            ),
            (
                "f: next view",
                f"injected outliers {100 * self.outlier_fraction_in_final_view:.0f}% "
                f"of top-5 extremes (most extreme point is outlier: "
                f"{self.top_extreme_is_outlier})",
            ),
        ]
        return format_table(
            ["panel", "observation"],
            rows,
            title="Fig. 9 — Image Segmentation use case",
        )


def run(seed: int = 0, samples_per_class: int = 330) -> Fig9Result:
    """Execute the full Fig. 9 walkthrough."""
    bundle = segmentation_surrogate(seed=seed, samples_per_class=samples_per_class)
    labels = bundle.labels
    app = SiderApp(
        bundle.data,
        feature_names=bundle.feature_names,
        objective="pca",
        standardize=False,  # the raw scales ARE the panel-(a) insight
        seed=seed,
    )
    frame = app.render()

    # Panel a: spread of ghosts vs. data in the initial view.
    pts = frame.scatterplot.points
    ghosts = frame.scatterplot.ghost_points
    data_spread = float(np.mean(np.std(pts, axis=0)))
    ghost_spread = float(np.mean(np.std(ghosts, axis=0)))
    ratio = max(ghost_spread, data_spread) / max(min(ghost_spread, data_spread), 1e-12)

    # Panel b: 1-cluster constraint, update.  The covariance is now fully
    # constrained, so switch to the ICA objective (see module docstring).
    app.add_one_cluster_constraint()
    app.toggle_objective()  # pca -> ica
    app.update_background()
    frame_b = app.render()
    score_before = float(np.max(np.abs(frame_b.view.scores)))

    # Panels b-d: all three selections happen in this one projection, as in
    # the paper — two extreme tight blobs (sky and grass, in whichever
    # order the view surfaces them) plus the dense central mass.
    projected = frame_b.view.project(app.session.data)
    centre = np.median(projected, axis=0)
    dist = np.linalg.norm(projected - centre, axis=1)
    seed1 = _extreme_dense_seed(projected, dist)
    blob1 = _grow_blob(projected, seed1)
    dist_masked = dist.copy()
    dist_masked[blob1] = -np.inf
    seed2 = _extreme_dense_seed(projected, dist_masked)
    blob2 = np.setdiff1d(_grow_blob(projected, seed2), blob1)

    class1, j1 = best_matching_class(blob1, labels)
    class2, j2 = best_matching_class(blob2, labels)
    if class1 == "sky":
        sky_j, grass_j = j1, j2
    else:
        sky_j, grass_j = j2, j1

    # Middle blob: the dense core of everything else.
    taken = np.union1d(blob1, blob2)
    middle_rows = _dense_core(
        app.session.data, np.setdiff1d(np.arange(labels.size), taken)
    )
    middle_j = jaccard_to_classes(middle_rows, labels)
    overlapping = ("brickface", "cement", "foliage", "path", "window")
    middle_jaccards = {name: middle_j.get(name, 0.0) for name in overlapping}

    # Panel e: add the three cluster constraints, update once.
    for rows, label in (
        (blob1, "seg-blob1"),
        (blob2, "seg-blob2"),
        (middle_rows, "seg-middle"),
    ):
        app.select_rows(rows)
        app.add_cluster_constraint(label=label)
    app.update_background()
    frame_e = app.render()
    score_after = float(np.max(np.abs(frame_e.view.scores)))

    # Panel f: the most extreme points of the new view should be outliers.
    # Extremeness is measured in the *whitened* view: "stands out" means
    # "differs from the background distribution", and the constrained
    # classes (sky, grass) remain remote in raw coordinates even though the
    # belief state now fully explains them.
    whitened = app.session.whitened()
    proj_f = whitened @ frame_e.view.axes.T
    centre = np.median(proj_f, axis=0)
    dist = np.linalg.norm(proj_f - centre, axis=1)
    outliers = set(int(i) for i in bundle.metadata["outlier_rows"])
    n_extreme = 5
    extreme = np.argsort(dist)[::-1][:n_extreme]
    hit = sum(1 for i in extreme if int(i) in outliers) / n_extreme
    top_is_outlier = int(extreme[0]) in outliers

    return Fig9Result(
        initial_scale_mismatch=float(ratio),
        sky_jaccard=float(sky_j),
        grass_jaccard=float(grass_j),
        middle_jaccards=middle_jaccards,
        score_before_constraints=score_before,
        score_after_constraints=score_after,
        outlier_fraction_in_final_view=float(hit),
        top_extreme_is_outlier=bool(top_is_outlier),
    )


def _extreme_dense_seed(
    projected: np.ndarray, masked_dist: np.ndarray, min_neighbours: int = 10
) -> int:
    """The farthest point from the view centre that sits inside a blob.

    A user lassoing a remote cluster aims at a *group* of points, not a
    stray outlier.  Candidates are scanned from the most remote inwards;
    the first one whose ``min_neighbours``-th nearest neighbour is close
    (relative to the view's overall scale) wins.
    """
    scale = float(np.mean(np.std(projected, axis=0)))
    order = np.argsort(masked_dist)[::-1]
    for candidate in order[: max(50, projected.shape[0] // 10)]:
        if masked_dist[candidate] == -np.inf:
            break
        neighbour_dist = np.sort(
            np.linalg.norm(projected - projected[candidate], axis=1)
        )[min_neighbours]
        if neighbour_dist < 0.15 * scale:
            return int(candidate)
    # Fallback: plain farthest point.
    return int(order[0])


def _dense_core(data: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """The dense core of a row set: drop the 2 % most remote points.

    Mimics a user lassoing the central mass while leaving stray outliers
    outside the selection.  Distances are measured in standardised data
    space so no single raw-scale attribute dominates.
    """
    sub = data[rows]
    scale = sub.std(axis=0)
    scale[scale == 0.0] = 1.0
    standardised = (sub - sub.mean(axis=0)) / scale
    dist = np.linalg.norm(standardised, axis=1)
    cutoff = np.quantile(dist, 0.98)
    return rows[dist <= cutoff]


def _grow_blob(projected: np.ndarray, seed_point: int) -> np.ndarray:
    """Largest-relative-gap neighbourhood growth (same idea as Fig. 7)."""
    dist = np.linalg.norm(projected - projected[seed_point], axis=1)
    order = np.argsort(dist)
    sorted_dist = dist[order]
    n = projected.shape[0]
    lo, hi = max(5, n // 100), n // 2
    gaps = sorted_dist[lo + 1 : hi] - sorted_dist[lo : hi - 1]
    rel = gaps / np.maximum(sorted_dist[lo : hi - 1], 1e-12)
    cut = lo + int(np.argmax(rel)) + 1
    return np.sort(order[:cut])
