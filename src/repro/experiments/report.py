"""Plain-text table rendering for experiment harnesses.

Every experiment module renders its result as rows comparable to the
paper's tables/figures; this module holds the shared formatting helpers so
the outputs stay visually consistent across experiments.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; formatted with ``str`` (pre-format floats yourself).
    title:
        Optional heading line.
    """
    cells = [[str(h) for h in headers]] + [[str(v) for v in row] for row in rows]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_floats(values: Sequence[float], precision: int = 3) -> str:
    """Space-separated fixed-precision floats, e.g. for score rows."""
    return " ".join(f"{v:.{precision}f}" for v in values)


def format_seconds(values: Sequence[float]) -> str:
    """Brace-grouped seconds like the paper's Table II cells."""
    return "{" + ", ".join(f"{v:.1f}" for v in values) + "}"
