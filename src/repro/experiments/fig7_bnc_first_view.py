"""Fig. 7 reproduction: first PCA view of the BNC (surrogate) corpus.

The paper's first BNC view surfaces a tight group of points that turns out
to be almost exactly the 'transcribed conversations' genre (Jaccard 0.928),
and the pairplot shows the selection differing sharply from the rest of the
data.  This harness:

1. builds the surrogate corpus (1335 docs, 100 word features, 4 genres),
2. fits the (empty) background and takes the most informative PCA view,
3. selects the on-screen blob *geometrically* (no labels used),
4. measures the Jaccard of the selection against all genres,
5. assembles the full UI frame (scatterplot + pairplot + statistics),
   exactly what Fig. 7's screenshot displays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.bnc import bnc_surrogate
from repro.eval.jaccard import best_matching_class, jaccard_to_classes
from repro.experiments.report import format_table
from repro.ui.app import Frame, SiderApp


@dataclass(frozen=True)
class Fig7Result:
    """Outcome of the first BNC exploration round.

    Attributes
    ----------
    frame:
        The rendered UI frame after the selection.
    selection:
        The geometrically selected rows.
    best_class, best_jaccard:
        The genre best matching the selection and its Jaccard index
        (paper: 'transcribed conversations', 0.928).
    jaccard_by_class:
        Jaccard against every genre.
    top_separating_attributes:
        The pairplot's attribute ranking (names).
    """

    frame: Frame
    selection: np.ndarray
    best_class: str
    best_jaccard: float
    jaccard_by_class: dict
    top_separating_attributes: tuple

    def format_table(self) -> str:
        """Render the Jaccard table of the first selection."""
        rows = [
            (genre, f"{value:.3f}")
            for genre, value in self.jaccard_by_class.items()
        ]
        return format_table(
            ["genre", "Jaccard to selection"],
            rows,
            title="Fig. 7 — first BNC view: selection vs. genres",
        )


def run(seed: int = 0, n_documents: int | None = None) -> tuple[Fig7Result, SiderApp]:
    """Run the first BNC round; returns the result and the live app.

    The app is returned so the Fig. 8 harness can continue the session.
    """
    bundle = bnc_surrogate(seed=seed, n_documents=n_documents)
    app = SiderApp(
        bundle.data,
        feature_names=bundle.feature_names,
        objective="pca",
        standardize=True,
        seed=seed,
    )
    frame = app.render()

    # Geometric selection of the most isolated on-screen blob: find the
    # projected point farthest from the overall centre and grow a
    # neighbourhood of the expected blob size around it.  No labels used.
    projected = frame.view.project(app.session.data)
    centre = projected.mean(axis=0)
    distances = np.linalg.norm(projected - centre, axis=1)
    seed_point = int(np.argmax(distances))
    blob = _grow_blob(projected, seed_point)
    app.select_rows(blob)
    frame = app.render()

    labels = bundle.labels
    best_class, best_jaccard = best_matching_class(blob, labels)
    table = jaccard_to_classes(blob, labels)
    top_attrs = frame.pairplot.attribute_names if frame.pairplot else ()

    result = Fig7Result(
        frame=frame,
        selection=blob,
        best_class=str(best_class),
        best_jaccard=float(best_jaccard),
        jaccard_by_class=table,
        top_separating_attributes=tuple(top_attrs),
    )
    # Stash the bundle for follow-up harnesses.
    app.bundle = bundle  # type: ignore[attr-defined]
    return result, app


def _grow_blob(projected: np.ndarray, seed_point: int) -> np.ndarray:
    """Grow a selection around a seed by the largest density gap.

    Sort all points by distance to the seed and cut at the largest relative
    jump in consecutive distances within the first 80 % — a scale-free
    stand-in for "lasso around the visually isolated blob".
    """
    dist = np.linalg.norm(projected - projected[seed_point], axis=1)
    order = np.argsort(dist)
    sorted_dist = dist[order]
    n = projected.shape[0]
    lo, hi = max(5, n // 100), int(0.8 * n)
    gaps = sorted_dist[lo + 1 : hi] - sorted_dist[lo : hi - 1]
    # Relative gap: jump size vs. distance scale at that radius.
    rel = gaps / np.maximum(sorted_dist[lo : hi - 1], 1e-12)
    cut = lo + int(np.argmax(rel)) + 1
    return np.sort(order[:cut])
