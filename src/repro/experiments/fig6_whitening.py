"""Fig. 6 reproduction: whitened-data pairplots across constraint stages.

Fig. 6 shows the whitened matrix Ŷ5 of the running example at three belief
states:

(a) no constraints — whitening is the identity, Ŷ5 = X̂5;
(b) after cluster constraints for the four clusters of dims 1–3 — the
    whitened data looks Gaussian in dims 1–3 but still structured in
    dims 4–5;
(c) after further cluster constraints for the three clusters of dims 4–5 —
    the whitened data resembles a unit spherical Gaussian everywhere.

The harness measures per-dimension gaussianity of the whitened data at each
stage (the information content of the pairplots) and verifies the identity
property of stage (a).  The sensitive statistic for "cluster structure
remains in this dimension" is excess kurtosis: standardised multimodal data
is strongly platykurtic even when its first two moments are matched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.background import BackgroundModel
from repro.datasets.paper import x5
from repro.eval.gaussianity import dimensions_explained, gaussianity_report
from repro.experiments.report import format_floats, format_table


@dataclass(frozen=True)
class Fig6Result:
    """Gaussianity of the whitened data at the three stages.

    Attributes
    ----------
    identity_max_error:
        ``max |Y - X|`` at stage (a) — exactly 0 in theory.
    explained_after_stage1:
        Boolean mask over the 5 dims of which look Gaussian at stage (b)
        (expected: dims 1–3 True, at least one of dims 4–5 False).
    explained_after_stage2:
        Same at stage (c) (expected: all True).
    max_abs_kurtosis:
        Max |excess kurtosis| over dimensions per stage — the headline
        decreasing statistic of the figure.
    kurtosis_rows:
        Per-dimension excess kurtosis per stage.
    """

    identity_max_error: float
    explained_after_stage1: np.ndarray
    explained_after_stage2: np.ndarray
    max_abs_kurtosis: list
    kurtosis_rows: list

    def format_table(self) -> str:
        """Render per-stage gaussianity diagnostics."""
        stages = [
            "a: no constraints (Y = X)",
            "b: 4 cluster constraints",
            "c: +3 cluster constraints",
        ]
        rows = [
            (stage, f"{agg:.3f}", format_floats(row, precision=3))
            for stage, agg, row in zip(
                stages, self.max_abs_kurtosis, self.kurtosis_rows
            )
        ]
        return format_table(
            ["stage", "max |excess kurtosis|", "excess kurtosis per dim"],
            rows,
            title="Fig. 6 — whitened data vs. unit Gaussian",
        )


def run(seed: int = 0, n: int = 1000) -> Fig6Result:
    """Whiten X̂5 under the three belief states of Fig. 6."""
    bundle = x5(n=n, seed=seed)
    labels = bundle.labels
    labels45 = bundle.metadata["labels45"]

    # Stage a: no constraints.
    model = BackgroundModel(bundle.data, standardize=True)
    model.fit()
    whitened_a = model.whiten()
    identity_err = float(np.max(np.abs(whitened_a - model.data)))
    report_a = gaussianity_report(whitened_a)

    # Stage b: four cluster constraints (dims 1-3 grouping).
    for name in ("A", "B", "C", "D"):
        model.add_cluster_constraint(
            np.flatnonzero(labels == name), label=f"fig6-{name}"
        )
    model.fit()
    whitened_b = model.whiten()
    report_b = gaussianity_report(whitened_b)
    explained_b = dimensions_explained(whitened_b)

    # Stage c: three more cluster constraints (dims 4-5 grouping).
    for name in ("E", "F", "G"):
        model.add_cluster_constraint(
            np.flatnonzero(labels45 == name), label=f"fig6-{name}"
        )
    model.fit()
    whitened_c = model.whiten()
    report_c = gaussianity_report(whitened_c)
    explained_c = dimensions_explained(whitened_c)

    return Fig6Result(
        identity_max_error=identity_err,
        explained_after_stage1=explained_b,
        explained_after_stage2=explained_c,
        max_abs_kurtosis=[
            float(np.max(np.abs(report_a.excess_kurtosis))),
            float(np.max(np.abs(report_b.excess_kurtosis))),
            float(np.max(np.abs(report_c.excess_kurtosis))),
        ],
        kurtosis_rows=[
            report_a.excess_kurtosis,
            report_b.excess_kurtosis,
            report_c.excess_kurtosis,
        ],
    )
