"""Fig. 3 reproduction: structure of the synthetic running example X̂5.

Fig. 3 is a pairplot establishing three generator facts that later
experiments rely on:

* dimensions 1–3 hold four clusters A–D, but every axis-aligned 2-D panel
  of dims 1–3 shows only three blobs (A overlaps one of B/C/D);
* dimensions 4–5 hold three clusters E–G;
* the two groupings are coupled: ~75 % of B/C/D points land in E or F.

The harness verifies those facts directly on the generated data — the
pairplot's information content, without the pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.datasets.paper import x5
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Fig3Result:
    """Structural summary of the generated X̂5.

    Attributes
    ----------
    bundle:
        The generated dataset.
    overlap_per_panel:
        For every 2-D coordinate panel of dims 1–3, which cluster A
        overlaps with (name) — expected exactly one of B/C/D per panel.
    separable_45:
        Whether E, F, G separate in the dims 4–5 panel.
    coupling_measured:
        Fraction of B/C/D points in E ∪ F (expected ≈ 0.75).
    cluster_sizes:
        Sizes of A–D.
    """

    bundle: DatasetBundle
    overlap_per_panel: dict
    separable_45: bool
    coupling_measured: float
    cluster_sizes: dict

    def format_table(self) -> str:
        """Render the structural facts as rows."""
        rows = [
            (f"dims ({i + 1},{j + 1})", f"A overlaps {who}")
            for (i, j), who in self.overlap_per_panel.items()
        ]
        rows.append(("dims (4,5)", "E/F/G separable" if self.separable_45 else "NOT separable"))
        rows.append(("coupling B/C/D -> E|F", f"{self.coupling_measured:.2f} (target 0.75)"))
        rows.append(("cluster sizes", str(self.cluster_sizes)))
        return format_table(
            ["panel / fact", "observation"], rows, title="Fig. 3 — X̂5 structure"
        )


def run(seed: int = 0, n: int = 1000) -> Fig3Result:
    """Generate X̂5 and verify its documented structure."""
    bundle = x5(n=n, seed=seed)
    data = bundle.data
    labels = bundle.labels
    labels45 = bundle.metadata["labels45"]

    overlap = {}
    for i, j in combinations(range(3), 2):
        overlap[(i, j)] = _who_overlaps_a(data, labels, dims=(i, j))

    separable_45 = _all_separable(
        data[:, 3:5], [np.flatnonzero(labels45 == g) for g in ("E", "F", "G")]
    )

    bcd = np.isin(labels, ("B", "C", "D"))
    in_ef = np.isin(labels45, ("E", "F"))
    coupling = float(np.mean(in_ef[bcd]))

    sizes = {name: int(np.sum(labels == name)) for name in ("A", "B", "C", "D")}
    return Fig3Result(
        bundle=bundle,
        overlap_per_panel=overlap,
        separable_45=separable_45,
        coupling_measured=coupling,
        cluster_sizes=sizes,
    )


def _who_overlaps_a(
    data: np.ndarray, labels: np.ndarray, dims: tuple[int, int]
) -> str:
    """Which of B/C/D sits closest to A in the given coordinate panel."""
    sub = data[:, list(dims)]
    centre_a = sub[labels == "A"].mean(axis=0)
    best_name = ""
    best_dist = np.inf
    for name in ("B", "C", "D"):
        centre = sub[labels == name].mean(axis=0)
        dist = float(np.linalg.norm(centre - centre_a))
        if dist < best_dist:
            best_dist = dist
            best_name = name
    return best_name


def _all_separable(
    projected: np.ndarray, groups: list[np.ndarray], threshold: float = 2.0
) -> bool:
    """True when all groups are pairwise >= threshold pooled sigmas apart."""
    centres = [projected[rows].mean(axis=0) for rows in groups]
    spreads = [projected[rows].std(axis=0).mean() for rows in groups]
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            dist = float(np.linalg.norm(centres[i] - centres[j]))
            pooled = 0.5 * (spreads[i] + spreads[j])
            if dist < threshold * pooled:
                return False
    return True
